"""Table 5: two machines at every stage (§7.2).

Paper: "Note how all stages are scaling.  The throughput of each stage has
doubled.  Each machine achieves a close throughput to the basic case of a
pipeline with one machine per stage."

The catalog entry sweeps the basic deployment and the doubled one; the
per-stage doubling and per-machine-parity assertions are its invariants.
"""

import pytest

from conftest import print_header, print_pipeline_point, run_catalog_entry


@pytest.mark.benchmark(group="tables")
def test_table5_two_machines_per_stage(benchmark):
    result = run_catalog_entry(benchmark, "table5-two-per-stage")
    point = result.aggregates["points"][1]

    print_header("Table 5: two machines per stage (K records/s)")
    print_pipeline_point(point)

    benchmark.extra_info["stage_totals"] = point["stage_totals"]
