"""Table 5: two machines at every stage (§7.2).

Paper: "Note how all stages are scaling.  The throughput of each stage has
doubled.  Each machine achieves a close throughput to the basic case of a
pipeline with one machine per stage."
"""

import pytest

from repro.bench import run_pipeline_sim

from conftest import kilo, print_header, run_once


@pytest.mark.benchmark(group="tables")
def test_table5_two_machines_per_stage(benchmark):
    result = run_once(
        benchmark,
        run_pipeline_sim,
        clients=2,
        batchers=2,
        filters=2,
        queues=2,
        maintainers=2,
        senders=2,
        receivers=2,
        duration=1.5,
        warmup=0.4,
    )

    print_header("Table 5: two machines per stage (K records/s)")
    for stage, machine, rate in result.rows():
        print(f"  {stage:<8} {machine:<18} {kilo(rate)}")
    print(f"  bottleneck: {result.bottleneck()}")

    basic = run_pipeline_sim(clients=1, duration=1.0, warmup=0.3)
    # Every stage's total doubled relative to the basic deployment.
    for stage in ("Client", "Batcher", "Filter", "Queue", "Store"):
        assert result.stage_total(stage) == pytest.approx(
            2 * basic.stage_total(stage), rel=0.08
        ), stage
    # Each machine stays close to the basic single-machine throughput.
    for stage in ("Batcher", "Filter", "Store"):
        for rate in result.stage_rates[stage].values():
            assert rate == pytest.approx(basic.stage_total(stage), rel=0.1)
    benchmark.extra_info["rows"] = [
        (stage, machine, round(rate)) for stage, machine, rate in result.rows()
    ]
