"""Ablation: live elasticity under load (§6.3, §7.2's motivating narrative).

An FLStore deployment is driven well past the capacity of its two
maintainers; mid-run, two more maintainers join via future reassignment
(the §6.3 protocol) and the clients learn the new topology.  Throughput
steps up from the saturated rate toward the offered load — the paper's
"Chariots overcome [the bottleneck] by adding more resources" claim,
measured on a live system with no restart.

The deployment, expansion point, and the saturated-before/step-up-after
assertions live on the catalog entry (``repro.scenarios``); this script
renders the summary.
"""

import pytest

from conftest import run_catalog_entry


@pytest.mark.benchmark(group="ablation")
def test_ablation_live_maintainer_expansion(benchmark):
    result = run_catalog_entry(benchmark, "ablation-elasticity")
    (point,) = result.aggregates["points"]

    print()
    print(result.spec.title)
    print(f"  offered load:              {point['offered'] / 1000:7.1f}K appends/s")
    print(f"  {point['maintainers_before']} maintainers (saturated): "
          f"{point['before'] / 1000:7.1f}K")
    print(f"  {point['maintainers_after']} maintainers (expanded):  "
          f"{point['after'] / 1000:7.1f}K")

    benchmark.extra_info["before"] = point["before"]
    benchmark.extra_info["after"] = point["after"]
    benchmark.extra_info["step_ratio"] = point["step_ratio"]
