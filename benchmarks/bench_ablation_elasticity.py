"""Ablation: live elasticity under load (§6.3, §7.2's motivating narrative).

An FLStore deployment is driven well past the capacity of its two
maintainers; mid-run, two more maintainers join via future reassignment
(the §6.3 protocol) and the clients learn the new topology.  Throughput
steps up from the saturated rate toward the offered load — the paper's
"Chariots overcome [the bottleneck] by adding more resources" claim,
measured on a live system with no restart.
"""

import pytest

from repro.bench.harness import GENERATOR, _template_record
from repro.chariots.elasticity import expand_maintainers
from repro.core import PRIVATE_CLOUD, FLStoreConfig
from repro.flstore.messages import AppendRequest
from repro.flstore.store import FLStore
from repro.sim import LoadClient, SimRuntime

OFFERED = 480_000.0  # well beyond two maintainers (~264 K overloaded ~242 K)
EXPAND_AT = 1.5
DURATION = 3.5


def run_elastic():
    runtime = SimRuntime()

    def place_data(actor):
        runtime.place_on_new_machine(actor, profile=PRIVATE_CLOUD)

    store = FLStore(
        runtime,
        n_maintainers=2,
        n_indexers=0,
        batch_size=1000,
        config=FLStoreConfig(batch_size=1000),
        placer=place_data,
    )
    template = _template_record(512)

    def factory(client_name, batch_index, n):
        return AppendRequest(request_id=batch_index, records=[template] * n,
                             want_results=False)

    clients = []
    for i in range(4):
        client = LoadClient(
            f"loadgen/{i}",
            targets=[m.name for m in store.maintainers],
            batch_factory=factory,
            target_rate=OFFERED / 4,
            batch_size=500,
            max_outstanding=8,
        )
        runtime.place_on_new_machine(client, profile=GENERATOR)
        clients.append(client)

    runtime.run(until_time=EXPAND_AT)
    expand_maintainers(store, 2, placer=place_data)
    names = [m.name for m in store.maintainers]
    for client in clients:
        client.set_targets(names)  # session refresh after the expansion
    runtime.run(until_time=DURATION)

    def stage_rate(start, end):
        return sum(
            runtime.metrics.rate(m.name, "in_records", start, end)
            for m in store.maintainers
            if runtime.metrics.total(m.name, "in_records") > 0
        )

    before = stage_rate(0.5, EXPAND_AT)
    after = stage_rate(EXPAND_AT + 0.7, DURATION)
    return before, after


@pytest.mark.benchmark(group="ablation")
def test_ablation_live_maintainer_expansion(benchmark):
    before, after = benchmark.pedantic(run_elastic, rounds=1, iterations=1)

    print()
    print("Ablation: live maintainer expansion under overload")
    print(f"  offered load:            {OFFERED / 1000:7.1f}K appends/s")
    print(f"  2 maintainers (saturated): {before / 1000:7.1f}K")
    print(f"  4 maintainers (expanded):  {after / 1000:7.1f}K")

    # Saturated before (well under the offered load), big step up after.
    assert before < 0.6 * OFFERED
    assert after > 1.5 * before
    assert after > 0.9 * OFFERED
    benchmark.extra_info["before"] = round(before)
    benchmark.extra_info["after"] = round(after)
