"""Ablation: queue-stage width and token circulation (§6.2 "Queues").

The token serialises LId assignment, so the queue *stage* scales by
letting non-holders buffer while the token circulates.  This ablation
verifies that widening the queue stage keeps total sequencing throughput
flat at fixed load (the token is not a throughput bottleneck at these
rates) and that work spreads across the queues.
"""

import pytest

from repro.bench import run_pipeline_sim

from conftest import kilo, print_header, run_once

QUEUE_COUNTS = [1, 2, 4]


def sweep():
    rows = []
    for queues in QUEUE_COUNTS:
        result = run_pipeline_sim(
            clients=1,
            queues=queues,
            duration=1.2,
            warmup=0.4,
        )
        per_queue = sorted(result.stage_rates["Queue"].values())
        rows.append((queues, result.stage_total("Queue"), per_queue,
                     result.stage_total("Store")))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_queue_stage_width(benchmark):
    rows = run_once(benchmark, sweep)

    print_header("Ablation: queue count vs sequencing throughput")
    print(f"{'queues':>7}  {'stage total':>11}  {'store total':>11}  per-queue")
    for queues, total, per_queue, store in rows:
        spread = ", ".join(kilo(r).strip() for r in per_queue)
        print(f"{queues:>7}  {kilo(total):>11}  {kilo(store):>11}  [{spread}]")

    store_rates = [store for _, _, _, store in rows]
    # Widening the queue stage neither helps nor hurts at fixed load.
    assert max(store_rates) - min(store_rates) < 0.06 * max(store_rates)
    # With several queues, every queue sees a share of the work.
    for queues, _total, per_queue, _store in rows:
        if queues > 1:
            assert all(rate > 0 for rate in per_queue)
    benchmark.extra_info["rows"] = [
        (q, round(t), [round(r) for r in pq], round(s)) for q, t, pq, s in rows
    ]
