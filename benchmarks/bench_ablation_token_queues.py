"""Ablation: queue-stage width and token circulation (§6.2 "Queues").

The token serialises LId assignment, so the queue *stage* scales by
letting non-holders buffer while the token circulates.  This ablation
verifies that widening the queue stage keeps total sequencing throughput
flat at fixed load (the token is not a throughput bottleneck at these
rates) and that work spreads across the queues.

The sweep and the flat-store-rate/work-spread assertions live on the
catalog entry (``repro.scenarios``); this script renders the table.
"""

import pytest

from conftest import kilo, print_header, run_catalog_entry


@pytest.mark.benchmark(group="ablation")
def test_ablation_queue_stage_width(benchmark):
    result = run_catalog_entry(benchmark, "ablation-token-queues")
    points = result.aggregates["points"]

    print_header(result.spec.title)
    print(f"{'queues':>7}  {'stage total':>11}  {'store total':>11}  per-queue")
    for point in points:
        per_queue = sorted(point["stage_rates"]["Queue"].values())
        spread = ", ".join(kilo(rate).strip() for rate in per_queue)
        print(f"{len(per_queue):>7}  {kilo(point['stage_totals']['Queue']):>11}  "
              f"{kilo(point['stage_totals']['Store']):>11}  [{spread}]")

    benchmark.extra_info["rows"] = [
        (point["label"], point["stage_totals"]["Queue"],
         sorted(point["stage_rates"]["Queue"].values()),
         point["stage_totals"]["Store"])
        for point in points
    ]
