"""Table 4: two clients, two batchers, one machine elsewhere (§7.2).

Paper: "Both batchers achieve a throughput that is higher than the one
achieved by a single batcher in the previous experiments...  However, now
the bottleneck is pushed to the filter stage" (~120 K records/s; the
paper's extracted rows show Filter 120, Maintainer 118, Store 121).

The catalog entry sweeps the single-batcher reference and the two-batcher
deployment; the bottleneck-shift assertions are its invariants.
"""

import pytest

from conftest import print_header, print_pipeline_point, run_catalog_entry


@pytest.mark.benchmark(group="tables")
def test_table4_two_batchers_filter_bottleneck(benchmark):
    result = run_catalog_entry(benchmark, "table4-two-batchers")
    point = result.aggregates["points"][1]

    print_header("Table 4: two clients + two batchers (K records/s)")
    print_pipeline_point(point)

    benchmark.extra_info["stage_totals"] = point["stage_totals"]
