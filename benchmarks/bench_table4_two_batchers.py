"""Table 4: two clients, two batchers, one machine elsewhere (§7.2).

Paper: "Both batchers achieve a throughput that is higher than the one
achieved by a single batcher in the previous experiments...  However, now
the bottleneck is pushed to the filter stage" (~120 K records/s; the
paper's extracted rows show Filter 120, Maintainer 118, Store 121).
"""

import pytest

from repro.bench import run_pipeline_sim

from conftest import kilo, print_header, run_once


@pytest.mark.benchmark(group="tables")
def test_table4_two_batchers_filter_bottleneck(benchmark):
    result = run_once(
        benchmark,
        run_pipeline_sim,
        clients=2,
        batchers=2,
        duration=1.5,
        warmup=0.4,
    )

    print_header("Table 4: two clients + two batchers (K records/s)")
    for stage, machine, rate in result.rows():
        print(f"  {stage:<8} {machine:<18} {kilo(rate)}")
    print(f"  bottleneck: {result.bottleneck()}")

    assert result.bottleneck() == "Filter"
    # Batcher stage throughput roughly doubled vs Table 3's single batcher.
    table3 = run_pipeline_sim(clients=2, duration=1.0, warmup=0.3)
    assert result.stage_total("Batcher") > 1.8 * table3.stage_total("Batcher")
    # The filter absorbs roughly half of what the batcher stage feeds it
    # ("the throughput of latter stages is almost half the throughput of
    # the Batcher [stage]").
    ratio = result.stage_total("Filter") / result.stage_total("Batcher")
    assert 0.4 < ratio < 0.6
    assert result.stage_total("Filter") == pytest.approx(120_000, rel=0.08)
    benchmark.extra_info["rows"] = [
        (stage, machine, round(rate)) for stage, machine, rate in result.rows()
    ]
