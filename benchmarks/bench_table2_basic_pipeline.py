"""Table 2: basic Chariots deployment, one machine per stage (§7.2).

Paper: every machine achieves a similar 124–132 K records/s; the close
numbers "indicate that the bottleneck is possibly due to the clients",
with the store slightly ahead of the client because of buffering.

The deployment and the paper-claim assertions live on the catalog entry's
invariants; this script renders the table.
"""

import pytest

from conftest import print_header, print_pipeline_point, run_catalog_entry


@pytest.mark.benchmark(group="tables")
def test_table2_one_machine_per_stage(benchmark):
    result = run_catalog_entry(benchmark, "table2-basic-pipeline")
    point = result.aggregates["points"][0]

    print_header("Table 2: Chariots, one machine per stage (K records/s)")
    print_pipeline_point(point)

    benchmark.extra_info["stage_totals"] = point["stage_totals"]
