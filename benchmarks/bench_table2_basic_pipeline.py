"""Table 2: basic Chariots deployment, one machine per stage (§7.2).

Paper: every machine achieves a similar 124–132 K records/s; the close
numbers "indicate that the bottleneck is possibly due to the clients",
with the store slightly ahead of the client because of buffering.
"""

import pytest

from repro.bench import run_pipeline_sim

from conftest import kilo, print_header, run_once


@pytest.mark.benchmark(group="tables")
def test_table2_one_machine_per_stage(benchmark):
    result = run_once(
        benchmark,
        run_pipeline_sim,
        clients=1,
        duration=1.5,
        warmup=0.4,
    )

    print_header("Table 2: Chariots, one machine per stage (K records/s)")
    for stage, machine, rate in result.rows():
        print(f"  {stage:<8} {machine:<18} {kilo(rate)}")
    print(f"  bottleneck: {result.bottleneck()}")

    client_rate = result.stage_total("Client")
    # All stages track the client rate within a few percent (Table 2).
    for stage in ("Batcher", "Filter", "Queue", "Store"):
        assert result.stage_total(stage) == pytest.approx(client_rate, rel=0.06)
    assert 120_000 < client_rate < 135_000
    assert result.bottleneck() == "Client"
    benchmark.extra_info["rows"] = [
        (stage, machine, round(rate)) for stage, machine, rate in result.rows()
    ]
