"""Ablation: round-robin LId batch size (§5.2, Figure 4's parameter).

The batch size controls how many consecutive LIds a maintainer owns per
round.  Throughput is insensitive (ownership is computed, not coordinated),
but the head of the log trails further behind with larger rounds: the HL
can only pass a round once its owner has filled it, so a lightly-loaded
maintainer with a huge round holds the whole log's head back.

The sweep, topology, and the flat-throughput/HL-lag assertions live on the
catalog entry (``repro.scenarios``); this script renders the table.
"""

import pytest

from conftest import kilo, print_header, run_catalog_entry


@pytest.mark.benchmark(group="ablation")
def test_ablation_lid_batch_size(benchmark):
    result = run_catalog_entry(benchmark, "ablation-lid-batch-size")
    points = result.aggregates["points"]

    print_header(result.spec.title)
    print(f"{'batch':>8}  {'throughput':>11}  {'HL lag (records)':>17}")
    for point in points:
        batch = point["label"].split("-", 1)[1]
        print(f"{batch:>8}  {kilo(point['achieved']):>11}  "
              f"{point['head_lag']:>17}")

    benchmark.extra_info["rows"] = [
        (point["label"], point["achieved"], point["head_lag"])
        for point in points
    ]
