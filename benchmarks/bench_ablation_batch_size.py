"""Ablation: round-robin LId batch size (§5.2, Figure 4's parameter).

The batch size controls how many consecutive LIds a maintainer owns per
round.  Throughput is insensitive (ownership is computed, not coordinated),
but the head of the log trails further behind with larger rounds: the HL
can only pass a round once its owner has filled it, so a lightly-loaded
maintainer with a huge round holds the whole log's head back.
"""

import pytest

from repro.bench import run_flstore_sim

from conftest import kilo, print_header, run_once

BATCH_SIZES = [100, 1000, 10_000, 50_000]


def sweep():
    rows = []
    for batch in BATCH_SIZES:
        result = run_flstore_sim(
            n_maintainers=4,
            target_per_maintainer=100_000,
            lid_batch=batch,
            duration=1.0,
            warmup=0.3,
        )
        rows.append((batch, result.achieved_total, result.head_lag_records))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_lid_batch_size(benchmark):
    rows = run_once(benchmark, sweep)

    print_header("Ablation: LId round size vs throughput and HL lag")
    print(f"{'batch':>8}  {'throughput':>11}  {'HL lag (records)':>17}")
    for batch, achieved, lag in rows:
        print(f"{batch:>8}  {kilo(achieved):>11}  {lag:>17}")

    rates = [achieved for _, achieved, _ in rows]
    assert max(rates) - min(rates) < 0.05 * max(rates)
    # Much larger rounds leave a (weakly) larger HL lag.
    assert rows[-1][2] >= rows[0][2]
    benchmark.extra_info["rows"] = rows
