"""Table 1: the shared-log systems comparison matrix (§2.3)."""

import pytest

from repro.bench import chariots_fills_the_void, render
from repro.bench.comparison import groups

from conftest import print_header, run_once


@pytest.mark.benchmark(group="table1")
def test_table1_comparison_matrix(benchmark):
    text = run_once(benchmark, render)
    print_header("Table 1: shared log services comparison")
    print(text)
    assert chariots_fills_the_void()
    assert len(groups()) == 4
    benchmark.extra_info["table"] = text
