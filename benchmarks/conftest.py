"""Shared helpers for the benchmark harness (pytest-benchmark)."""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict

_RESULTS: Dict[str, object] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--json-out",
        action="store",
        default=None,
        metavar="PATH",
        help="write every result collected via run_once() as deterministic "
        "JSON (sorted keys, no timestamps)",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json-out", default=None)
    if not path or not _RESULTS:
        return
    payload = {
        name: dataclasses.asdict(result)
        if dataclasses.is_dataclass(result)
        else result
        for name, result in _RESULTS.items()
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=repr)
        handle.write("\n")


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run a simulation exactly once under pytest-benchmark.

    The interesting output of these benchmarks is the *simulated* rates the
    result object carries (printed as the paper's tables/figures), not the
    host wall time, so one round suffices.  Results are kept for
    ``--json-out`` reporting.
    """
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    _RESULTS[benchmark.name] = result
    return result


def run_catalog_entry(benchmark, name: str):
    """Run one scenario-catalog entry in-memory under pytest-benchmark.

    The figure/table scripts are thin wrappers over the catalog
    (``repro.scenarios``): topology, workload, sweep, and the paper-claim
    assertions all live on the :class:`~repro.scenarios.ScenarioSpec` as
    declarative invariants.  A broken invariant raises
    :class:`~repro.scenarios.ScenarioError`, failing the benchmark test.
    """
    from repro.scenarios import get, run_scenario

    spec = get(name)
    result = benchmark.pedantic(
        run_scenario,
        args=(spec,),
        kwargs={"run_root": None, "raise_on_failure": True},
        rounds=1,
        iterations=1,
    )
    _RESULTS[benchmark.name] = result.aggregates
    benchmark.extra_info["scenario"] = name
    return result


def kilo(rate: float) -> str:
    return f"{rate / 1000:8.1f}K"


def print_pipeline_point(point: Dict) -> None:
    """Render one pipeline point's per-machine rates as a paper-style table."""
    for stage, rates in point["stage_rates"].items():
        for machine, rate in rates.items():
            print(f"  {stage:<8} {machine:<18} {kilo(rate)}")
    print(f"  bottleneck: {point['bottleneck']}")


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
