"""Shared helpers for the benchmark harness (pytest-benchmark)."""

from __future__ import annotations

from typing import Callable


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run a simulation exactly once under pytest-benchmark.

    The interesting output of these benchmarks is the *simulated* rates the
    result object carries (printed as the paper's tables/figures), not the
    host wall time, so one round suffices.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def kilo(rate: float) -> str:
    return f"{rate / 1000:8.1f}K"


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
