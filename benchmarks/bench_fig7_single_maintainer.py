"""Figure 7: one maintainer's achieved vs target throughput (§7.1).

Paper: "as the target throughput increases, the achieved throughput
increases up to a point and then plateaus.  The maximum throughput is
achieved when the target throughput is 150K and then drops to be around
120K appends per second."  (Public cloud, c3.large, 512 B records.)
"""

import pytest

from repro.bench import run_flstore_sim
from repro.core import PUBLIC_CLOUD

from conftest import kilo, print_header, run_once

TARGETS = [25_000, 50_000, 75_000, 100_000, 125_000, 150_000, 175_000,
           200_000, 250_000, 300_000]


def sweep():
    points = []
    for target in TARGETS:
        result = run_flstore_sim(
            n_maintainers=1,
            target_per_maintainer=target,
            maintainer_profile=PUBLIC_CLOUD,
            duration=1.2,
            warmup=0.4,
        )
        points.append((target, result.achieved_total))
    return points


@pytest.mark.benchmark(group="fig7")
def test_fig7_single_maintainer_throughput_curve(benchmark):
    points = run_once(benchmark, sweep)

    print_header("Figure 7: one public-cloud maintainer, achieved vs target")
    print(f"{'target':>10}  {'achieved':>10}")
    for target, achieved in points:
        print(f"{kilo(target):>10}  {kilo(achieved):>10}")

    by_target = dict(points)
    # Below the knee, achieved tracks target.
    for target in TARGETS[:5]:
        assert by_target[target] == pytest.approx(target, rel=0.05)
    # Peak at ~150K, then a drop to ~120K — the paper's exact shape.
    peak_target = max(by_target, key=by_target.get)
    assert peak_target == 150_000
    assert by_target[300_000] < by_target[150_000]
    assert by_target[300_000] == pytest.approx(120_000, rel=0.08)
    benchmark.extra_info["points"] = [(t, round(a)) for t, a in points]
