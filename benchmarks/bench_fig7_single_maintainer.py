"""Figure 7: one maintainer's achieved vs target throughput (§7.1).

Paper: "as the target throughput increases, the achieved throughput
increases up to a point and then plateaus.  The maximum throughput is
achieved when the target throughput is 150K and then drops to be around
120K appends per second."  (Public cloud, c3.large, 512 B records.)

The sweep, topology, and the paper-claim assertions live on the catalog
entry (``repro.scenarios``); this script renders the figure.
"""

import pytest

from conftest import kilo, print_header, run_catalog_entry


@pytest.mark.benchmark(group="fig7")
def test_fig7_single_maintainer_throughput_curve(benchmark):
    result = run_catalog_entry(benchmark, "fig7-single-maintainer")
    points = result.aggregates["points"]

    print_header(result.spec.title)
    print(f"{'target':>10}  {'achieved':>10}")
    for point in points:
        print(f"{kilo(point['target']):>10}  {kilo(point['achieved']):>10}")

    benchmark.extra_info["points"] = [
        (point["target"], point["achieved"]) for point in points
    ]
