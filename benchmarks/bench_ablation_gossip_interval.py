"""Ablation: head-of-log gossip interval vs HL staleness (§5.4).

The paper argues the fixed-size gossip "does not pose a significant
bottleneck for throughput.  It might, however, cause the latency to be
higher as the throughput increases."  This ablation quantifies the trade:
coarser gossip leaves more assigned-but-unannounced records behind the
head of the log, while throughput stays flat.
"""

import pytest

from repro.bench import run_flstore_sim

from conftest import kilo, print_header, run_once

INTERVALS = [0.001, 0.005, 0.02, 0.08]


def sweep():
    rows = []
    for interval in INTERVALS:
        result = run_flstore_sim(
            n_maintainers=4,
            target_per_maintainer=100_000,
            gossip_interval=interval,
            duration=1.0,
            warmup=0.3,
        )
        rows.append((interval, result.achieved_total, result.head_lag_records))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_gossip_interval_vs_head_lag(benchmark):
    rows = run_once(benchmark, sweep)

    print_header("Ablation: gossip interval vs head-of-log staleness")
    print(f"{'interval':>10}  {'throughput':>11}  {'HL lag (records)':>17}")
    for interval, achieved, lag in rows:
        print(f"{interval * 1000:>8.0f}ms  {kilo(achieved):>11}  {lag:>17}")

    # Throughput is insensitive to the gossip interval (fixed-size gossip
    # is off the data path).
    rates = [achieved for _, achieved, _ in rows]
    assert max(rates) - min(rates) < 0.05 * max(rates)
    # HL staleness grows with the interval.
    lags = [lag for _, _, lag in rows]
    assert lags[-1] > lags[0]
    benchmark.extra_info["rows"] = [
        (interval, round(achieved), lag) for interval, achieved, lag in rows
    ]
