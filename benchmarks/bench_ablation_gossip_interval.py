"""Ablation: head-of-log gossip interval vs HL staleness (§5.4).

The paper argues the fixed-size gossip "does not pose a significant
bottleneck for throughput.  It might, however, cause the latency to be
higher as the throughput increases."  This ablation quantifies the trade:
coarser gossip leaves more assigned-but-unannounced records behind the
head of the log, while throughput stays flat.

The sweep and the flat-throughput/growing-lag assertions live on the
catalog entry (``repro.scenarios``); this script renders the table.
"""

import pytest

from conftest import kilo, print_header, run_catalog_entry


@pytest.mark.benchmark(group="ablation")
def test_ablation_gossip_interval_vs_head_lag(benchmark):
    result = run_catalog_entry(benchmark, "ablation-gossip-interval")
    points = result.aggregates["points"]

    print_header(result.spec.title)
    print(f"{'interval':>10}  {'throughput':>11}  {'HL lag (records)':>17}")
    for point in points:
        interval = point["label"].split("-", 1)[1]
        print(f"{interval:>10}  {kilo(point['achieved']):>11}  "
              f"{point['head_lag']:>17}")

    benchmark.extra_info["rows"] = [
        (point["label"], point["achieved"], point["head_lag"])
        for point in points
    ]
