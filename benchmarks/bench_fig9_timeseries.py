"""Figure 9: throughput timeseries of client / batcher / queue (§7.2).

A fixed number of records flows through the two-client, two-batcher
deployment on machines whose NIC is shared between receive and transmit
(the paper: "The network interface's I/O of the Filter was limiting its
throughput").  Paper observations asserted by the catalog entry's
invariants:

* the clients/batchers finish the workload well before the latter stages
  (the constrained filter takes roughly twice as long);
* the queue's throughput increases abruptly near the end of the run —
  once the filter stops receiving from the batchers, its NIC is free to
  transmit at full capacity and the backlog drains fast.
"""

import pytest

from conftest import print_header, run_catalog_entry


@pytest.mark.benchmark(group="fig9")
def test_fig9_stage_throughput_timeseries(benchmark):
    result = run_catalog_entry(benchmark, "fig9-stage-timeseries")
    sources = result.spec.workload.timeseries_sources
    timeseries = result.timeseries["base"]

    print_header("Figure 9: per-stage throughput over time (K records/s)")
    times = sorted({t for source in sources for t, _ in timeseries[source]})
    print(f"{'t(s)':>6}  " + "  ".join(f"{s.split('/')[1]:>10}" for s in sources))
    series = {s: dict(timeseries[s]) for s in sources}
    for t in times:
        row = "  ".join(f"{series[s].get(t, 0.0) / 1000:>9.1f}K" for s in sources)
        print(f"{t:>6.1f}  {row}")
    print(f"  drain: {result.aggregates['points'][0]['drain']}")

    benchmark.extra_info["series"] = {
        source: list(timeseries[source]) for source in sources
    }
