"""Figure 9: throughput timeseries of client / batcher / queue (§7.2).

A fixed number of records flows through the two-client, two-batcher
deployment on machines whose NIC is shared between receive and transmit
(the paper: "The network interface's I/O of the Filter was limiting its
throughput").  Paper observations reproduced and asserted here:

* the clients/batchers finish the workload well before the latter stages
  (the constrained filter takes roughly twice as long);
* the queue's throughput increases abruptly near the end of the run —
  once the filter stops receiving from the batchers, its NIC is free to
  transmit at full capacity and the backlog drains fast.
"""

import pytest

from repro.bench import run_pipeline_sim
from repro.core import MachineProfile

from conftest import print_header, run_once

SOURCES = ("A/client/0", "A/batcher/0", "A/queue/0")

#: Private-cloud CPU with a 1 GbE *shared* NIC: receive and transmit
#: contend, which is the filter bottleneck Figure 9's discussion describes.
FIG9_PROFILE = MachineProfile(
    name="fig9-shared-nic",
    per_record_cost=1.0 / 132_000,
    nic_bandwidth_bytes=125e6,
    saturation_queue=24,
    overload_penalty=0.012,
    overload_cap=1.09,
)


@pytest.mark.benchmark(group="fig9")
def test_fig9_stage_throughput_timeseries(benchmark):
    result = run_once(
        benchmark,
        run_pipeline_sim,
        clients=2,
        batchers=2,
        total_records=240_000,
        duration=1.5,
        warmup=0.2,
        run_past_load=2.0,
        profile=FIG9_PROFILE,
        shared_nic=True,
        timeseries_for=SOURCES,
        timeseries_bin=0.2,
    )

    print_header("Figure 9: per-stage throughput over time (K records/s)")
    times = sorted({t for source in SOURCES for t, _ in result.timeseries[source]})
    print(f"{'t(s)':>6}  " + "  ".join(f"{s.split('/')[1]:>10}" for s in SOURCES))
    series = {s: dict(result.timeseries[s]) for s in SOURCES}
    for t in times:
        row = "  ".join(f"{series[s].get(t, 0.0) / 1000:>9.1f}K" for s in SOURCES)
        print(f"{t:>6.1f}  {row}")

    assert result.records_stored == 240_000

    def active_end(source):
        points = [t for t, r in result.timeseries[source] if r > 1000]
        return points[-1] if points else 0.0

    client_end = active_end("A/client/0")
    queue_end = active_end("A/queue/0")
    # The latter stages last well beyond the clients (Figure 9's 42:30 vs
    # 43:10 gap — roughly twice the load window).
    assert queue_end > client_end + 0.4

    # The queue's throughput surges once upstream traffic stops: the
    # filter's shared NIC is freed from receiving and transmits at full
    # rate ("an abrupt increase ... right before the end").
    queue = dict(result.timeseries["A/queue/0"])
    loaded = [r for t, r in queue.items() if 0.2 <= t <= client_end]
    draining = [r for t, r in queue.items() if client_end + 0.2 <= t < queue_end]
    assert loaded and draining
    assert max(draining) > 1.25 * (sum(loaded) / len(loaded))
    benchmark.extra_info["series"] = {
        s: [(round(t, 2), round(r)) for t, r in result.timeseries[s]] for s in SOURCES
    }
