"""Ablation: sender shipping interval vs geo-replication lag.

Runs a *two-datacenter* Chariots deployment under the capacity simulator —
machines in different simulated datacenters, WAN latency on every
cross-datacenter link — and measures how long after the load stops the
remote datacenter needs to incorporate everything.  The shipping interval
trades replication batching against visibility lag; the WAN round trip is
the floor.

The deployment, load, and lag measurement live in the geo executor of
``repro.scenarios``; the catalog entry sweeps the shipping interval.
"""

import pytest

from conftest import print_header, run_catalog_entry


@pytest.mark.benchmark(group="ablation")
def test_ablation_replication_interval_vs_lag(benchmark):
    result = run_catalog_entry(benchmark, "geo-replication-lag")
    points = result.aggregates["points"]

    print_header("Ablation: shipping interval vs geo-replication lag (WAN RTT 60 ms)")
    print(f"{'point':>12}  {'lag after load stops':>20}")
    for point in points:
        print(f"{point['label']:>12}  {point['lag_seconds'] * 1000:>18.1f}ms")

    benchmark.extra_info["rows"] = [
        (point["label"], point["lag_seconds"]) for point in points
    ]
