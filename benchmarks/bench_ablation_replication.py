"""Ablation: sender shipping interval vs geo-replication lag.

Runs a *two-datacenter* Chariots deployment under the capacity simulator —
machines in different simulated datacenters, WAN latency on every
cross-datacenter link — and measures how long after the load stops the
remote datacenter needs to incorporate everything.  The shipping interval
trades replication batching against visibility lag; the WAN round trip is
the floor.
"""

import itertools

import pytest

from repro.bench.harness import GENERATOR
from repro.chariots.messages import DraftBatch, DraftRecord
from repro.chariots.pipeline import ChariotsDeployment
from repro.core import PRIVATE_CLOUD, NetworkProfile, PipelineConfig
from repro.sim import LoadClient, SimRuntime

from conftest import print_header, run_once

INTERVALS = [0.005, 0.04, 0.16]
WAN_RTT = 0.060
LOAD_RECORDS = 10_000
LOAD_RATE = 20_000.0


def geo_lag(replication_interval: float) -> float:
    runtime = SimRuntime(network=NetworkProfile(wan_rtt=WAN_RTT))

    def placer(actor) -> None:
        datacenter = actor.name.split("/")[0]
        runtime.place_on_new_machine(actor, profile=PRIVATE_CLOUD, datacenter=datacenter)

    deployment = ChariotsDeployment(
        runtime,
        ["A", "B"],
        pipeline_config=PipelineConfig(replication_interval=replication_interval),
        placer=placer,
        n_indexers=0,
    )

    seq = itertools.count(1)

    def factory(client_name: str, batch_index: int, n: int) -> DraftBatch:
        return DraftBatch(
            [DraftRecord(client=client_name, seq=next(seq), body=b"\x00" * 512)
             for _ in range(n)]
        )

    client = LoadClient(
        "A/loadgen",
        targets=[deployment["A"].batchers[0].name],
        batch_factory=factory,
        target_rate=LOAD_RATE,
        batch_size=200,
        total_records=LOAD_RECORDS,
    )
    runtime.place_on_new_machine(client, profile=GENERATOR, datacenter="A")

    load_end = LOAD_RECORDS / LOAD_RATE
    deadline = load_end + 5.0
    runtime.start()
    while runtime.now < deadline:
        runtime.run_for(0.01)
        if deployment["B"].frontier().get("A", 0) >= LOAD_RECORDS:
            return max(0.0, runtime.now - load_end)
    raise AssertionError(
        f"datacenter B never caught up (got {deployment['B'].frontier()})"
    )


def sweep():
    return [(interval, geo_lag(interval)) for interval in INTERVALS]


@pytest.mark.benchmark(group="ablation")
def test_ablation_replication_interval_vs_lag(benchmark):
    rows = run_once(benchmark, sweep)

    print_header("Ablation: shipping interval vs geo-replication lag (WAN RTT 60 ms)")
    print(f"{'interval':>10}  {'lag after load stops':>20}")
    for interval, lag in rows:
        print(f"{interval * 1000:>8.0f}ms  {lag * 1000:>18.1f}ms")

    lags = [lag for _, lag in rows]
    # Lag grows with the shipping interval and never beats the WAN one-way
    # latency floor.
    assert lags[-1] > lags[0]
    assert all(lag >= WAN_RTT / 2 * 0.5 for lag in lags)
    benchmark.extra_info["rows"] = [
        (interval, round(lag, 4)) for interval, lag in rows
    ]
