"""Figure 8: FLStore append throughput vs number of maintainers (§7.1).

Paper series: private cloud (131K/maintainer single, 1.302M at ten —
99.3% of perfect scaling), public cloud at target 125K, and public cloud
at target 250K (99.9% scaling at the overloaded operating point).
"""

import pytest

from repro.bench import run_flstore_sim
from repro.core import PRIVATE_CLOUD, PUBLIC_CLOUD

from conftest import kilo, print_header, run_once

MAINTAINER_COUNTS = [1, 2, 4, 6, 8, 10]

SERIES = [
    ("private cloud (131K target)", PRIVATE_CLOUD, 131_000),
    ("public cloud (125K target)", PUBLIC_CLOUD, 125_000),
    ("public cloud (250K target)", PUBLIC_CLOUD, 250_000),
]


def sweep(profile, target):
    points = []
    for n in MAINTAINER_COUNTS:
        result = run_flstore_sim(
            n_maintainers=n,
            target_per_maintainer=target,
            maintainer_profile=profile,
            duration=1.0,
            warmup=0.3,
        )
        points.append((n, result.achieved_total, result.perfect_scaling_fraction))
    return points


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("label,profile,target", SERIES, ids=[s[0] for s in SERIES])
def test_fig8_flstore_scaling(benchmark, label, profile, target):
    points = run_once(benchmark, sweep, profile, target)

    print_header(f"Figure 8: FLStore scaling — {label}")
    print(f"{'maintainers':>12}  {'achieved':>10}  {'vs perfect':>10}")
    for n, achieved, fraction in points:
        print(f"{n:>12}  {kilo(achieved):>10}  {fraction:>9.1%}")

    # Near-linear scaling (§7.1: 99.3% / 99.9% at ten maintainers).
    final_n, final_achieved, final_fraction = points[-1]
    assert final_fraction > 0.97
    single = points[0][1]
    assert final_achieved == pytest.approx(final_n * single, rel=0.05)
    benchmark.extra_info["points"] = [
        (n, round(a), round(f, 4)) for n, a, f in points
    ]
