"""Figure 8: FLStore append throughput vs number of maintainers (§7.1).

Paper series: private cloud (131K/maintainer single, 1.302M at ten —
99.3% of perfect scaling), public cloud at target 125K, and public cloud
at target 250K (99.9% scaling at the overloaded operating point).

One catalog entry per series; the near-linear-scaling assertions are the
entries' invariants.
"""

import pytest

from conftest import kilo, print_header, run_catalog_entry

SERIES = [
    "fig8-scaling-private-131k",
    "fig8-scaling-public-125k",
    "fig8-scaling-public-250k",
]


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("scenario", SERIES)
def test_fig8_flstore_scaling(benchmark, scenario):
    result = run_catalog_entry(benchmark, scenario)
    points = result.aggregates["points"]

    print_header(result.spec.title)
    print(f"{'maintainers':>12}  {'achieved':>10}  {'vs perfect':>10}")
    for point in points:
        print(f"{point['maintainers']:>12}  {kilo(point['achieved']):>10}  "
              f"{point['scaling_fraction']:>9.1%}")

    benchmark.extra_info["points"] = [
        (point["maintainers"], point["achieved"], point["scaling_fraction"])
        for point in points
    ]
