"""Micro-benchmarks of the library's hot paths (host performance).

Unlike the evaluation benchmarks (which report *simulated* throughput),
these measure the actual Python implementation: records appended per host
second through the core data structures and through a full in-process
pipeline.  Useful for catching performance regressions in the library
itself.
"""

import itertools

import pytest

from repro.chariots import AbstractChariots, ChariotsDeployment
from repro.chariots.filters import FilterCore, FilterMap
from repro.core import LogStore, Record
from repro.flstore import MaintainerCore, OwnershipPlan
from repro.runtime import LocalRuntime

N = 2_000


@pytest.mark.benchmark(group="micro")
def test_micro_logstore_put(benchmark):
    records = [Record.make("A", t, None) for t in range(1, N + 1)]

    def run():
        store = LogStore()
        for lid, record in enumerate(records):
            store.put(lid, record)
        return store

    store = benchmark(run)
    assert len(store) == N


@pytest.mark.benchmark(group="micro")
def test_micro_maintainer_post_assignment(benchmark):
    records = [Record.make("A", t, None) for t in range(1, N + 1)]
    plan = OwnershipPlan(["m0", "m1", "m2"], batch_size=1000)

    def run():
        core = MaintainerCore("m0", plan)
        core.append_count(records)
        return core

    core = benchmark(run)
    assert core.stored_count() == N


@pytest.mark.benchmark(group="micro")
def test_micro_filter_admission(benchmark):
    fmap = FilterMap(["f"])
    fmap.assign_host("A", ["f"])
    records = [Record.make("A", t, None) for t in range(1, N + 1)]

    def run():
        core = FilterCore("f", fmap)
        admitted = 0
        for record in records:
            admitted += len(core.offer_external(record))
        return admitted

    assert benchmark(run) == N


@pytest.mark.benchmark(group="micro")
def test_micro_abstract_append(benchmark):
    def run():
        dc = AbstractChariots("A", ["A", "B"])
        for i in range(N):
            dc.append(i)
        return dc

    assert len(benchmark(run)) == N


@pytest.mark.benchmark(group="micro")
def test_micro_abstract_replication(benchmark):
    source = AbstractChariots("A", ["A", "B"])
    for i in range(N):
        source.append(i)
    records, matrix = source.snapshot_for("B")

    def run():
        sink = AbstractChariots("B", ["A", "B"])
        sink.receive("A", records, matrix)
        return sink

    assert len(benchmark(run)) == N


@pytest.mark.benchmark(group="micro")
def test_micro_end_to_end_pipeline_appends(benchmark):
    """Whole-pipeline host throughput: client -> ... -> maintainer."""

    def run():
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(runtime, ["A"], batch_size=1000)
        client = deployment.client("A")
        counter = itertools.count()
        for _ in range(500):
            client.append(next(counter))
        runtime.run_for(0.1)
        return deployment["A"].total_records()

    assert benchmark(run) == 500
