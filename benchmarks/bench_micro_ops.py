"""Micro-benchmarks of the library's hot paths (host performance).

Unlike the evaluation benchmarks (which report *simulated* throughput),
these measure the actual Python implementation: records appended per host
second through the core data structures and through a full in-process
pipeline.  Useful for catching performance regressions in the library
itself.

Run under pytest-benchmark for the full statistical treatment, or as a
script to write the machine-readable reports the repo commits::

    python benchmarks/bench_micro_ops.py --json-out BENCH_micro.json
    python benchmarks/bench_micro_ops.py --suite pipeline --json-out BENCH_pipeline.json
"""

import itertools
import json

import pytest

from repro.bench.micro import sample_records
from repro.chariots import AbstractChariots, ChariotsDeployment
from repro.chariots.filters import FilterCore, FilterMap
from repro.core import LogStore, Record
from repro.flstore import MaintainerCore, OwnershipPlan
from repro.net import (
    decode_message,
    decode_value_binary,
    encode_message,
    encode_value_binary,
)
from repro.runtime import LocalRuntime

N = 2_000


@pytest.mark.benchmark(group="micro")
def test_micro_logstore_put(benchmark):
    records = [Record.make("A", t, None) for t in range(1, N + 1)]

    def run():
        store = LogStore()
        for lid, record in enumerate(records):
            store.put(lid, record)
        return store

    store = benchmark(run)
    assert len(store) == N


@pytest.mark.benchmark(group="micro")
def test_micro_maintainer_post_assignment(benchmark):
    records = [Record.make("A", t, None) for t in range(1, N + 1)]
    plan = OwnershipPlan(["m0", "m1", "m2"], batch_size=1000)

    def run():
        core = MaintainerCore("m0", plan)
        core.append_count(records)
        return core

    core = benchmark(run)
    assert core.stored_count() == N


@pytest.mark.benchmark(group="micro")
def test_micro_filter_admission(benchmark):
    fmap = FilterMap(["f"])
    fmap.assign_host("A", ["f"])
    records = [Record.make("A", t, None) for t in range(1, N + 1)]

    def run():
        core = FilterCore("f", fmap)
        admitted = 0
        for record in records:
            admitted += len(core.offer_external(record))
        return admitted

    assert benchmark(run) == N


@pytest.mark.benchmark(group="micro")
def test_micro_abstract_append(benchmark):
    def run():
        dc = AbstractChariots("A", ["A", "B"])
        for i in range(N):
            dc.append(i)
        return dc

    assert len(benchmark(run)) == N


@pytest.mark.benchmark(group="micro")
def test_micro_abstract_replication(benchmark):
    source = AbstractChariots("A", ["A", "B"])
    for i in range(N):
        source.append(i)
    records, matrix = source.snapshot_for("B")

    def run():
        sink = AbstractChariots("B", ["A", "B"])
        sink.receive("A", records, matrix)
        return sink

    assert len(benchmark(run)) == N


@pytest.mark.benchmark(group="codec")
def test_micro_codec_binary_roundtrip(benchmark):
    records = sample_records(N)

    def run():
        blobs = [encode_value_binary(r) for r in records]
        return [decode_value_binary(b) for b in blobs]

    assert benchmark(run) == records


@pytest.mark.benchmark(group="codec")
def test_micro_codec_json_roundtrip(benchmark):
    records = sample_records(N)

    def run():
        blobs = [
            json.dumps(encode_message(r), separators=(",", ":")) for r in records
        ]
        return [decode_message(json.loads(b)) for b in blobs]

    assert benchmark(run) == records


@pytest.mark.benchmark(group="micro")
def test_micro_end_to_end_pipeline_appends(benchmark):
    """Whole-pipeline host throughput: client -> ... -> maintainer."""

    def run():
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(runtime, ["A"], batch_size=1000)
        client = deployment.client("A")
        counter = itertools.count()
        for _ in range(500):
            client.append(next(counter))
        runtime.run_for(0.1)
        return deployment["A"].total_records()

    assert benchmark(run) == 500


#: Host cost of the same ``run_pipeline_sim(clients=1, duration=0.8,
#: warmup=0.3)`` configuration measured just before the hot-path overhaul
#: (binary codec + batch-aware stage fast paths).  Pinned into
#: BENCH_pipeline.json so the improvement stays visible in the report.
PRE_OVERHAUL_PIPELINE_BASELINE = {
    "records_stored": 101_000,
    "wall_clock_seconds": 1.173,
}


def main(argv=None):
    import argparse

    from repro.bench.micro import (
        run_micro_suite,
        run_pipeline_suite,
        write_json_report,
    )

    parser = argparse.ArgumentParser(
        description="Measure hot-path ops/sec and write a deterministic JSON report."
    )
    parser.add_argument(
        "--suite",
        choices=("micro", "pipeline"),
        default="micro",
        help="micro: codec/maintainer/filter ops; pipeline: end-to-end sim wall clock",
    )
    parser.add_argument(
        "--json-out", metavar="PATH", help="write the report to PATH instead of stdout"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="measurement rounds per candidate"
    )
    args = parser.parse_args(argv)

    if args.suite == "micro":
        report = run_micro_suite(repeats=args.repeats or 6)
    else:
        report = run_pipeline_suite(
            repeats=args.repeats or 3, baseline=PRE_OVERHAUL_PIPELINE_BASELINE
        )
    if args.json_out:
        write_json_report(args.json_out, report)
    else:
        print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
