"""Table 3: two clients, one machine per remaining stage (§7.2).

Paper: doubling the offered load does *not* raise the batcher's
throughput — "the increased load actually resulted in a lower throughput
for the batcher.  This means that the batcher is possibly the bottleneck."
"""

import pytest

from repro.bench import run_pipeline_sim

from conftest import kilo, print_header, run_once


@pytest.mark.benchmark(group="tables")
def test_table3_two_clients_batcher_bottleneck(benchmark):
    result = run_once(
        benchmark,
        run_pipeline_sim,
        clients=2,
        duration=1.5,
        warmup=0.4,
    )

    print_header("Table 3: two clients, one machine per stage (K records/s)")
    for stage, machine, rate in result.rows():
        print(f"  {stage:<8} {machine:<18} {kilo(rate)}")
    print(f"  bottleneck: {result.bottleneck()}")

    assert result.bottleneck() == "Batcher"
    # The overloaded batcher absorbs *less* than one un-overloaded machine
    # could (Table 3: 126K vs the basic deployment's 129K).
    basic = run_pipeline_sim(clients=1, duration=1.0, warmup=0.3)
    assert result.stage_total("Batcher") < basic.stage_total("Batcher")
    # Downstream stages see only what the batcher emits.
    assert result.stage_total("Store") == pytest.approx(
        result.stage_total("Batcher"), rel=0.06
    )
    benchmark.extra_info["rows"] = [
        (stage, machine, round(rate)) for stage, machine, rate in result.rows()
    ]
