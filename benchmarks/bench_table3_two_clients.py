"""Table 3: two clients, one machine per remaining stage (§7.2).

Paper: doubling the offered load does *not* raise the batcher's
throughput — "the increased load actually resulted in a lower throughput
for the batcher.  This means that the batcher is possibly the bottleneck."

The catalog entry sweeps the basic deployment and the two-client one, so
its invariants can compare the overloaded batcher against the reference.
"""

import pytest

from conftest import print_header, print_pipeline_point, run_catalog_entry


@pytest.mark.benchmark(group="tables")
def test_table3_two_clients_batcher_bottleneck(benchmark):
    result = run_catalog_entry(benchmark, "table3-two-clients")
    point = result.aggregates["points"][1]

    print_header("Table 3: two clients, one machine per stage (K records/s)")
    print_pipeline_point(point)

    benchmark.extra_info["stage_totals"] = point["stage_totals"]
