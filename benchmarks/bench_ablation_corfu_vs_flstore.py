"""Ablation: post-assignment (FLStore) vs sequencer pre-assignment (CORFU).

The paper's core design argument (§1, §5.2): CORFU's sequencer is off the
data path but still caps cluster-wide appends at its own request rate,
while FLStore's post-assignment removes the shared component entirely.
This ablation runs both under the same per-unit offered load and shows
FLStore scaling linearly while the baseline saturates at the sequencer.
"""

import pytest

from repro.bench import run_corfu_sim, run_flstore_sim

from conftest import kilo, print_header, run_once

UNIT_COUNTS = [1, 2, 4, 6, 8]
TARGET_PER_UNIT = 125_000.0
#: Sequencer request ceiling; with 16-position grants the cluster caps
#: around 480 K appends/s however many storage units exist.
SEQUENCER_CAPACITY = 30_000.0
GRANT_BATCH = 16


def sweep():
    rows = []
    for n in UNIT_COUNTS:
        flstore = run_flstore_sim(
            n_maintainers=n, target_per_maintainer=TARGET_PER_UNIT,
            duration=1.0, warmup=0.3,
        )
        corfu = run_corfu_sim(
            n_units=n, target_per_unit=TARGET_PER_UNIT,
            sequencer_capacity=SEQUENCER_CAPACITY, grant_batch=GRANT_BATCH,
            duration=1.0, warmup=0.3,
        )
        rows.append((n, flstore.achieved_total, corfu.achieved_total))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_corfu_vs_flstore_scaling(benchmark):
    rows = run_once(benchmark, sweep)

    print_header("Ablation: FLStore vs CORFU-style sequencer (appends/s)")
    print(f"{'units':>6}  {'FLStore':>10}  {'CORFU':>10}")
    for n, flstore, corfu in rows:
        print(f"{n:>6}  {kilo(flstore):>10}  {kilo(corfu):>10}")

    ceiling = SEQUENCER_CAPACITY * GRANT_BATCH
    by_n = {n: (f, c) for n, f, c in rows}
    # FLStore scales ~linearly with units.
    assert by_n[8][0] == pytest.approx(8 * by_n[1][0], rel=0.08)
    # CORFU saturates at the sequencer ceiling regardless of units.
    assert by_n[8][1] <= ceiling * 1.1
    assert by_n[8][1] < 1.6 * by_n[4][1]
    # Crossover: at one unit they are comparable; at eight FLStore wins big.
    assert by_n[1][0] == pytest.approx(by_n[1][1], rel=0.15)
    assert by_n[8][0] > 1.8 * by_n[8][1]
    benchmark.extra_info["rows"] = [(n, round(f), round(c)) for n, f, c in rows]
