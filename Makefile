PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test chaos bench-smoke bench-reports

## Tier-1 gate: the full test suite plus a seconds-scale bench smoke.
check: test bench-smoke

test:
	$(PYTHON) -m pytest -x -q

## Seeded chaos + resilience suites, including the slow soak variants that
## tier-1 skips (the command-line -m overrides the addopts marker filter).
chaos:
	$(PYTHON) -m pytest tests/test_chaos.py tests/test_resilience.py -q -m "slow or not slow"

## Quick sanity pass over the perf harness: tiny batches, one repeat —
## catches import/shape breakage in ~5 s without measuring anything real.
bench-smoke:
	$(PYTHON) -c "from repro.bench.micro import run_micro_suite; \
	report = run_micro_suite(batch=200, repeats=1); \
	assert report['codec']['Record']['binary']['encode_ops_per_sec'] > 0; \
	print('bench smoke ok:', sorted(report))"

## Regenerate the committed perf reports (full-size measurement).
bench-reports:
	$(PYTHON) benchmarks/bench_micro_ops.py --json-out BENCH_micro.json
	$(PYTHON) benchmarks/bench_micro_ops.py --suite pipeline --json-out BENCH_pipeline.json
