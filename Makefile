PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test chaos chaos-multiproc scenarios bench-smoke bench-reports lint analysis ruff mypy baseline graph

## Tier-1 gate: the full test suite plus a seconds-scale bench smoke.
check: test bench-smoke

## Static gates: project linter (always) + ruff/mypy (when installed; CI
## installs both via `pip install ruff mypy`, see .github/workflows/ci.yml).
lint: analysis ruff mypy

## Project-specific AST linter: protocol exhaustiveness, determinism,
## async safety, hot-path slots, typed-API completeness (docs/ANALYSIS.md).
analysis:
	$(PYTHON) -m repro.analysis src --baseline analysis-baseline.json

## Regenerate the curated baseline (only for intentionally accepted debt —
## fix findings instead where possible; tests assert the file is fresh).
baseline:
	$(PYTHON) -m repro.analysis src --baseline analysis-baseline.json --write-baseline

## Dump the message-flow graph extracted by the project model (JSON on
## stdout; `--graph dot` renders for GraphViz — see docs/ANALYSIS.md).
graph:
	$(PYTHON) -m repro.analysis src --graph json

ruff:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (pip install ruff)"; \
	fi

mypy:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping (pip install mypy)"; \
	fi

test:
	$(PYTHON) -m pytest -x -q

## Seeded chaos + resilience suites, including the slow soak variants that
## tier-1 skips (the command-line -m overrides the addopts marker filter).
chaos:
	$(PYTHON) -m pytest tests/test_chaos.py tests/test_resilience.py -q -m "slow or not slow"

## Real-process fault tolerance: SIGKILL one stage worker and one
## maintainer worker mid-run and require fault-free output (docs/FAULTS.md).
## `timeout` hard-caps the wall clock — a wedged worker must fail the run,
## not hang it.
chaos-multiproc:
	timeout 300 $(PYTHON) -m repro.scenarios run multiproc-crash-recovery --no-persist
	timeout 600 $(PYTHON) -m pytest tests/test_multiproc_chaos.py -q -m "slow or not slow"

## Run the full deterministic scenario catalog (paper figures, soaks,
## chaos, overload), persist artifacts under runs/, and diff the perf
## entries against the committed BENCH_*.json baselines (docs/SCENARIOS.md).
scenarios:
	$(PYTHON) -m repro.scenarios run --deterministic --compare

## Quick sanity pass over the perf harness: tiny batches, one repeat —
## catches import/shape breakage in ~5 s without measuring anything real.
bench-smoke:
	$(PYTHON) -c "from repro.bench.micro import run_micro_suite; \
	report = run_micro_suite(batch=200, repeats=1); \
	assert report['codec']['Record']['binary']['encode_ops_per_sec'] > 0; \
	print('bench smoke ok:', sorted(report))"

## Regenerate the committed perf reports (full-size measurement).
bench-reports:
	$(PYTHON) benchmarks/bench_micro_ops.py --json-out BENCH_micro.json
	$(PYTHON) benchmarks/bench_micro_ops.py --suite pipeline --json-out BENCH_pipeline.json
