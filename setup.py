"""Legacy setuptools shim.

Offline environments without the ``wheel`` package cannot run
``pip install -e .`` (PEP 517 editable installs build a wheel); this shim
enables ``python setup.py develop`` as the equivalent fallback.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
