"""Live elasticity: growing a running Chariots datacenter (§6.3).

Every pipeline stage scales without stopping the system.  Filters and log
maintainers use *future reassignment* — the new ownership takes effect at a
TOId/LId boundary that has not been reached yet, so no in-flight record is
ever orphaned; queues splice into the token loop; batchers just announce
themselves.

Run:  python examples/elastic_scaling.py
"""

from repro import ChariotsDeployment, LocalRuntime
from repro.chariots.elasticity import (
    expand_batchers,
    expand_filters,
    expand_maintainers,
    expand_queues,
)


def describe(pipeline) -> str:
    return (
        f"batchers={len(pipeline.batchers)} filters={len(pipeline.filters)} "
        f"queues={len(pipeline.queues)} maintainers={len(pipeline.maintainers)}"
    )


def main() -> None:
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=50)
    ca = deployment.blocking_client("A")
    cb = deployment.blocking_client("B")

    print(f"initial deployment at A: {describe(deployment['A'])}")
    for i in range(20):
        ca.append(f"pre-scale-{i}")
        cb.append(f"remote-{i}")
    deployment.settle(max_seconds=10)
    print(f"records at A before scaling: {deployment['A'].total_records()}")
    print()

    # --- Scale every stage while the system keeps running ----------------- #
    [new_store] = expand_maintainers(deployment["A"], 1)
    print(f"added log maintainer {new_store.name}: its ranges start at a "
          f"future LId (epoch journal: "
          f"{[(e.start_lid, len(e.maintainers)) for e in deployment['A'].plan.epochs]})")

    [new_filter] = expand_filters(deployment["A"], host="B", count=1)
    print(f"added filter {new_filter.name}: it champions a residue slice of "
          f"B's records from a future TOId onward")

    expand_queues(deployment["A"], 1)
    print(f"added queue {deployment['A'].queues[-1].name}: spliced into the "
          f"token exchange loop")

    expand_batchers(deployment["A"], 1)
    print(f"added batcher {deployment['A'].batchers[-1].name}: receivers and "
          f"new clients pick it up automatically")
    print(f"deployment at A is now: {describe(deployment['A'])}")
    print()

    # --- The system keeps working through and after the expansion --------- #
    fresh_client = deployment.blocking_client("A")
    for i in range(60):
        fresh_client.append(f"post-scale-{i}")
        cb.append(f"more-remote-{i}")
    converged = deployment.settle(max_seconds=20)
    print(f"replication converged after scaling: {converged}")
    print(f"records at A: {deployment['A'].total_records()}, "
          f"at B: {deployment['B'].total_records()}")
    print(f"new maintainer now stores {new_store.core.stored_count()} records")
    print(f"new filter admitted {new_filter.core.records_admitted} records")

    # Old records remain readable through the epoch journal.
    entry = fresh_client.read_lid(0).entries[0]
    print(f"oldest record still readable via the epoch journal: "
          f"LId 0 -> {entry.record.body!r}")


if __name__ == "__main__":
    main()
