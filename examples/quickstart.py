"""Quickstart: the shared log in five minutes.

Builds a single-datacenter FLStore (the sequencer-free distributed log,
paper §5), appends and reads records, then brings up a two-datacenter
Chariots deployment (§6) and watches causal geo-replication converge.

Run:  python examples/quickstart.py
"""

from repro import (
    ChariotsDeployment,
    FLStore,
    LocalRuntime,
    ReadRules,
)


def flstore_basics() -> None:
    print("=== FLStore: sequencer-free shared log in one datacenter ===")
    runtime = LocalRuntime()
    store = FLStore(runtime, n_maintainers=3, n_indexers=1, batch_size=100)
    client = store.blocking_client()

    # Append: the receiving maintainer post-assigns the next LId it owns —
    # no central sequencer is ever consulted.
    results = [
        client.append(f"event-{i}", tags={"severity": "info" if i % 2 else "warn"})
        for i in range(10)
    ]
    print(f"appended 10 records; LIds: {[r.lid for r in results]}")

    # Read back by position.
    entry = client.read_lid(results[0].lid).entries[0]
    print(f"read LId {entry.lid}: {entry.record.body!r}")

    # Let head-of-log gossip run, then check the gap-free frontier.
    runtime.run_for(0.1)
    print(f"head of the log (no gaps at or below): {client.head()}")

    # Tag lookup through the distributed indexers.
    warns = client.read(ReadRules(tag_key="severity", tag_value="warn", limit=3))
    print(f"three most recent 'warn' records: {[e.record.body for e in warns]}")
    print()


def chariots_geo_replication() -> None:
    print("=== Chariots: causal geo-replication across datacenters ===")
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["us-east", "eu-west"], batch_size=100)
    east = deployment.blocking_client("us-east")
    west = deployment.blocking_client("eu-west")

    # Appends enter each datacenter's pipeline:
    # batchers -> filters -> queues (token assigns TOId/LId) -> log store.
    a = east.append("order #1 created", tags={"order": 1})
    print(f"us-east appended {a.rid} at LId {a.lid}")

    # An append that causally depends on having seen us-east's record:
    b = west.append(
        "order #1 confirmed", tags={"order": 1}, deps={"us-east": a.toid}
    )
    print(f"eu-west appended {b.rid} (depends on {a.rid})")

    # Replication senders/receivers converge both logs.
    deployment.settle(max_seconds=10)
    for dc in ("us-east", "eu-west"):
        log = [(e.lid, str(e.rid), e.record.body) for e in deployment[dc].all_entries()]
        print(f"{dc} log: {log}")
    print("note: 'confirmed' follows 'created' at BOTH datacenters (causality).")


if __name__ == "__main__":
    flstore_basics()
    chariots_geo_replication()
