"""Hyksos: the causally consistent geo-replicated key-value store (§4.1).

Walks through the paper's Figure 2 scenario step by step — concurrent
writes to the same key at two datacenters, divergent-but-permissible read
results, snapshot get-transactions (Algorithm 1), and convergence after
replication.

Run:  python examples/hyksos_kv_store.py
"""

from repro import ChariotsDeployment, Hyksos, LocalRuntime


def main() -> None:
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=100)
    kv_a = Hyksos(deployment.blocking_client("A"))
    kv_b = Hyksos(deployment.blocking_client("B"))

    # --- Figure 2, time 1: four puts, two of them concurrent on x -------- #
    kv_a.put("x", 10)
    kv_a.put("y", 20)
    kv_b.put("x", 30)
    kv_b.put("z", 40)
    deployment.settle(max_seconds=10)

    print("After replication of the initial puts:")
    print(f"  A reads x = {kv_a.get('x')}   (B's x=30 landed later in A's log)")
    print(f"  B reads x = {kv_b.get('x')}   (A's x=10 landed later in B's log)")
    print("  — exactly the paper's Figure 2, time 1: A returns 30, B returns 10.")
    print("  Divergent answers are permissible: the two puts are causally")
    print("  unrelated, so each datacenter may order them differently (§4.1.2).")
    print()

    # --- Figure 2, time 2: more puts plus a get transaction -------------- #
    kv_a.put("y", 50)
    kv_b.put("z", 60)

    values, snapshot_lid = kv_a.get_transaction(["x", "y", "z"])
    print(f"Get transaction at A pinned to log position {snapshot_lid}:")
    print(f"  {values}")
    print("  The snapshot excludes anything after the pinned position, even")
    print("  newer values — a consistent view of the log prefix (Algorithm 1).")
    print()

    # --- Time 3: convergence --------------------------------------------- #
    deployment.settle(max_seconds=10)
    print("After full propagation:")
    for name, kv in (("A", kv_a), ("B", kv_b)):
        snapshot, _ = kv.get_transaction(["x", "y", "z"])
        print(f"  {name} snapshot: {snapshot}")

    # --- Session causality ------------------------------------------------ #
    print()
    print("Session causality (reads happen-before subsequent writes):")
    observed = kv_b.get("y")
    kv_b.put("audit", f"saw y={observed}")
    deployment.settle(max_seconds=10)
    entries = deployment["A"].all_entries()
    lid_y = max(e.lid for e in entries if "kv:y" in e.record.tag_dict())
    lid_audit = next(e.lid for e in entries if "kv:audit" in e.record.tag_dict())
    print(f"  at A: y's latest write is at LId {lid_y}, the audit record at "
          f"LId {lid_audit} — causal order preserved: {lid_y < lid_audit}")


if __name__ == "__main__":
    main()
