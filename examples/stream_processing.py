"""Multi-datacenter event processing on the shared log (§4.2).

A Photon-style continuous join: click events arrive at one datacenter,
query events at another; the shared log replicates both streams and a
joiner matches them exactly once — the paper's motivating analytics
workload (§1 cites Google Photon).

Run:  python examples/stream_processing.py
"""

from repro import (
    ChariotsDeployment,
    EventPublisher,
    LocalRuntime,
    StreamJoiner,
    StreamProcessor,
    StreamReader,
)


def main() -> None:
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(
        runtime, ["clicks-dc", "queries-dc"], batch_size=100
    )
    click_site = deployment.blocking_client("clicks-dc")
    query_site = deployment.blocking_client("queries-dc")

    # --- Publishers: an append is a publish ------------------------------ #
    clicks = EventPublisher(click_site)
    queries = EventPublisher(query_site)
    for qid in (1, 2, 3):
        queries.publish("queries", {"qid": qid, "text": f"query-{qid}"})
    for qid in (1, 3):  # query 2 never converts
        clicks.publish("clicks", {"qid": qid, "url": f"https://ad/{qid}"})
    deployment.settle(max_seconds=10)

    # --- Exactly-once consumption ----------------------------------------- #
    print("Exactly-once stream consumption at the clicks datacenter:")
    reader = StreamReader(click_site, "queries")
    batch = reader.poll()
    print(f"  first poll:  {[e.payload for e in batch]}")
    print(f"  second poll: {[e.payload for e in reader.poll()]}  (nothing twice)")
    print(f"  checkpoint cursor for crash-restart: {reader.checkpoint()}")
    print()

    # --- Photon-style join across datacenters ------------------------------ #
    print("Photon-style click/query join (both streams, one log):")
    joiner = StreamJoiner(
        click_site, "clicks", "queries", key_fn=lambda payload: payload["qid"]
    )
    for click, query in joiner.step():
        print(f"  joined qid={click.payload['qid']}: "
              f"{query.payload['text']!r} -> {click.payload['url']!r} "
              f"(click from {click.host}, query from {query.host})")
    print(f"  unmatched events still buffered: {joiner.buffered()}")
    print()

    # --- Handler-driven processing ---------------------------------------- #
    print("Handler-driven processing with StreamProcessor:")
    counts = {}

    def count(event) -> None:
        counts[event.stream] = counts.get(event.stream, 0) + 1

    processor = StreamProcessor(query_site)
    processor.subscribe("clicks", count)
    processor.subscribe("queries", count)
    handled = processor.step()
    print(f"  handled {handled} events: {counts}")
    print("  readers at different datacenters consume the same replicated log")
    print("  without a centralized dispatcher (§4.2).")


if __name__ == "__main__":
    main()
