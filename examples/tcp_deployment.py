"""FLStore over real sockets: the asyncio TCP deployment.

Boots maintainer, indexer, and controller servers on localhost, wires the
head-of-log gossip mesh between the maintainer servers, and drives the log
through the networked client — the same protocol cores as the in-process
runtimes, behind a length-prefixed JSON wire protocol.

Run:  python examples/tcp_deployment.py
"""

import asyncio

from repro.core import ReadRules
from repro.net.deploy import FLStoreNetDeployment


async def main() -> None:
    deployment = FLStoreNetDeployment(n_maintainers=3, n_indexers=1, batch_size=10)
    controller_address = await deployment.start()
    print(f"controller listening on {controller_address}")
    print(f"maintainers: {[m.address for m in deployment.maintainers]}")
    print(f"indexers:    {[ix.address for ix in deployment.indexers]}")
    print()

    client = await deployment.client("demo")
    try:
        # Appends round-robin across maintainer servers; each post-assigns
        # LIds from its own deterministic ranges.
        results = []
        for i in range(15):
            result = await client.append(
                f"sensor-reading-{i}", tags={"sensor": f"s{i % 3}"}
            )
            results.append(result)
        print(f"appended 15 records over TCP; LIds: {[r.lid for r in results]}")

        # Gossip between the servers advances the head of the log.
        await asyncio.sleep(0.05)
        head = await client.head()
        print(f"head of the log after gossip: {head}")

        entry = await client.read_lid(results[0].lid)
        print(f"read back LId {entry.lid}: {entry.record.body!r}")

        # The index pump moved tag postings to the indexer servers.
        await asyncio.sleep(0.05)
        tagged = await client.read(ReadRules(tag_key="sensor", tag_value="s1", limit=3))
        print(f"three most recent s1 readings: {[e.record.body for e in tagged]}")
    finally:
        await client.close()
        await deployment.stop()
        print("deployment stopped cleanly")


if __name__ == "__main__":
    asyncio.run(main())
