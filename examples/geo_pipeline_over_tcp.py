"""The entire Chariots deployment over real sockets.

Unlike ``examples/tcp_deployment.py`` (which serves FLStore components over
TCP), this runs the *whole geo-replicated pipeline* — batchers, filters, the
queue token, log maintainers, replication senders/receivers, head-of-log
gossip — with every single message serialised through the tagged-JSON codec
and routed across a localhost TCP connection, in real time.

Run:  python examples/geo_pipeline_over_tcp.py
"""

import asyncio

from repro.chariots import ChariotsDeployment
from repro.net.aio_runtime import AioRuntime


async def main() -> None:
    runtime = AioRuntime()
    deployment = ChariotsDeployment(runtime, ["tokyo", "dublin"], batch_size=50)
    await runtime.start()
    try:
        tokyo = deployment.client("tokyo")
        dublin = deployment.client("dublin")

        acks = []
        for i in range(5):
            tokyo.append(f"order-{i} placed", tags={"order": i}, on_done=acks.append)
        dublin.append("inventory sync", on_done=acks.append)

        ok = await runtime.settle(
            lambda: len(acks) == 6 and deployment.converged(), max_seconds=15
        )
        print(f"converged over TCP: {ok}")
        print(f"frames routed through the socket: {runtime.messages_routed} "
              f"({runtime.bytes_routed} bytes)")
        print()
        for dc in ("tokyo", "dublin"):
            pipe = deployment[dc]
            print(f"{dc}: {pipe.total_records()} records, "
                  f"head of log {pipe.head_of_log()}, frontier {pipe.frontier()}")
        print()
        print("dublin's log (every record travelled through batcher → filter")
        print("→ queue token → store, then sender → receiver, all over TCP):")
        for entry in deployment["dublin"].all_entries():
            print(f"  [{entry.lid}] {entry.rid} {entry.record.body!r}")
    finally:
        await runtime.stop()


if __name__ == "__main__":
    asyncio.run(main())
