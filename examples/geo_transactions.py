"""Strongly consistent geo-transactions over the causal log (§4.3).

Message Futures and Helios commit transactions by appending records to the
causally ordered replicated log and detecting conflicts deterministically —
no Paxos, no two-phase commit.  This example runs a write-write conflict
between two datacenters and shows exactly one transaction surviving, with
both sides reaching the same decision independently.

Run:  python examples/geo_transactions.py
"""

from repro import (
    ChariotsDeployment,
    HeliosManager,
    LocalRuntime,
    MessageFuturesManager,
    TransactionAborted,
)


def pump(deployment, managers, rounds=25) -> None:
    for _ in range(rounds):
        deployment.settle(max_seconds=2)
        for manager in managers:
            manager.pump()


def message_futures_demo() -> None:
    print("=== Message Futures: conflict between two datacenters ===")
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=100)
    ma = MessageFuturesManager("A", deployment.blocking_client("A"), ["A", "B"])
    mb = MessageFuturesManager("B", deployment.blocking_client("B"), ["A", "B"])

    # Two concurrent transactions write the same key at different DCs.
    ta = ma.begin()
    ta.write("inventory:widget", 99)
    tb = mb.begin()
    tb.write("inventory:widget", 42)
    pa, pb = ta.commit(), tb.commit()
    print(f"submitted {pa.txn_id} at A and {pb.txn_id} at B (both write the same key)")

    pump(deployment, [ma, mb])

    for pending, side in ((pa, "A"), (pb, "B")):
        try:
            pending.result()
            print(f"  {pending.txn_id} ({side}): COMMITTED")
        except TransactionAborted:
            print(f"  {pending.txn_id} ({side}): ABORTED (lost the conflict)")

    print(f"  converged state at A: {ma.committed_state()}")
    print(f"  converged state at B: {mb.committed_state()}")
    print(f"  decisions agree everywhere: "
          f"{ma.decision(pa.txn_id) == mb.decision(pa.txn_id)}")
    print()

    # A causally-later transaction sees the winner and commits cleanly.
    follow_up = mb.begin()
    current = follow_up.read("inventory:widget")
    follow_up.write("inventory:widget", (current or 0) - 1)
    pf = follow_up.commit()
    pump(deployment, [ma, mb])
    print(f"  follow-up read {current}, wrote {current - 1}: "
          f"{'COMMITTED' if pf.committed else 'ABORTED'}")
    print()


def helios_demo() -> None:
    print("=== Helios: conflict zones instead of full exchanges ===")
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=100)
    ha = HeliosManager(
        "A", deployment.blocking_client("A"), ["A", "B"],
        default_delay=0.001, clock=lambda: runtime.now,
    )
    hb = HeliosManager(
        "B", deployment.blocking_client("B"), ["A", "B"],
        default_delay=0.001, clock=lambda: runtime.now,
    )

    txn = ha.begin()
    txn.write("balance", 500)
    pending = txn.commit()
    pump(deployment, [ha, hb])
    print(f"  {pending.txn_id}: {'COMMITTED' if pending.committed else 'ABORTED'}")
    print(f"  decision replicated to B: {hb.decision(pending.txn_id)}")
    print(f"  B's committed state: {hb.committed_state()}")
    print("  Helios commits once each peer's log has arrived past the")
    print("  transaction's conflict zone — the latency lower bound (§4.3).")


if __name__ == "__main__":
    message_futures_demo()
    helios_demo()
