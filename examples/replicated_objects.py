"""Tango-style replicated data structures over the shared log.

The paper's thesis (§1): a simple append/read log interface is enough to
build complex distributed systems.  This example replicates a counter, a
dictionary, and a work queue across two datacenters with zero
coordination — every mutation is a log record, every replica is a replay.

Run:  python examples/replicated_objects.py
"""

from repro import ChariotsDeployment, LocalRuntime
from repro.apps import ReplicatedCounter, ReplicatedDict, ReplicatedQueue


def main() -> None:
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["east", "west"], batch_size=50)
    east = deployment.blocking_client("east")
    west = deployment.blocking_client("west")

    # --- A convergent counter ------------------------------------------- #
    print("=== Replicated counter ===")
    hits_east = ReplicatedCounter(east, name="page-hits")
    hits_west = ReplicatedCounter(west, name="page-hits")
    hits_east.increment(120)
    hits_west.increment(80)
    deployment.settle(max_seconds=10)
    hits_east.sync()
    hits_west.sync()
    print(f"east sees {hits_east.value}, west sees {hits_west.value} "
          f"(increments from both datacenters merged)")
    print()

    # --- A convergent dictionary ------------------------------------------ #
    print("=== Replicated dictionary with deterministic conflict resolution ===")
    config_east = ReplicatedDict(east, name="config")
    config_west = ReplicatedDict(west, name="config")
    config_east.set("timeout", 30)       # concurrent writes to the same key
    config_west.set("timeout", 60)
    deployment.settle(max_seconds=10)
    config_east.sync()
    config_west.sync()
    print(f"east reads timeout={config_east.get('timeout')}, "
          f"west reads timeout={config_west.get('timeout')}")
    print("identical everywhere: the winner is a deterministic function of")
    print("the records, not of their arrival order")
    print()

    # --- A lock-free work queue ------------------------------------------- #
    print("=== Replicated work queue: the log arbitrates claims ===")
    producer = ReplicatedQueue(east, name="jobs", claimant="producer")
    producer.enqueue("encode-video-7", {"codec": "av1"})
    deployment.settle(max_seconds=10)

    worker_east = ReplicatedQueue(east, name="jobs", claimant="worker-east")
    worker_west = ReplicatedQueue(west, name="jobs", claimant="worker-west")
    worker_east.sync()
    worker_west.sync()
    # Both workers race for the same job — no locks anywhere.
    worker_east.claim_next()
    worker_west.claim_next()
    deployment.settle(max_seconds=10)
    worker_east.sync()
    worker_west.sync()
    owner_seen_east = worker_east.owner_of("encode-video-7")
    owner_seen_west = worker_west.owner_of("encode-video-7")
    print(f"east believes the job belongs to: {owner_seen_east}")
    print(f"west believes the job belongs to: {owner_seen_west}")
    print(f"agreement without coordination: {owner_seen_east == owner_seen_west}")


if __name__ == "__main__":
    main()
