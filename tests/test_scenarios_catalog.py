"""The catalog itself: completeness, the deterministic regression subset,
the baseline compare step, and the CLI."""

import json
from pathlib import Path

import pytest

from repro.scenarios import (
    CATALOG,
    compare_documents,
    get,
    run_scenario,
    select,
    tags_in_use,
)
from repro.scenarios.__main__ import main as cli_main
from repro.core.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

#: Catalog entries cheap enough for tier-1 (seconds-scale); the rest of the
#: deterministic subset runs under ``-m slow`` (make chaos / scenarios CI).
_QUICK = {
    "fig7-single-maintainer",
    "table2-basic-pipeline",
    "fig9-stage-timeseries",
    "overload-backpressure",
    "geo-replication-lag",
    "geo-partition-soak",
    "flstore-chaos-soak",
    "crash-during-partition",
    "rolling-maintainer-restart",
    "functional-convergence-local",
    "pipeline-baseline",
    "micro-hotpaths",
}


# --------------------------------------------------------------------- #
# Catalog completeness
# --------------------------------------------------------------------- #


def test_catalog_names_are_unique():
    names = [spec.name for spec in CATALOG]
    assert len(names) == len(set(names))


def test_every_figure_and_table_bench_script_has_a_catalog_entry():
    """Each bench_fig*/bench_table*/bench_ablation* script is subsumed by an
    entry whose ``source`` field names it — deleting the entry breaks this
    test."""
    scripts = (
        sorted(p.name for p in BENCH_DIR.glob("bench_fig*.py"))
        + sorted(p.name for p in BENCH_DIR.glob("bench_table*.py"))
        + sorted(p.name for p in BENCH_DIR.glob("bench_ablation*.py"))
    )
    assert scripts, "bench scripts vanished?"
    covered = {Path(spec.source).name for spec in CATALOG if spec.source}
    missing = [script for script in scripts if script not in covered]
    assert not missing, f"bench scripts without a catalog entry: {missing}"


def test_sources_point_at_real_files():
    for spec in CATALOG:
        if spec.source:
            assert (REPO_ROOT / spec.source).is_file(), spec.source


def test_paper_figure_tag_covers_fig7_to_table5():
    tagged = {spec.name for spec in select(tags=["paper-figure"])}
    assert {
        "fig7-single-maintainer",
        "fig8-scaling-private-131k",
        "fig8-scaling-public-125k",
        "fig8-scaling-public-250k",
        "fig9-stage-timeseries",
        "table2-basic-pipeline",
        "table3-two-clients",
        "table4-two-batchers",
        "table5-two-per-stage",
    } <= tagged


def test_every_entry_is_tagged_and_checked():
    for spec in CATALOG:
        assert spec.tags, spec.name
        assert spec.invariants or spec.baselines, spec.name


def test_required_tags_present():
    assert {"paper-figure", "soak", "overload", "geo", "chaos"} <= set(tags_in_use())


def test_deterministic_selection_excludes_aio():
    names = {spec.name for spec in select(deterministic=True)}
    assert "functional-convergence-aio" not in names
    assert "pipeline-multiproc" not in names
    assert "functional-convergence-local" in names


def test_runtime_selection():
    multiproc = {spec.name for spec in select(runtime="multiproc")}
    assert multiproc == {"pipeline-multiproc", "multiproc-crash-recovery"}
    assert all(spec.runtime == "sim" for spec in select(runtime="sim"))


def test_get_unknown_scenario_raises():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        get("no-such-entry")


# --------------------------------------------------------------------- #
# The deterministic regression subset, as pytest
# --------------------------------------------------------------------- #

_DETERMINISTIC = select(deterministic=True)


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(
            spec.name,
            marks=() if spec.name in _QUICK else pytest.mark.slow,
        )
        for spec in _DETERMINISTIC
    ],
)
def test_catalog_entry_passes_its_invariants(name):
    result = run_scenario(get(name), run_root=None, raise_on_failure=False)
    assert result.error is None, result.error
    assert result.invariant_failures == []


# --------------------------------------------------------------------- #
# The compare step
# --------------------------------------------------------------------- #


def _baseline_run():
    spec = get("pipeline-baseline")
    result = run_scenario(spec, run_root=None)
    return spec, result


def test_compare_within_band_passes():
    spec, result = _baseline_run()
    comparison = compare_documents(spec, result.aggregates, result.perf, REPO_ROOT)
    assert comparison.passed, comparison.render()
    assert "PASS (3/3 checks ok)" in comparison.render()


def test_compare_doctored_aggregate_fails_with_readable_diff():
    spec, result = _baseline_run()
    doctored = json.loads(json.dumps(result.aggregates))
    doctored["points"][0]["records_stored"] += 5_000
    comparison = compare_documents(spec, doctored, result.perf, REPO_ROOT)
    assert not comparison.passed
    (failure,) = comparison.failures
    assert failure.check.metric == "points.0.records_stored"
    rendered = comparison.render()
    assert "FAIL" in rendered
    assert "points.0.records_stored" in rendered
    assert "rel<=0.0" in rendered  # the violated band is named
    assert str(doctored["points"][0]["records_stored"]) in rendered


def test_compare_out_of_ratio_band_fails():
    spec, result = _baseline_run()
    doctored = json.loads(json.dumps(result.perf))
    doctored["base"]["records_per_host_sec"] = 1  # 5 orders of magnitude off
    comparison = compare_documents(spec, result.aggregates, doctored, REPO_ROOT)
    assert not comparison.passed
    assert any("ratio=" in f.detail for f in comparison.failures)


def test_compare_missing_baseline_file_is_a_failure(tmp_path):
    spec, result = _baseline_run()
    comparison = compare_documents(spec, result.aggregates, result.perf, tmp_path)
    assert not comparison.passed
    assert all("missing" in f.detail for f in comparison.failures)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def test_cli_list_and_show(capsys):
    assert cli_main(["list", "--tag", "paper-figure"]) == 0
    out = capsys.readouterr().out
    assert "fig7-single-maintainer" in out
    assert cli_main(["show", "geo-partition-soak"]) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["name"] == "geo-partition-soak"


def test_cli_run_persists_and_compares(tmp_path, capsys):
    code = cli_main([
        "run", "pipeline-baseline",
        "--run-root", str(tmp_path),
        "--compare", "--baseline-root", str(REPO_ROOT),
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert (tmp_path / "pipeline-baseline" / "run-0001" / "aggregates.json").is_file()
    assert "PASS" in out
    # And the standalone compare subcommand against the persisted run.
    assert cli_main([
        "compare", "pipeline-baseline",
        "--run-root", str(tmp_path),
        "--baseline-root", str(REPO_ROOT),
    ]) == 0


def test_cli_compare_without_runs_errors(tmp_path, capsys):
    assert cli_main([
        "compare", "pipeline-baseline", "--run-root", str(tmp_path),
    ]) == 1
    assert "no persisted runs" in capsys.readouterr().out


def test_cli_rejects_unknown_scenario_name():
    with pytest.raises(SystemExit):
        cli_main(["run", "no-such-entry", "--no-persist"])
