"""Tests for the project linter (``repro.analysis``).

Each rule gets fixture snippets in a synthetic tree: a positive case (the
rule fires), a negative case (clean code stays clean), a noqa-suppressed
case, and a baselined case.  A final test asserts the committed baseline
matches a fresh run over ``src`` — the static gates in CI depend on that
file being honest.
"""

from __future__ import annotations

import ast
import json
import time
import tomllib
from pathlib import Path

from repro.analysis import (
    Finding,
    apply_baseline,
    build_model,
    dump_baseline,
    load_baseline,
    run_rules,
    rules_by_code,
    scan,
)
from repro.analysis.cli import main as analysis_main
from repro.analysis.dataflow import (
    EXPAND_DEPTH,
    WRITE,
    class_methods,
    expand_events,
    method_events,
    reachable_within,
    self_call_graph,
)
from repro.analysis.rules.typed_api import TYPED_PACKAGES

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(tmp_path, files, select=None):
    """Write ``files`` under a fixture root, scan it, and run the rules."""
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return run_rules(scan([root]), select=select)


def codes(findings):
    return [f.code for f in findings]


# --------------------------------------------------------------------- #
# CHR001 / CHR002 — protocol exhaustiveness
# --------------------------------------------------------------------- #

_PROTO_MESSAGES = """\
from dataclasses import dataclass

@dataclass(slots=True)
class Ping:
    seq: int

@dataclass(slots=True)
class Pong:
    seq: int

@dataclass(slots=True)
class Inner:
    value: int

@dataclass(slots=True)
class Carrier:
    inner: Inner

@dataclass(slots=True)
class Base:
    pass
"""

_PROTO_CODEC = """\
from typing import Tuple, Type
from .messages import Carrier, Inner, Ping, Pong

_MESSAGE_TYPES: Tuple[Type, ...] = (
    Ping,
    Pong,
    Inner,
    Carrier,
)
"""

_PROTO_HANDLER = """\
from .messages import Carrier, Ping, Pong

class Actor:
    def on_message(self, sender, message):
        if isinstance(message, Ping):
            pass
        elif isinstance(message, (Pong, Carrier)):
            pass
"""


class TestProtocolRules:
    def test_clean_protocol_has_no_findings(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": _PROTO_MESSAGES,
                "proto/codec.py": _PROTO_CODEC,
                "proto/actor.py": _PROTO_HANDLER,
            },
            select=["CHR001", "CHR002"],
        )
        assert findings == []

    def test_unregistered_message_dataclass_fires_chr001(self, tmp_path):
        extra = _PROTO_MESSAGES + (
            "\n@dataclass(slots=True)\nclass Orphan:\n    seq: int\n"
        )
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": extra,
                "proto/codec.py": _PROTO_CODEC,
                "proto/actor.py": _PROTO_HANDLER,
            },
            select=["CHR001"],
        )
        assert codes(findings) == ["CHR001"]
        assert "Orphan" in findings[0].message

    def test_zero_field_base_class_is_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": _PROTO_MESSAGES,
                "proto/codec.py": _PROTO_CODEC,
                "proto/actor.py": _PROTO_HANDLER,
            },
            select=["CHR001"],
        )
        assert findings == []  # Base has no fields and is not registered

    def test_no_registry_in_scan_means_no_cross_check(self, tmp_path):
        findings = lint(
            tmp_path,
            {"proto/messages.py": _PROTO_MESSAGES},
            select=["CHR001", "CHR002"],
        )
        assert findings == []

    def test_stale_registration_fires_chr002(self, tmp_path):
        codec = _PROTO_CODEC.replace(
            "    Carrier,\n", "    Carrier,\n    Ghost,\n"
        )
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": _PROTO_MESSAGES,
                "proto/codec.py": codec,
                "proto/actor.py": _PROTO_HANDLER,
            },
            select=["CHR002"],
        )
        assert codes(findings) == ["CHR002"]
        assert "stale" in findings[0].message

    def test_registered_but_unroutable_message_fires_chr002(self, tmp_path):
        messages = _PROTO_MESSAGES + (
            "\n@dataclass(slots=True)\nclass Dangling:\n    seq: int\n"
        )
        codec = _PROTO_CODEC.replace(
            "    Carrier,\n", "    Carrier,\n    Dangling,\n"
        )
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": messages,
                "proto/codec.py": codec,
                "proto/actor.py": _PROTO_HANDLER,
            },
            select=["CHR002"],
        )
        assert codes(findings) == ["CHR002"]
        assert "Dangling" in findings[0].message

    def test_embedded_value_type_is_routable(self, tmp_path):
        # Inner is never isinstance-dispatched but is a field of Carrier.
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": _PROTO_MESSAGES,
                "proto/codec.py": _PROTO_CODEC,
                "proto/actor.py": _PROTO_HANDLER,
            },
            select=["CHR002"],
        )
        assert findings == []


# --------------------------------------------------------------------- #
# CHR003 — wall clock
# --------------------------------------------------------------------- #


class TestWallClockRule:
    def test_time_time_in_sim_scope_fires(self, tmp_path):
        findings = lint(
            tmp_path,
            {"sim/clock.py": "import time\n\ndef now():\n    return time.time()\n"},
            select=["CHR003"],
        )
        assert codes(findings) == ["CHR003"]
        assert "time.time" in findings[0].message

    def test_aliased_import_is_resolved(self, tmp_path):
        source = "from time import perf_counter as pc\n\ndef now():\n    return pc()\n"
        findings = lint(tmp_path, {"chariots/x.py": source}, select=["CHR003"])
        assert codes(findings) == ["CHR003"]

    def test_wall_clock_outside_sim_scope_is_fine(self, tmp_path):
        findings = lint(
            tmp_path,
            {"bench/timer.py": "import time\n\ndef now():\n    return time.time()\n"},
            select=["CHR003"],
        )
        assert findings == []

    def test_noqa_suppresses_the_line(self, tmp_path):
        source = (
            "import time\n\n"
            "def now():\n"
            "    return time.time()  # chariots: noqa=CHR003\n"
        )
        findings = lint(tmp_path, {"sim/clock.py": source}, select=["CHR003"])
        assert findings == []

    def test_bare_noqa_suppresses_all_codes(self, tmp_path):
        source = (
            "import time, random\n\n"
            "def jitter():\n"
            "    return time.time() + random.random()  # chariots: noqa\n"
        )
        findings = lint(
            tmp_path, {"sim/clock.py": source}, select=["CHR003", "CHR004"]
        )
        assert findings == []

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        source = (
            "import time\n\n"
            "def now():\n"
            "    return time.time()  # chariots: noqa=CHR004\n"
        )
        findings = lint(tmp_path, {"sim/clock.py": source}, select=["CHR003"])
        assert codes(findings) == ["CHR003"]


# --------------------------------------------------------------------- #
# CHR004 — unseeded randomness
# --------------------------------------------------------------------- #


class TestUnseededRandomRule:
    def test_global_random_fires(self, tmp_path):
        source = "import random\n\ndef roll():\n    return random.random()\n"
        findings = lint(tmp_path, {"chaos/dice.py": source}, select=["CHR004"])
        assert codes(findings) == ["CHR004"]

    def test_unseeded_random_instance_fires(self, tmp_path):
        source = "import random\n\nrng = random.Random()\n"
        findings = lint(tmp_path, {"chaos/dice.py": source}, select=["CHR004"])
        assert codes(findings) == ["CHR004"]
        assert "without a seed" in findings[0].message

    def test_seeded_random_instance_is_fine(self, tmp_path):
        source = "import random\n\nrng = random.Random(42)\n"
        findings = lint(tmp_path, {"chaos/dice.py": source}, select=["CHR004"])
        assert findings == []

    def test_os_urandom_fires(self, tmp_path):
        source = "import os\n\ndef token():\n    return os.urandom(8)\n"
        findings = lint(tmp_path, {"flstore/token.py": source}, select=["CHR004"])
        assert codes(findings) == ["CHR004"]


# --------------------------------------------------------------------- #
# CHR005 — iteration order
# --------------------------------------------------------------------- #


class TestIterationOrderRule:
    def test_iterating_a_set_call_fires(self, tmp_path):
        source = "def f(items):\n    for x in set(items):\n        print(x)\n"
        findings = lint(tmp_path, {"sim/iter.py": source}, select=["CHR005"])
        assert codes(findings) == ["CHR005"]

    def test_sorted_set_is_fine(self, tmp_path):
        source = "def f(items):\n    for x in sorted(set(items)):\n        print(x)\n"
        findings = lint(tmp_path, {"sim/iter.py": source}, select=["CHR005"])
        assert findings == []

    def test_unsorted_listdir_fires(self, tmp_path):
        source = "import os\n\ndef f(d):\n    for x in os.listdir(d):\n        print(x)\n"
        findings = lint(tmp_path, {"flstore/scan.py": source}, select=["CHR005"])
        assert codes(findings) == ["CHR005"]

    def test_sorted_listdir_is_fine(self, tmp_path):
        source = (
            "import os\n\ndef f(d):\n    for x in sorted(os.listdir(d)):\n"
            "        print(x)\n"
        )
        findings = lint(tmp_path, {"flstore/scan.py": source}, select=["CHR005"])
        assert findings == []

    def test_set_comprehension_generator_fires(self, tmp_path):
        source = "def f(items):\n    return [x for x in {i for i in items}]\n"
        findings = lint(tmp_path, {"core/comp.py": source}, select=["CHR005"])
        assert codes(findings) == ["CHR005"]


# --------------------------------------------------------------------- #
# CHR006 — blocking calls in async defs
# --------------------------------------------------------------------- #


class TestBlockingAsyncRule:
    def test_time_sleep_in_async_net_handler_fires(self, tmp_path):
        source = (
            "import time\n\nasync def handle():\n    time.sleep(1)\n"
        )
        findings = lint(tmp_path, {"net/srv.py": source}, select=["CHR006"])
        assert codes(findings) == ["CHR006"]
        assert "asyncio.sleep" in findings[0].message

    def test_asyncio_sleep_is_fine(self, tmp_path):
        source = "import asyncio\n\nasync def handle():\n    await asyncio.sleep(1)\n"
        findings = lint(tmp_path, {"net/srv.py": source}, select=["CHR006"])
        assert findings == []

    def test_sync_def_in_net_is_not_checked(self, tmp_path):
        source = "import time\n\ndef warmup():\n    time.sleep(1)\n"
        findings = lint(tmp_path, {"net/srv.py": source}, select=["CHR006"])
        assert findings == []

    def test_async_blocking_outside_net_is_out_of_scope(self, tmp_path):
        source = "import time\n\nasync def handle():\n    time.sleep(1)\n"
        findings = lint(tmp_path, {"apps/app.py": source}, select=["CHR006"])
        assert findings == []

    def test_open_inside_async_fires_once(self, tmp_path):
        source = (
            "async def handle(path):\n"
            "    async def inner():\n"
            "        return open(path).read()\n"
            "    return await inner()\n"
        )
        findings = lint(tmp_path, {"net/srv.py": source}, select=["CHR006"])
        assert codes(findings) == ["CHR006"]  # deduped across nesting


# --------------------------------------------------------------------- #
# CHR007 — slots on hot-path dataclasses
# --------------------------------------------------------------------- #


class TestSlotsRule:
    def test_bare_dataclass_in_messages_module_fires(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass Envelope:\n    seq: int\n"
        )
        findings = lint(tmp_path, {"proto/messages.py": source}, select=["CHR007"])
        assert codes(findings) == ["CHR007"]

    def test_slots_true_is_fine(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n\n"
            "@dataclass(slots=True)\nclass Envelope:\n    seq: int\n"
        )
        findings = lint(tmp_path, {"proto/messages.py": source}, select=["CHR007"])
        assert findings == []

    def test_explicit_slots_assignment_is_fine(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass Base:\n    __slots__ = ()\n"
        )
        findings = lint(tmp_path, {"proto/messages.py": source}, select=["CHR007"])
        assert findings == []

    def test_non_messages_module_is_out_of_scope(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass Config:\n    value: int\n"
        )
        findings = lint(tmp_path, {"proto/config.py": source}, select=["CHR007"])
        assert findings == []


# --------------------------------------------------------------------- #
# CHR008 — typed public API
# --------------------------------------------------------------------- #


class TestTypedApiRule:
    def test_missing_return_annotation_fires(self, tmp_path):
        source = "def head(log):\n    return log[-1]\n"
        findings = lint(tmp_path, {"core/log.py": source}, select=["CHR008"])
        assert len(findings) == 2  # return + parameter
        assert all(f.code == "CHR008" for f in findings)

    def test_fully_annotated_def_is_fine(self, tmp_path):
        source = "def head(log: list) -> int:\n    return log[-1]\n"
        findings = lint(tmp_path, {"core/log.py": source}, select=["CHR008"])
        assert findings == []

    def test_private_defs_and_out_of_package_modules_are_exempt(self, tmp_path):
        # Every repro.* package is typed now; the remaining exemptions are
        # private defs and modules outside any typed package (scratch
        # scripts at the scan root).
        source = "def _internal(x):\n    return x\n"
        findings = lint(
            tmp_path,
            {"core/log.py": source, "scratch.py": "def f(x):\n    return x\n"},
            select=["CHR008"],
        )
        assert findings == []

    def test_every_package_is_typed(self, tmp_path):
        # sim/ was the last lenient package; its promotion must hold.
        findings = lint(
            tmp_path,
            {"sim/free.py": "def f(x):\n    return x\n"},
            select=["CHR008"],
        )
        assert len(findings) == 2  # missing return + unannotated param

    def test_self_is_not_required_to_be_annotated(self, tmp_path):
        source = (
            "class Log:\n"
            "    def head(self) -> int:\n"
            "        return 0\n"
        )
        findings = lint(tmp_path, {"flstore/log.py": source}, select=["CHR008"])
        assert findings == []


# --------------------------------------------------------------------- #
# Baseline mechanics
# --------------------------------------------------------------------- #


class TestBaseline:
    def _finding(self, message="wall-clock call time.time()"):
        return Finding("CHR003", "sim/clock.py", 4, 11, message)

    def test_round_trip(self, tmp_path):
        findings = [self._finding(), self._finding()]
        path = tmp_path / "baseline.json"
        path.write_text(dump_baseline(findings))
        assert load_baseline(path) == {findings[0].fingerprint(): 2}

    def test_apply_baseline_respects_multiplicity(self):
        findings = [self._finding(), self._finding(), self._finding()]
        baseline = {self._finding().fingerprint(): 2}
        fresh, suppressed = apply_baseline(findings, baseline)
        assert suppressed == 2
        assert len(fresh) == 1

    def test_baseline_is_line_number_independent(self):
        moved = Finding("CHR003", "sim/clock.py", 99, 0, self._finding().message)
        fresh, suppressed = apply_baseline(
            [moved], {self._finding().fingerprint(): 1}
        )
        assert fresh == [] and suppressed == 1

    def test_missing_baseline_file_loads_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_baselined_fixture_run_exits_clean(self, tmp_path, capsys):
        root = tmp_path / "proj" / "sim"
        root.mkdir(parents=True)
        (root / "clock.py").write_text(
            "import time\n\ndef now() -> float:\n    return time.time()\n"
        )
        baseline_path = tmp_path / "baseline.json"
        # First run writes the baseline; second run is clean against it.
        assert (
            analysis_main(
                [
                    str(tmp_path / "proj"),
                    "--baseline",
                    str(baseline_path),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert (
            analysis_main(
                [str(tmp_path / "proj"), "--baseline", str(baseline_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 baselined" in out


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = tmp_path / "proj"
        root.mkdir()
        (root / "ok.py").write_text("X = 1\n")
        assert analysis_main([str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_and_render_locations(self, tmp_path, capsys):
        root = tmp_path / "proj" / "sim"
        root.mkdir(parents=True)
        (root / "clock.py").write_text(
            "import time\n\ndef now() -> float:\n    return time.time()\n"
        )
        assert analysis_main([str(tmp_path / "proj")]) == 1
        out = capsys.readouterr().out
        assert "sim/clock.py:4" in out and "CHR003" in out

    def test_json_format(self, tmp_path, capsys):
        root = tmp_path / "proj" / "sim"
        root.mkdir(parents=True)
        (root / "clock.py").write_text(
            "import time\n\ndef now() -> float:\n    return time.time()\n"
        )
        assert analysis_main([str(tmp_path / "proj"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "CHR003"

    def test_select_unknown_code_is_usage_error(self, tmp_path, capsys):
        root = tmp_path / "proj"
        root.mkdir()
        (root / "ok.py").write_text("X = 1\n")
        assert analysis_main([str(root), "--select", "CHR999"]) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert analysis_main([str(tmp_path / "missing")]) == 2

    def test_list_rules_names_every_code(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in rules_by_code():
            assert code in out


# --------------------------------------------------------------------- #
# The committed tree and baseline
# --------------------------------------------------------------------- #


class TestCommittedTree:
    def test_src_is_clean_under_every_rule(self):
        findings = run_rules(scan([REPO_ROOT / "src"]))
        assert findings == [], [f.render() for f in findings]

    def test_committed_baseline_matches_fresh_run(self):
        committed = (REPO_ROOT / "analysis-baseline.json").read_text()
        fresh = dump_baseline(run_rules(scan([REPO_ROOT / "src"])))
        assert committed == fresh

    def test_protocol_and_determinism_rules_need_no_baseline(self):
        """The acceptance bar: CHR001/CHR002 (protocol) and CHR003-CHR005
        (determinism) pass with an empty baseline on the real tree."""
        findings = run_rules(
            scan([REPO_ROOT / "src"]),
            select=["CHR001", "CHR002", "CHR003", "CHR004", "CHR005"],
        )
        assert findings == []

    def test_concurrency_and_flow_rules_need_no_baseline(self):
        """PR 4's acceptance bar: the interprocedural rules (CHR009-CHR013)
        pass with an empty baseline on the real tree."""
        findings = run_rules(
            scan([REPO_ROOT / "src"]),
            select=["CHR009", "CHR010", "CHR011", "CHR012", "CHR013"],
        )
        assert findings == [], [f.render() for f in findings]

    def test_reply_and_supervision_rules_need_no_baseline(self):
        """This PR's acceptance bar: CHR014 (sockets), CHR015 (reply shapes)
        and CHR016 (supervisor protocol) pass with an empty baseline.
        CHR017 only audits on full runs and is covered by
        test_src_is_clean_under_every_rule."""
        findings = run_rules(
            scan([REPO_ROOT / "src"]),
            select=["CHR014", "CHR015", "CHR016"],
        )
        assert findings == [], [f.render() for f in findings]

    def test_committed_baseline_is_empty(self):
        """Everything found gets fixed, not baselined: the committed
        baseline must stay empty (CI enforces the same invariant)."""
        payload = json.loads((REPO_ROOT / "analysis-baseline.json").read_text())
        assert payload["findings"] == {}


# --------------------------------------------------------------------- #
# CHR009 — unbounded stage buffers
# --------------------------------------------------------------------- #

_STAGE_UNBOUNDED = """\
class Stage:
    def __init__(self):
        self._pending = []

    def on_message(self, sender, message):
        self._enqueue(message)

    def _enqueue(self, message):
        self._pending.append(message)
"""


class TestBufferRule:
    def test_unbounded_append_on_hot_path_fires(self, tmp_path):
        findings = lint(
            tmp_path, {"chariots/stage.py": _STAGE_UNBOUNDED}, select=["CHR009"]
        )
        assert codes(findings) == ["CHR009"]
        assert "_pending" in findings[0].message
        assert "_enqueue" in findings[0].message  # reached through the helper

    def test_len_guard_anywhere_in_class_suppresses(self, tmp_path):
        guarded = _STAGE_UNBOUNDED.replace(
            "        self._pending.append(message)",
            "        if len(self._pending) >= 10:\n"
            "            return\n"
            "        self._pending.append(message)",
        )
        findings = lint(
            tmp_path, {"chariots/stage.py": guarded}, select=["CHR009"]
        )
        assert findings == []

    def test_bounded_by_directive_on_init_suppresses(self, tmp_path):
        declared = _STAGE_UNBOUNDED.replace(
            "self._pending = []",
            "self._pending = []  # chariots: bounded-by=token-circulation",
        )
        findings = lint(
            tmp_path, {"chariots/stage.py": declared}, select=["CHR009"]
        )
        assert findings == []

    def test_deque_maxlen_is_bounded_by_construction(self, tmp_path):
        source = _STAGE_UNBOUNDED.replace(
            "self._pending = []", "self._pending = deque(maxlen=64)"
        )
        findings = lint(
            tmp_path,
            {"chariots/stage.py": "from collections import deque\n\n" + source},
            select=["CHR009"],
        )
        assert findings == []

    def test_append_outside_on_message_reach_is_clean(self, tmp_path):
        source = _STAGE_UNBOUNDED.replace(
            "    def on_message(self, sender, message):\n"
            "        self._enqueue(message)\n",
            "    def on_message(self, sender, message):\n"
            "        pass\n",
        )
        findings = lint(
            tmp_path, {"chariots/stage.py": source}, select=["CHR009"]
        )
        assert findings == []

    def test_non_stage_packages_are_out_of_scope(self, tmp_path):
        findings = lint(
            tmp_path, {"apps/stage.py": _STAGE_UNBOUNDED}, select=["CHR009"]
        )
        assert findings == []


# --------------------------------------------------------------------- #
# CHR010 — await-point atomicity
# --------------------------------------------------------------------- #

_RACY_CONN = """\
class Conn:
    def __init__(self, opener):
        self._opener = opener
        self._sock = None

    async def connect(self):
        if self._sock is None:
            self._sock = await self._opener()
"""


class TestAtomicityRule:
    def test_seeded_read_await_write_race_fires(self, tmp_path):
        findings = lint(tmp_path, {"net/conn.py": _RACY_CONN}, select=["CHR010"])
        assert codes(findings) == ["CHR010"]
        assert "_sock" in findings[0].message
        assert "connect" in findings[0].message

    def test_write_after_await_through_helper_fires(self, tmp_path):
        source = _RACY_CONN + (
            "\n"
            "    async def restart(self):\n"
            "        if self._sock is None:\n"
            "            return\n"
            "        await self.flush()\n"
            "        self._teardown()\n"
            "\n"
            "    def _teardown(self):\n"
            "        self._sock = None\n"
        )
        findings = lint(tmp_path, {"net/conn.py": source}, select=["CHR010"])
        assert any("restart" in f.message for f in findings)

    def test_capture_and_null_before_await_is_clean(self, tmp_path):
        source = (
            "class Conn:\n"
            "    def __init__(self):\n"
            "        self._sock = None\n"
            "\n"
            "    async def close(self):\n"
            "        sock, self._sock = self._sock, None\n"
            "        if sock is not None:\n"
            "            await sock.close()\n"
        )
        findings = lint(tmp_path, {"net/conn.py": source}, select=["CHR010"])
        assert findings == []

    def test_lock_region_is_exempt(self, tmp_path):
        source = (
            "class Conn:\n"
            "    def __init__(self, opener):\n"
            "        self._lock = make_lock()\n"
            "        self._opener = opener\n"
            "        self._sock = None\n"
            "\n"
            "    async def connect(self):\n"
            "        async with self._lock:\n"
            "            if self._sock is None:\n"
            "                self._sock = await self._opener()\n"
        )
        findings = lint(tmp_path, {"net/conn.py": source}, select=["CHR010"])
        assert findings == []

    def test_locked_suffix_documents_caller_holds_lock(self, tmp_path):
        source = _RACY_CONN.replace("async def connect(", "async def connect_locked(")
        findings = lint(tmp_path, {"net/conn.py": source}, select=["CHR010"])
        assert findings == []

    def test_outside_net_is_out_of_scope(self, tmp_path):
        findings = lint(
            tmp_path, {"chariots/conn.py": _RACY_CONN}, select=["CHR010"]
        )
        assert findings == []


# --------------------------------------------------------------------- #
# CHR011 — dict-request dispatch exhaustiveness
# --------------------------------------------------------------------- #

_NET_SERVER = """\
PING_TYPE = "ping"

class Server:
    async def handle(self, request):
        kind = request["type"]
        if kind == PING_TYPE:
            return {"ok": True}
        if kind == "status":
            return {"up": True}
        return None
"""

_NET_CLIENT = """\
class Client:
    async def ping(self, conn):
        return await conn.request({"type": "ping"})

    async def status(self, conn):
        message = {"type": "status"}
        return await conn.request(message)
"""


class TestDispatchRule:
    def test_balanced_request_surface_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"net/server.py": _NET_SERVER, "net/client.py": _NET_CLIENT},
            select=["CHR011"],
        )
        assert findings == []

    def test_sent_but_unhandled_type_fires_at_send_site(self, tmp_path):
        client = _NET_CLIENT + (
            "\n"
            "    async def probe(self, conn):\n"
            '        return await conn.request({"type": "probe"})\n'
        )
        findings = lint(
            tmp_path,
            {"net/server.py": _NET_SERVER, "net/client.py": client},
            select=["CHR011"],
        )
        assert codes(findings) == ["CHR011"]
        assert '"probe"' in findings[0].message
        assert findings[0].path.endswith("client.py")

    def test_handled_but_never_sent_type_fires_at_branch(self, tmp_path):
        server = _NET_SERVER.replace(
            "        return None\n",
            '        if kind == "drain":\n'
            "            return {}\n"
            "        return None\n",
        )
        findings = lint(
            tmp_path,
            {"net/server.py": server, "net/client.py": _NET_CLIENT},
            select=["CHR011"],
        )
        assert codes(findings) == ["CHR011"]
        assert '"drain"' in findings[0].message
        assert findings[0].path.endswith("server.py")

    def test_scan_without_servers_is_silent(self, tmp_path):
        findings = lint(
            tmp_path, {"net/client.py": _NET_CLIENT}, select=["CHR011"]
        )
        assert findings == []


# --------------------------------------------------------------------- #
# CHR012 — dead/orphan message kinds
# --------------------------------------------------------------------- #

_PROTO_DRIVER = """\
from .messages import Carrier, Inner, Ping, Pong

def make_all():
    return [Ping(1), Pong(2), Carrier(Inner(3))]
"""


class TestDeadMessageRule:
    def test_fully_wired_registry_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": _PROTO_MESSAGES,
                "proto/codec.py": _PROTO_CODEC,
                "proto/driver.py": _PROTO_DRIVER,
            },
            select=["CHR012"],
        )
        assert findings == []

    def test_constructed_but_unroutable_message_fires(self, tmp_path):
        messages = _PROTO_MESSAGES + (
            "\n@dataclass(slots=True)\nclass Ghost:\n    seq: int\n"
        )
        driver = _PROTO_DRIVER.replace(
            "    return [", "    Ghost(9)\n    return ["
        ).replace(
            "from .messages import Carrier, Inner, Ping, Pong",
            "from .messages import Carrier, Ghost, Inner, Ping, Pong",
        )
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": messages,
                "proto/codec.py": _PROTO_CODEC,
                "proto/driver.py": driver,
            },
            select=["CHR012"],
        )
        assert codes(findings) == ["CHR012"]
        assert "Ghost" in findings[0].message
        assert findings[0].path.endswith("messages.py")

    def test_registered_but_never_constructed_fires_at_registration(self, tmp_path):
        driver = _PROTO_DRIVER.replace("Pong(2), ", "")
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": _PROTO_MESSAGES,
                "proto/codec.py": _PROTO_CODEC,
                "proto/driver.py": driver,
            },
            select=["CHR012"],
        )
        assert codes(findings) == ["CHR012"]
        assert "Pong" in findings[0].message
        assert findings[0].path.endswith("codec.py")

    def test_noqa_at_registration_site_suppresses(self, tmp_path):
        driver = _PROTO_DRIVER.replace("Pong(2), ", "")
        codec = _PROTO_CODEC.replace(
            "    Pong,\n", "    Pong,  # chariots: noqa=CHR012\n"
        )
        findings = lint(
            tmp_path,
            {
                "proto/messages.py": _PROTO_MESSAGES,
                "proto/codec.py": codec,
                "proto/driver.py": driver,
            },
            select=["CHR012"],
        )
        assert findings == []


# --------------------------------------------------------------------- #
# CHR013 — exception swallowing
# --------------------------------------------------------------------- #


class TestSwallowRule:
    def test_bare_except_pass_fires(self, tmp_path):
        source = (
            "def run(task):\n"
            "    try:\n"
            "        task()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = lint(tmp_path, {"chariots/worker.py": source}, select=["CHR013"])
        assert codes(findings) == ["CHR013"]

    def test_logging_call_counts_as_handling(self, tmp_path):
        source = (
            "def run(task, journal):\n"
            "    try:\n"
            "        task()\n"
            "    except Exception:\n"
            "        journal.log_failure(task)\n"
        )
        findings = lint(tmp_path, {"chariots/worker.py": source}, select=["CHR013"])
        assert findings == []

    def test_using_bound_exception_counts_as_handling(self, tmp_path):
        source = (
            "def run(task, replies):\n"
            "    try:\n"
            "        task()\n"
            "    except Exception as exc:\n"
            "        replies.append(exc)\n"
        )
        findings = lint(tmp_path, {"chariots/worker.py": source}, select=["CHR013"])
        assert findings == []

    def test_reraise_counts_as_handling(self, tmp_path):
        source = (
            "def run(task):\n"
            "    try:\n"
            "        task()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        findings = lint(tmp_path, {"runtime/worker.py": source}, select=["CHR013"])
        assert findings == []

    def test_narrow_except_is_out_of_scope(self, tmp_path):
        source = (
            "def run(mapping, key):\n"
            "    try:\n"
            "        return mapping[key]\n"
            "    except KeyError:\n"
            "        return None\n"
        )
        findings = lint(tmp_path, {"flstore/worker.py": source}, select=["CHR013"])
        assert findings == []

    def test_outside_pipeline_packages_is_clean(self, tmp_path):
        source = (
            "def run(task):\n"
            "    try:\n"
            "        task()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = lint(tmp_path, {"apps/worker.py": source}, select=["CHR013"])
        assert findings == []


# --------------------------------------------------------------------- #
# CHR014 — blocking socket reads without a deadline
# --------------------------------------------------------------------- #


class TestBlockingSocketRule:
    def test_bare_recv_in_runtime_fires(self, tmp_path):
        source = (
            "def read_frame(sock):\n"
            "    return sock.recv(4096)\n"
        )
        findings = lint(tmp_path, {"runtime/conn.py": source}, select=["CHR014"])
        assert codes(findings) == ["CHR014"]
        assert ".recv()" in findings[0].message

    def test_bare_accept_in_net_fires(self, tmp_path):
        source = (
            "def wait_for_peer(listener):\n"
            "    conn, addr = listener.accept()\n"
            "    return conn\n"
        )
        findings = lint(tmp_path, {"net/server.py": source}, select=["CHR014"])
        assert codes(findings) == ["CHR014"]

    def test_settimeout_in_function_is_clean(self, tmp_path):
        source = (
            "def read_frame(sock, timeout):\n"
            "    sock.settimeout(timeout)\n"
            "    return sock.recv(4096)\n"
        )
        findings = lint(tmp_path, {"runtime/conn.py": source}, select=["CHR014"])
        assert findings == []

    def test_setblocking_on_owning_class_is_clean(self, tmp_path):
        source = (
            "class Conn:\n"
            "    def __init__(self, sock):\n"
            "        sock.setblocking(False)\n"
            "        self.sock = sock\n"
            "\n"
            "    def pump(self):\n"
            "        return self.sock.recv(4096)\n"
        )
        findings = lint(tmp_path, {"runtime/conn.py": source}, select=["CHR014"])
        assert findings == []

    def test_guard_in_sibling_function_does_not_leak(self, tmp_path):
        source = (
            "def configure(sock):\n"
            "    sock.settimeout(5.0)\n"
            "\n"
            "def read_frame(sock):\n"
            "    return sock.recv(4096)\n"
        )
        findings = lint(tmp_path, {"runtime/conn.py": source}, select=["CHR014"])
        assert codes(findings) == ["CHR014"]

    def test_noqa_names_the_invariant(self, tmp_path):
        source = (
            "def read_frame(sock):\n"
            "    return sock.recv(4096)  # chariots: noqa=CHR014\n"
        )
        findings = lint(tmp_path, {"runtime/conn.py": source}, select=["CHR014"])
        assert findings == []

    def test_outside_socket_packages_is_clean(self, tmp_path):
        source = (
            "def read_frame(sock):\n"
            "    return sock.recv(4096)\n"
        )
        findings = lint(tmp_path, {"bench/probe.py": source}, select=["CHR014"])
        assert findings == []

    def test_shipped_tree_is_baseline_free_for_chr014(self):
        findings = run_rules(scan([REPO_ROOT / "src"]), select=["CHR014"])
        assert findings == []


# --------------------------------------------------------------------- #
# The project model and message-flow graph
# --------------------------------------------------------------------- #


class TestFlowGraph:
    def test_model_is_cached_per_scan(self):
        project = scan([REPO_ROOT / "src"])
        assert build_model(project) is build_model(project)

    def test_every_server_request_branch_is_exercised(self):
        """The acceptance bar: every request['type'] branch in net/server.py
        corresponds to a type some client sends, and vice versa."""
        model = build_model(scan([REPO_ROOT / "src"]))
        assert model.has_request_handlers
        assert set(model.request_sent) == set(model.request_handled)
        for kind in (
            "hello",
            "session",
            "append",
            "read_lid",
            "read_rules",
            "head",
            "gossip",
            "drain_postings",
            "index_update",
            "lookup",
        ):
            assert kind in model.request_handled, kind

    def test_graph_dict_shape(self, tmp_path):
        root = tmp_path / "proj"
        for rel, source in {
            "proto/messages.py": _PROTO_MESSAGES,
            "proto/codec.py": _PROTO_CODEC,
            "proto/driver.py": _PROTO_DRIVER,
            "net/server.py": _NET_SERVER,
            "net/client.py": _NET_CLIENT,
        }.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        graph = build_model(scan([root])).graph_dict()
        assert graph["version"] == 1
        assert graph["messages"]["Ping"]["registered"] is True
        assert graph["messages"]["Ping"]["constructed_in"] == [
            {"module": "proto/driver.py", "line": 4}
        ]
        assert graph["messages"]["Inner"]["embedded_in"] == ["Carrier"]
        assert set(graph["requests"]) == {"ping", "status"}
        assert graph["requests"]["ping"]["sent_from"][0]["module"] == "net/client.py"
        assert graph["requests"]["ping"]["handled_in"][0]["module"] == "net/server.py"
        # Reply-shape surface (CHR015's inputs) rides along in the export.
        assert graph["requests"]["ping"]["reply_keys"] == ["ok"]
        assert graph["requests"]["ping"]["reply_opaque"] is False

    def test_graph_dot_renders(self):
        dot = build_model(scan([REPO_ROOT / "src"])).graph_dot()
        assert dot.startswith("digraph message_flow {")
        assert dot.rstrip().endswith("}")
        assert '"msg:AdmittedBatch"' in dot
        assert '"req:append"' in dot


class TestGraphCli:
    def _fixture(self, tmp_path):
        root = tmp_path / "proj"
        for rel, source in {
            "net/server.py": _NET_SERVER,
            "net/client.py": _NET_CLIENT,
        }.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return root

    def test_graph_json_round_trips(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        assert analysis_main([str(root), "--graph", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["requests"]) == {"ping", "status"}

    def test_graph_dot_renders(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        assert analysis_main([str(root), "--graph", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph message_flow {")


# --------------------------------------------------------------------- #
# Multi-hop dataflow walk (CHR010 depth, cycle safety)
# --------------------------------------------------------------------- #

_DEEP_RACE = """\
class Conn:
    def __init__(self, opener):
        self._opener = opener
        self._sock = None

    async def reconnect(self):
        if self._sock is None:
            await self._refresh()

    async def _refresh(self):
        await self._reopen()

    async def _reopen(self):
        self._sock = await self._opener()
"""


class TestMultiHopWalk:
    def test_race_two_helper_levels_deep_fires(self, tmp_path):
        findings = lint(tmp_path, {"net/conn.py": _DEEP_RACE}, select=["CHR010"])
        assert codes(findings) == ["CHR010"]
        assert "reconnect" in findings[0].message
        assert "_sock" in findings[0].message

    def test_depth_one_walk_provably_misses_it(self):
        """The historical one-level splice never sees the write two helper
        levels down — the depth bound is what makes the deep fixture fire."""
        cls = ast.parse(_DEEP_RACE).body[0]
        methods = class_methods(cls)
        summaries = {
            name: method_events(func, methods) for name, func in methods.items()
        }
        deep = expand_events(summaries["reconnect"], summaries)
        shallow = expand_events(summaries["reconnect"], summaries, depth=1)
        assert any(e.kind == WRITE and e.attr == "_sock" for e in deep)
        assert not any(e.kind == WRITE for e in shallow)

    def test_mutually_recursive_helpers_terminate(self, tmp_path):
        source = (
            "class Conn:\n"
            "    def __init__(self):\n"
            "        self._sock = None\n"
            "\n"
            "    async def ping(self):\n"
            "        await self.pong()\n"
            "\n"
            "    async def pong(self):\n"
            "        await self.ping()\n"
        )
        cls = ast.parse(source).body[0]
        methods = class_methods(cls)
        summaries = {
            name: method_events(func, methods) for name, func in methods.items()
        }
        # Must terminate (splice-stack cycle detection), not recurse forever.
        events = expand_events(summaries["ping"], summaries)
        assert all(e.kind != "call" for e in events)
        # And the rule stays clean on it rather than hanging.
        findings = lint(tmp_path, {"net/conn.py": source}, select=["CHR010"])
        assert findings == []


# --------------------------------------------------------------------- #
# CHR015 — reply-shape exhaustiveness
# --------------------------------------------------------------------- #

_REPLY_SERVER = """\
class Server:
    async def handle(self, request):
        kind = request["type"]
        if kind == "ping":
            return {"type": "pong", "seq": 1}
        if kind == "status":
            return {"type": "status_reply", "up": True}
        return {"type": "error", "error": "unknown request"}
"""

_REPLY_CLIENT = """\
class Client:
    async def ping(self, conn):
        response = await conn.request({"type": "ping"})
        return response["seq"]

    async def status(self, conn):
        response = await conn.request({"type": "status"})
        return response["up"]
"""


class TestReplyShapeRule:
    def test_balanced_reply_surface_is_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {"net/server.py": _REPLY_SERVER, "net/client.py": _REPLY_CLIENT},
            select=["CHR015"],
        )
        assert findings == []

    def test_misspelled_reply_key_fires_both_ends(self, tmp_path):
        client = _REPLY_CLIENT.replace('response["seq"]', 'response["sequence"]')
        findings = lint(
            tmp_path,
            {"net/server.py": _REPLY_SERVER, "net/client.py": client},
            select=["CHR015"],
        )
        assert codes(findings) == ["CHR015", "CHR015"]
        read_miss = next(f for f in findings if f.path.endswith("client.py"))
        dead_key = next(f for f in findings if f.path.endswith("server.py"))
        assert '"sequence"' in read_miss.message and "KeyError" in read_miss.message
        assert '"seq"' in dead_key.message and "dead reply surface" in dead_key.message

    def test_soft_get_read_counts_and_never_keyerrors(self, tmp_path):
        client = _REPLY_CLIENT.replace(
            'response["seq"]', 'response.get("seq")'
        )
        findings = lint(
            tmp_path,
            {"net/server.py": _REPLY_SERVER, "net/client.py": client},
            select=["CHR015"],
        )
        assert findings == []

    def test_opaque_reply_branch_is_skipped(self, tmp_path):
        server = _REPLY_SERVER.replace(
            '            return {"type": "pong", "seq": 1}\n',
            "            return self._build_pong(request)\n",
        )
        findings = lint(
            tmp_path,
            {"net/server.py": server, "net/client.py": _REPLY_CLIENT},
            select=["CHR015"],
        )
        assert findings == []

    def test_unsent_request_types_are_not_checked(self, tmp_path):
        server = _REPLY_SERVER.replace(
            '        return {"type": "error", "error": "unknown request"}\n',
            '        if kind == "drain":\n'
            '            return {"type": "drained", "junk": 1}\n'
            '        return {"type": "error", "error": "unknown request"}\n',
        )
        findings = lint(
            tmp_path,
            {"net/server.py": server, "net/client.py": _REPLY_CLIENT},
            select=["CHR015"],
        )
        assert findings == []

    def test_scan_without_servers_is_silent(self, tmp_path):
        findings = lint(
            tmp_path, {"net/client.py": _REPLY_CLIENT}, select=["CHR015"]
        )
        assert findings == []


# --------------------------------------------------------------------- #
# CHR016 — supervisor-protocol safety
# --------------------------------------------------------------------- #

_SEQ_NO_TRIM = """\
class Slot:
    def __init__(self):
        self.delivery_seq = 0
        self.unacked = []

    def admit(self, frame):
        self.delivery_seq += 1
        self.unacked.append(frame)
"""

_EXIT_NO_TERMINAL = """\
class Supervisor:
    def __init__(self, procs):
        self.procs = procs
        self.notes = []

    def check(self):
        for proc in self.procs:
            if proc.exitcode is not None:
                self._note(proc)

    def _note(self, proc):
        self.notes.append(proc)
"""


class TestSupervisorProtocolRule:
    def test_untrimmed_sequenced_buffer_fires(self, tmp_path):
        findings = lint(
            tmp_path, {"runtime/slot.py": _SEQ_NO_TRIM}, select=["CHR016"]
        )
        assert codes(findings) == ["CHR016"]
        assert "'unacked'" in findings[0].message

    def test_trim_anywhere_in_class_is_clean(self, tmp_path):
        source = _SEQ_NO_TRIM + (
            "\n"
            "    def on_ack(self, count):\n"
            "        for _ in range(count):\n"
            "            self.unacked.pop(0)\n"
        )
        findings = lint(
            tmp_path, {"runtime/slot.py": source}, select=["CHR016"]
        )
        assert findings == []

    def test_reset_assignment_outside_init_is_clean(self, tmp_path):
        source = _SEQ_NO_TRIM + (
            "\n"
            "    def drain(self):\n"
            "        held, self.unacked = self.unacked, []\n"
            "        return held\n"
        )
        findings = lint(
            tmp_path, {"runtime/slot.py": source}, select=["CHR016"]
        )
        assert findings == []

    def test_init_assignment_does_not_count_as_trim(self, tmp_path):
        # The ``self.unacked = []`` in __init__ is initialisation, not an
        # ack path; the positive fixture must keep firing despite it.
        assert "self.unacked = []" in _SEQ_NO_TRIM
        findings = lint(
            tmp_path, {"runtime/slot.py": _SEQ_NO_TRIM}, select=["CHR016"]
        )
        assert codes(findings) == ["CHR016"]

    def test_exitcode_without_terminal_fires(self, tmp_path):
        findings = lint(
            tmp_path, {"runtime/boss.py": _EXIT_NO_TERMINAL}, select=["CHR016"]
        )
        assert codes(findings) == ["CHR016"]
        assert "exitcode" in findings[0].message

    def test_respawn_within_hop_bound_is_clean(self, tmp_path):
        source = _EXIT_NO_TERMINAL.replace(
            "        self.notes.append(proc)\n",
            "        self._respawn(proc)\n"
            "\n"
            "    def _respawn(self, proc):\n"
            "        self.notes.append(proc)\n",
        )
        findings = lint(
            tmp_path, {"runtime/boss.py": source}, select=["CHR016"]
        )
        assert findings == []

    def test_failed_flag_store_is_a_terminal(self, tmp_path):
        source = _EXIT_NO_TERMINAL.replace(
            "        self.notes.append(proc)\n",
            "        self.failed = True\n",
        )
        findings = lint(
            tmp_path, {"runtime/boss.py": source}, select=["CHR016"]
        )
        assert findings == []

    def test_outside_runtime_is_out_of_scope(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "chariots/slot.py": _SEQ_NO_TRIM,
                "net/boss.py": _EXIT_NO_TERMINAL,
            },
            select=["CHR016"],
        )
        assert findings == []


# --------------------------------------------------------------------- #
# CHR017 — dead noqa directives
# --------------------------------------------------------------------- #


class TestDeadNoqaRule:
    def test_dead_directive_fires_on_full_runs(self, tmp_path):
        findings = lint(
            tmp_path, {"sim/junk.py": "X = 1  # chariots: noqa=CHR003\n"}
        )
        assert codes(findings) == ["CHR017"]
        assert "CHR003" in findings[0].message

    def test_live_directive_is_silent(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "def now() -> float:\n"
            "    return time.time()  # chariots: noqa=CHR003\n"
        )
        findings = lint(tmp_path, {"sim/clock.py": source})
        assert findings == []

    def test_directive_listing_chr017_is_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {"sim/junk.py": "X = 1  # chariots: noqa=CHR003,CHR017\n"},
        )
        assert findings == []

    def test_docstring_mention_is_not_a_directive(self, tmp_path):
        source = (
            '"""Docs quoting the # chariots: noqa=CHR003 syntax in prose."""\n'
            "X = 1\n"
        )
        findings = lint(tmp_path, {"sim/doc.py": source})
        assert findings == []

    def test_selected_runs_skip_the_audit(self, tmp_path):
        findings = lint(
            tmp_path,
            {"sim/junk.py": "X = 1  # chariots: noqa=CHR003\n"},
            select=["CHR003"],
        )
        assert findings == []

    def test_dead_bare_directive_cannot_suppress_its_own_report(self, tmp_path):
        # A bare noqa suppresses every code — but CHR017 findings bypass
        # noqa filtering, so the dead directive is still reported.
        findings = lint(tmp_path, {"sim/junk.py": "X = 1  # chariots: noqa\n"})
        assert codes(findings) == ["CHR017"]
        assert "all rules" in findings[0].message


# --------------------------------------------------------------------- #
# Typed-surface consistency (CHR008 <-> pyproject <-> tree)
# --------------------------------------------------------------------- #


class TestTypedSurfaceConsistency:
    def test_typed_packages_match_pyproject_and_tree(self):
        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        overrides = data["tool"]["mypy"]["overrides"]
        strict = [o for o in overrides if o.get("disallow_untyped_defs")]
        assert len(strict) == 1, "expected exactly one strict override block"
        from_pyproject = set()
        for module in strict[0]["module"]:
            assert module.startswith("repro.") and module.endswith(".*"), module
            from_pyproject.add(module[len("repro.") : -len(".*")])
        on_disk = {
            path.name
            for path in (REPO_ROOT / "src" / "repro").iterdir()
            if path.is_dir() and (path / "__init__.py").exists()
        }
        assert set(TYPED_PACKAGES) == from_pyproject == on_disk

    def test_no_lenient_mypy_default_remains(self):
        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        assert "ignore_errors" not in data["tool"]["mypy"]
        for override in data["tool"]["mypy"]["overrides"]:
            assert override.get("ignore_errors") is not True


# --------------------------------------------------------------------- #
# Call-graph acceptance over the real supervision hot path
# --------------------------------------------------------------------- #


class TestSupervisionCallGraph:
    def _runtime_class(self):
        source = (REPO_ROOT / "src" / "repro" / "runtime" / "multiproc.py").read_text()
        for node in ast.parse(source).body:
            if isinstance(node, ast.ClassDef) and node.name == "MultiprocRuntime":
                return node
        raise AssertionError("MultiprocRuntime not found")

    def test_failure_detection_reaches_mark_down(self):
        graph = self_call_graph(self._runtime_class())
        reachable = reachable_within(graph, ["_detect_failures"], EXPAND_DEPTH)
        assert "_mark_worker_down" in reachable

    def test_hop_bound_is_real_on_the_supervision_path(self):
        """check_workers -> _respawn_worker -> _respawn_once needs two hops:
        the depth-1 frontier misses the second edge, depth 3 crosses it."""
        graph = self_call_graph(self._runtime_class())
        shallow = reachable_within(graph, ["check_workers"], 1)
        deep = reachable_within(graph, ["check_workers"], EXPAND_DEPTH)
        assert "_respawn_worker" in shallow
        assert "_respawn_once" not in shallow
        assert "_respawn_once" in deep


# --------------------------------------------------------------------- #
# CHR018 — cross-actor lost update
# --------------------------------------------------------------------- #

_XACTOR_RACE = """\
class Credit:
    def __init__(self, amount):
        self.amount = amount

class CreditReply:
    def __init__(self, total):
        self.total = total

class Banker:
    def on_message(self, sender, message):
        if isinstance(message, Credit):
            self.send(sender, CreditReply(message.amount + 1))

class Teller:
    def __init__(self):
        self.balance = 0

    def on_message(self, sender, message):
        if isinstance(message, CreditReply):
            self.balance = message.total
            return
        self.deposit(sender)

    def deposit(self, sender):
        snapshot = self.balance
        self.send(sender, Credit(snapshot))
"""


class TestCrossActorRaceRule:
    def test_blind_reply_overwrite_fires(self, tmp_path):
        findings = lint(tmp_path, {"app.py": _XACTOR_RACE}, select=["CHR018"])
        assert codes(findings) == ["CHR018"]
        message = findings[0].message
        assert "Teller" in message and "balance" in message
        assert "Credit" in message and "CreditReply" in message

    def test_merging_reply_handler_is_clean(self, tmp_path):
        source = _XACTOR_RACE.replace(
            "self.balance = message.total",
            "self.balance = self.balance + message.total",
        )
        findings = lint(tmp_path, {"app.py": source}, select=["CHR018"])
        assert findings == []

    def test_read_without_send_is_clean(self, tmp_path):
        source = _XACTOR_RACE.replace(
            "self.send(sender, Credit(snapshot))", "self.log(snapshot)"
        )
        findings = lint(tmp_path, {"app.py": source}, select=["CHR018"])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        source = _XACTOR_RACE.replace(
            "self.balance = message.total",
            "self.balance = message.total  # chariots: noqa=CHR018",
        )
        findings = lint(tmp_path, {"app.py": source}, select=["CHR018"])
        assert findings == []


# --------------------------------------------------------------------- #
# CHR019 — silent state-guard drops
# --------------------------------------------------------------------- #

_SILENT_DROP = """\
class Tick:
    pass

class Clock:
    def on_message(self, sender, message):
        self.send(self.peer, Tick())

class Worker:
    def __init__(self):
        self.parked = False

    def on_message(self, sender, message):
        if self.parked:
            return
        if isinstance(message, Tick):
            self.advance()

    def advance(self):
        pass
"""


class TestSilentDropRule:
    def test_state_guard_with_bare_return_fires(self, tmp_path):
        findings = lint(tmp_path, {"app.py": _SILENT_DROP}, select=["CHR019"])
        assert codes(findings) == ["CHR019"]
        assert "Worker.on_message" in findings[0].message
        assert "Tick" in findings[0].message

    def test_counted_drop_is_clean(self, tmp_path):
        source = _SILENT_DROP.replace(
            "        if self.parked:\n            return\n",
            "        if self.parked:\n"
            "            self.dropped += 1\n"
            "            return\n",
        )
        findings = lint(tmp_path, {"app.py": source}, select=["CHR019"])
        assert findings == []

    def test_unprovable_arrival_is_clean(self, tmp_path):
        source = _SILENT_DROP.replace("self.send(self.peer, Tick())", "pass")
        findings = lint(tmp_path, {"app.py": source}, select=["CHR019"])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        source = _SILENT_DROP.replace(
            "if self.parked:",
            "if self.parked:  # chariots: noqa=CHR019",
        )
        findings = lint(tmp_path, {"app.py": source}, select=["CHR019"])
        assert findings == []


# --------------------------------------------------------------------- #
# CHR021 — backpressure deadlock cycles
# --------------------------------------------------------------------- #

_BACKPRESSURE_CYCLE = """\
class Up:
    pass

class Down:
    pass

class StageA:
    def __init__(self):
        self.queue = []
        self.limit = 4

    def on_message(self, sender, message):
        if isinstance(message, Up):
            if len(self.queue) >= self.limit:
                return
            self.queue.append(message)
            self.send(sender, Down())

class StageB:
    def __init__(self):
        self.pending = []
        self.max_pending = 4

    def on_message(self, sender, message):
        if isinstance(message, Down):
            if len(self.pending) >= self.max_pending:
                return
            self.pending.append(message)
            self.send(sender, Up())
"""


class TestBackpressureCycleRule:
    def test_all_refusable_ring_fires(self, tmp_path):
        findings = lint(
            tmp_path, {"app.py": _BACKPRESSURE_CYCLE}, select=["CHR021"]
        )
        assert codes(findings) == ["CHR021"]
        assert "StageA -> StageB -> StageA" in findings[0].message

    def test_one_always_consuming_edge_breaks_the_cycle(self, tmp_path):
        source = _BACKPRESSURE_CYCLE.replace(
            "            if len(self.pending) >= self.max_pending:\n"
            "                return\n",
            "",
        )
        findings = lint(tmp_path, {"app.py": source}, select=["CHR021"])
        assert findings == []

    def test_acyclic_refusable_edges_are_clean(self, tmp_path):
        source = _BACKPRESSURE_CYCLE.replace("self.send(sender, Up())", "pass")
        findings = lint(tmp_path, {"app.py": source}, select=["CHR021"])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        # The finding lands on the receiving branch of the cycle's first
        # edge (StageA -> StageB carries Down), so the directive goes there.
        source = _BACKPRESSURE_CYCLE.replace(
            "        if isinstance(message, Down):",
            "        if isinstance(message, Down):  # chariots: noqa=CHR021",
        )
        findings = lint(tmp_path, {"app.py": source}, select=["CHR021"])
        assert findings == []


# --------------------------------------------------------------------- #
# CHR016 — explicit drain/restart terminals
# --------------------------------------------------------------------- #

_EXIT_DRAIN = """\
class Supervisor:
    def check(self, wid, proc):
        if proc.exitcode is not None:
            self.drain_worker(wid)
"""


class TestSupervisionExplicitTerminals:
    def test_drain_worker_is_a_recognised_terminal(self, tmp_path):
        findings = lint(
            tmp_path, {"runtime/sup.py": _EXIT_DRAIN}, select=["CHR016"]
        )
        assert findings == []

    def test_restart_worker_is_a_recognised_terminal(self, tmp_path):
        source = _EXIT_DRAIN.replace("drain_worker", "restart_worker")
        findings = lint(
            tmp_path, {"runtime/sup.py": source}, select=["CHR016"]
        )
        assert findings == []

    def test_unlisted_drain_shorthand_still_fires(self, tmp_path):
        """Exact-name matching, not substring: a bare ``drain`` call is
        neither in TERMINAL_METHODS nor matched by the heuristic."""
        source = _EXIT_DRAIN.replace("self.drain_worker(wid)", "self.drain(wid)")
        findings = lint(
            tmp_path, {"runtime/sup.py": source}, select=["CHR016"]
        )
        assert codes(findings) == ["CHR016"]

    def test_terminal_methods_name_real_entry_points(self):
        from repro.analysis.rules.supervision import TERMINAL_METHODS

        source = (
            REPO_ROOT / "src" / "repro" / "runtime" / "multiproc.py"
        ).read_text()
        for name in sorted(TERMINAL_METHODS):
            assert f"def {name}(" in source, name


# --------------------------------------------------------------------- #
# SARIF output
# --------------------------------------------------------------------- #


class TestSarifOutput:
    def _write(self, tmp_path, source):
        root = tmp_path / "proj"
        root.mkdir()
        (root / "app.py").write_text(source)
        return root

    def test_findings_render_as_sarif(self, tmp_path, capsys):
        root = self._write(tmp_path, _XACTOR_RACE)
        code = analysis_main(
            [str(root), "--select", "CHR018", "--format", "sarif"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids) and "CHR018" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "CHR018"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert result["partialFingerprints"]["chariotsFingerprint/v1"]

    def test_sarif_columns_are_one_based(self, tmp_path):
        from repro.analysis.sarif import sarif_dict

        root = self._write(tmp_path, _XACTOR_RACE)
        findings = run_rules(scan([root]), select=["CHR018"])
        doc = sarif_dict(findings)
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startColumn"] == findings[0].col + 1

    def test_clean_tree_is_exit_zero_with_empty_results(self, tmp_path, capsys):
        root = self._write(tmp_path, "x = 1\n")
        assert analysis_main([str(root), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


# --------------------------------------------------------------------- #
# Actor graph export + memoisation + wall-clock budget
# --------------------------------------------------------------------- #


class TestActorGraphExport:
    def test_graph_json_includes_actor_section(self, tmp_path, capsys):
        root = tmp_path / "proj"
        root.mkdir()
        (root / "app.py").write_text(_BACKPRESSURE_CYCLE)
        assert analysis_main([str(root), "--graph", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        actors = payload["actors"]
        assert set(actors["actors"]) == {"StageA", "StageB"}
        assert {"from": "StageA", "to": "StageB", "kind": "Down"} in actors[
            "edges"
        ]
        assert actors["actors"]["StageA"]["handles"]["Up"]["refusable"]

    def test_actor_graph_is_memoised_per_scan(self):
        from repro.analysis.actors import build_actor_graph

        project = scan([REPO_ROOT / "src"])
        first = build_actor_graph(project)
        assert build_actor_graph(project) is first
        assert project.actor_cache is first


class TestAnalysisWallClock:
    def test_full_run_stays_under_budget(self):
        """Regression guard: a full scan + every rule (including CHR020's
        in-lint model check and the memoised actor graph) must stay well
        under CI's patience.  Locally this runs in ~3s; the 20s budget
        absorbs slow shared runners without hiding a blow-up."""
        start = time.perf_counter()
        findings = run_rules(scan([REPO_ROOT / "src"]))
        elapsed = time.perf_counter() - start
        assert findings == []
        assert elapsed < 20.0, f"full analysis run took {elapsed:.1f}s"
