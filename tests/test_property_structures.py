"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import CausalFrontier, DeferredQueue, LogStore, causal_order_respected
from repro.core.causality import topological_causal_sort
from repro.core.errors import DuplicateRecordError
from repro.chariots.filters import FilterCore, FilterMap
from repro.flstore import MaintainerCore, OwnershipPlan

from conftest import rec

# --------------------------------------------------------------------- #
# OwnershipPlan: the deterministic assignment is a partition
# --------------------------------------------------------------------- #

plan_strategy = st.tuples(
    st.integers(1, 6),      # maintainers
    st.integers(1, 50),     # batch size
    st.integers(0, 500),    # probe range
)


@settings(max_examples=100, deadline=None)
@given(plan_strategy)
def test_ownership_plan_partitions_lid_space(params):
    n, batch, upto = params
    names = [f"m{i}" for i in range(n)]
    plan = OwnershipPlan(names, batch_size=batch)
    owned = {name: set(plan.owned_lids(name, upto)) for name in names}
    union = set()
    for lids in owned.values():
        assert not (union & lids)  # disjoint
        union |= lids
    assert union == set(range(upto + 1))  # complete


@settings(max_examples=100, deadline=None)
@given(plan_strategy, st.integers(-1, 500))
def test_next_owned_lid_is_consistent_with_owner(params, after):
    n, batch, _ = params
    names = [f"m{i}" for i in range(n)]
    plan = OwnershipPlan(names, batch_size=batch)
    for name in names:
        nxt = plan.next_owned_lid(name, after)
        assert nxt is not None and nxt > after
        assert plan.owner(nxt) == name
        # Nothing owned by `name` exists strictly between after and nxt.
        for lid in range(max(after + 1, 0), nxt):
            assert plan.owner(lid) != name


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 4),
    st.integers(1, 20),
    st.integers(1, 4),
    st.integers(1, 10),
)
def test_epoch_journal_keeps_partitioning(n1, batch, extra, rounds_later):
    names = [f"m{i}" for i in range(n1)]
    plan = OwnershipPlan(names, batch_size=batch)
    boundary = batch * n1 * rounds_later
    plan.add_epoch(boundary, names + [f"x{i}" for i in range(extra)])
    everyone = plan.maintainers()
    upto = boundary + batch * len(everyone) * 2
    owned = {name: set(plan.owned_lids(name, upto)) for name in everyone}
    union = set()
    for lids in owned.values():
        assert not (union & lids)
        union |= lids
    assert union == set(range(upto + 1))


# --------------------------------------------------------------------- #
# LogStore: contiguity under arbitrary placement orders
# --------------------------------------------------------------------- #


@settings(max_examples=100, deadline=None)
@given(st.permutations(list(range(12))))
def test_logstore_contiguity_invariant(order):
    store = LogStore()
    placed = set()
    for i, lid in enumerate(order):
        store.put(lid, rec("A", lid + 1))
        placed.add(lid)
        expected = -1
        while expected + 1 in placed:
            expected += 1
        assert store.contiguous_upto == expected
    assert store.gaps() == []


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=30, unique=True),
       st.integers(0, 31))
def test_logstore_truncate_never_crosses_gaps(lids, cut):
    store = LogStore()
    for lid in lids:
        store.put(lid, rec("A", lid + 1))
    contiguous = store.contiguous_upto
    store.truncate_below(cut)
    assert store.truncated_below <= contiguous + 1


# --------------------------------------------------------------------- #
# Causality: sort output always valid; frontier admission is prefix-closed
# --------------------------------------------------------------------- #

def build_records(spec):
    """spec: list of (host index, has_cross_dep) -> a coherent record set."""
    counters = {}
    seen = {}
    records = []
    for host_index, with_dep in spec:
        host = f"H{host_index}"
        counters[host] = counters.get(host, 0) + 1
        deps = {}
        if with_dep and seen:
            other = sorted(seen)[0]
            if other != host:
                deps[other] = seen[other]
        record = rec(host, counters[host], deps=deps)
        records.append(record)
        seen[host] = counters[host]
    return records


record_spec = st.lists(
    st.tuples(st.integers(0, 2), st.booleans()), min_size=1, max_size=20
)


@settings(max_examples=100, deadline=None)
@given(record_spec, st.randoms())
def test_topological_sort_of_shuffled_records_is_causal(spec, rng):
    records = build_records(spec)
    shuffled = list(records)
    rng.shuffle(shuffled)
    ordered = topological_causal_sort(shuffled)
    assert causal_order_respected(ordered)
    assert {r.rid for r in ordered} == {r.rid for r in records}


@settings(max_examples=100, deadline=None)
@given(record_spec, st.randoms())
def test_deferred_queue_eventually_admits_everything(spec, rng):
    records = build_records(spec)
    shuffled = list(records)
    rng.shuffle(shuffled)
    frontier = CausalFrontier()
    deferred = DeferredQueue()
    admitted = []
    for record in shuffled:
        if frontier.admissible(record):
            frontier.advance(record)
            admitted.append(record)
        else:
            try:
                deferred.push(record)
            except DuplicateRecordError:
                pass
        admitted.extend(deferred.drain(frontier))
    assert len(admitted) == len(records)
    assert causal_order_respected(admitted)


# --------------------------------------------------------------------- #
# FilterCore: exactly-once under shuffles and duplication
# --------------------------------------------------------------------- #


@settings(max_examples=100, deadline=None)
@given(
    st.integers(1, 25),
    st.randoms(),
    st.integers(1, 3),  # duplication factor
)
def test_filter_admits_each_record_exactly_once(n, rng, dups):
    fmap = FilterMap(["f"])
    fmap.assign_host("A", ["f"])
    core = FilterCore("f", fmap)
    stream = [rec("A", t) for t in range(1, n + 1)] * dups
    rng.shuffle(stream)
    released = []
    for record in stream:
        released.extend(core.offer_external(record))
    assert [r.toid for r in released] == list(range(1, n + 1))
    assert core.buffered_count() == 0


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 20), st.randoms())
def test_sliced_filters_jointly_admit_exactly_once(n, rng):
    fmap = FilterMap(["x", "y"])
    fmap.assign_host("A", ["x", "y"])
    cores = {name: FilterCore(name, fmap) for name in ("x", "y")}
    stream = [rec("A", t) for t in range(1, n + 1)] * 2  # duplicated
    rng.shuffle(stream)
    released = []
    for record in stream:
        champion = fmap.filter_for_record(record)
        released.extend(cores[champion].offer_external(record))
    assert sorted(r.toid for r in released) == list(range(1, n + 1))


# --------------------------------------------------------------------- #
# MaintainerCore: post-assignment never reuses or skips LIds
# --------------------------------------------------------------------- #


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 4),
    st.integers(1, 10),
    st.lists(st.integers(0, 3), min_size=1, max_size=30),
)
def test_post_assignment_is_collision_free(n, batch, sends):
    names = [f"m{i}" for i in range(n)]
    plan = OwnershipPlan(names, batch_size=batch)
    cores = {name: MaintainerCore(name, plan) for name in names}
    counter = 0
    assigned = []
    for target_index in sends:
        counter += 1
        target = names[target_index % n]
        [result] = cores[target].append([rec("c", counter)])
        assigned.append(result.lid)
        assert plan.owner(result.lid) == target
    assert len(assigned) == len(set(assigned))
