"""Tests for the command-line interface (repro.cli)."""

import os

import pytest

from repro.cli import build_parser, main
from repro.flstore import FileJournal, MaintainerCore, OwnershipPlan
from repro.flstore.archive import ArchiveStore

from conftest import chain, rec


class TestDemo:
    def test_demo_runs_and_converges(self, capsys):
        assert main(["demo", "--records", "2"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out
        assert "head of log" in out

    def test_demo_with_three_datacenters(self, capsys):
        assert main(["demo", "--datacenters", "X,Y,Z", "--records", "1"]) == 0
        out = capsys.readouterr().out
        assert "3 datacenters" in out


class TestTable1:
    def test_prints_every_group(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Chariots" in out
        assert "CORFU/Tango" in out
        assert "Megastore" in out


class TestBench:
    def test_fig7(self, capsys):
        assert main(["bench", "fig7", "--duration", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "achieved" in out

    def test_table2(self, capsys):
        assert main(["bench", "table2", "--duration", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck: Client" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "nonsense"])


class TestInspection:
    def test_inspect_journal(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "m.journal")
        journal = FileJournal(path)
        core = MaintainerCore("m0", OwnershipPlan(["m0"], batch_size=5), journal=journal)
        core.append(chain("c", 4))
        journal.close()
        assert main(["inspect-journal", path, "-v"]) == 0
        out = capsys.readouterr().out
        assert "4 placements" in out
        assert "LId range: 0..3" in out

    def test_inspect_empty_journal(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "empty.journal")
        FileJournal(path).close()
        assert main(["inspect-journal", path]) == 0
        assert "empty journal" in capsys.readouterr().out

    def test_inspect_archive(self, tmp_path, capsys):
        archive = ArchiveStore()
        for i in range(3):
            archive(i, rec("A", i + 1, tags={"k": i}))
        path = os.path.join(tmp_path, "a.jsonl")
        archive.dump(path)
        assert main(["inspect-archive", path, "-v"]) == 0
        out = capsys.readouterr().out
        assert "3 archived records" in out


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for argv in (
            ["demo"],
            ["table1"],
            ["bench", "fig8"],
            ["inspect-journal", "x"],
            ["inspect-archive", "x"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)
