"""Tests for the event loop, actor model, and deterministic local runtime."""

import pytest

from repro.core import ConfigurationError
from repro.core.errors import RuntimeExhaustedError, SessionError
from repro.runtime import (
    Actor,
    EventLoop,
    LocalRuntime,
    partitioned,
    random_drops,
    random_latency,
)


class Echo(Actor):
    """Replies to every message and records what it saw."""

    def __init__(self, name):
        super().__init__(name)
        self.seen = []

    def on_message(self, sender, message):
        self.seen.append((sender, message))
        if isinstance(message, str) and message.startswith("ping"):
            self.send(sender, message.replace("ping", "pong"))


class TestEventLoop:
    def test_time_starts_at_zero(self):
        assert EventLoop().now == 0.0

    def test_schedule_and_run(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [1.0]

    def test_equal_times_fire_in_schedule_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("first"))
        loop.schedule(1.0, lambda: order.append("second"))
        loop.run()
        assert order == ["first", "second"]

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        loop.run()
        assert fired == []

    def test_run_until_time_advances_clock(self):
        loop = EventLoop()
        assert loop.run(until_time=5.0) == 5.0
        assert loop.now == 5.0

    def test_until_time_leaves_later_events_pending(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10.0, lambda: fired.append(1))
        loop.run(until_time=5.0)
        assert fired == []
        loop.run()
        assert fired == [1]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        with pytest.raises(ConfigurationError):
            loop.schedule(-1, lambda: None)

    def test_max_events(self):
        loop = EventLoop()
        count = []

        def reschedule():
            count.append(1)
            loop.schedule(1.0, reschedule)

        loop.schedule(1.0, reschedule)
        loop.run(max_events=10)
        assert len(count) == 10

    def test_run_until_predicate(self):
        loop = EventLoop()
        box = []
        loop.schedule(1.0, lambda: box.append(1))
        loop.schedule(2.0, lambda: box.append(2))
        loop.run_until(lambda: bool(box))
        assert box == [1]

    def test_run_until_exhaustion_raises(self):
        loop = EventLoop()
        with pytest.raises(RuntimeExhaustedError):
            loop.run_until(lambda: False)


class TestLocalRuntime:
    def test_message_delivery(self):
        rt = LocalRuntime()
        a, b = Echo("a"), Echo("b")
        rt.register_all([a, b])
        rt.start()
        a.send("b", "ping-1")
        rt.run()
        assert ("a", "ping-1") in b.seen
        assert ("b", "pong-1") in a.seen

    def test_duplicate_names_rejected(self):
        rt = LocalRuntime()
        rt.register(Echo("a"))
        with pytest.raises(ConfigurationError):
            rt.register(Echo("a"))

    def test_send_to_unknown_actor_raises(self):
        rt = LocalRuntime()
        rt.register(Echo("a"))
        rt.start()
        with pytest.raises(ConfigurationError):
            rt.actor("a").send("ghost", "hello")

    def test_unregistered_actor_cannot_send(self):
        orphan = Echo("orphan")
        with pytest.raises(SessionError):
            orphan.send("anyone", "hi")

    def test_on_start_called_once(self):
        calls = []

        class Starter(Actor):
            def on_start(self):
                calls.append(self.name)

            def on_message(self, sender, message):
                pass

        rt = LocalRuntime()
        rt.register(Starter("s"))
        rt.start()
        rt.start()
        assert calls == ["s"]

    def test_late_registration_starts_immediately(self):
        calls = []

        class Starter(Actor):
            def on_start(self):
                calls.append(self.name)

            def on_message(self, sender, message):
                pass

        rt = LocalRuntime()
        rt.start()
        rt.register(Starter("late"))
        assert calls == ["late"]

    def test_periodic_timer(self):
        class Ticker(Actor):
            def __init__(self):
                super().__init__("ticker")
                self.ticks = 0

            def on_start(self):
                self.handle = self.set_timer(1.0, self._tick, periodic=True)

            def _tick(self):
                self.ticks += 1
                if self.ticks == 3:
                    self.handle.cancel()

            def on_message(self, sender, message):
                pass

        rt = LocalRuntime()
        ticker = Ticker()
        rt.register(ticker)
        rt.run(until_time=10.0)
        assert ticker.ticks == 3

    def test_one_shot_timer(self):
        fired = []

        class Once(Actor):
            def on_start(self):
                self.set_timer(2.0, lambda: fired.append(self.now))

            def on_message(self, sender, message):
                pass

        rt = LocalRuntime()
        rt.register(Once("once"))
        rt.run()
        assert fired == [2.0]

    def test_latency_hook_delays_delivery(self):
        rt = LocalRuntime(latency_fn=lambda s, d, m: 5.0)
        a, b = Echo("a"), Echo("b")
        rt.register_all([a, b])
        rt.start()
        a.send("b", "x")
        rt.run(until_time=4.0)
        assert b.seen == []
        rt.run()
        assert b.seen == [("a", "x")]

    def test_drop_hook_drops(self):
        rt = LocalRuntime(drop_fn=lambda s, d, m: True)
        a, b = Echo("a"), Echo("b")
        rt.register_all([a, b])
        rt.start()
        a.send("b", "x")
        rt.run()
        assert b.seen == []
        assert rt.messages_dropped == 1

    def test_random_latency_is_reproducible(self):
        f1 = random_latency(seed=42)
        f2 = random_latency(seed=42)
        values1 = [f1("a", "b", None) for _ in range(10)]
        values2 = [f2("a", "b", None) for _ in range(10)]
        assert values1 == values2

    def test_random_drops_respects_protection(self):
        drops = random_drops(seed=1, probability=1.0, protected=lambda s, d, m: d == "safe")
        assert drops("a", "other", None)
        assert not drops("a", "safe", None)

    def test_partitioned_blocks_prefix_pairs(self):
        block = partitioned([("A/", "B/")])
        assert block("A/x", "B/y", None)
        assert not block("B/y", "A/x", None)
        assert not block("A/x", "C/z", None)

    def test_run_for_advances_relative_time(self):
        rt = LocalRuntime()
        rt.run_for(3.0)
        rt.run_for(2.0)
        assert rt.now == 5.0


class TestReplace:
    def test_replace_swaps_the_actor(self):
        rt = LocalRuntime()
        old = Echo("node")
        rt.register(old)
        rt.start()
        new = Echo("node")
        rt.replace(new)
        rt.register(Echo("peer"))
        rt.actor("peer").send("node", "hello")
        rt.run()
        assert new.seen == [("peer", "hello")]
        assert old.seen == []

    def test_replace_unknown_actor_rejected(self):
        rt = LocalRuntime()
        with pytest.raises(ConfigurationError):
            rt.replace(Echo("ghost"))

    def test_in_flight_messages_reach_the_replacement(self):
        rt = LocalRuntime(latency_fn=lambda s, d, m: 1.0)
        old = Echo("node")
        sender = Echo("sender")
        rt.register_all([old, sender])
        rt.start()
        sender.send("node", "delayed")   # in flight for 1 simulated second
        new = Echo("node")
        rt.replace(new)                   # crash + recovery before delivery
        rt.run()
        assert new.seen == [("sender", "delayed")]

    def test_replacement_on_start_hook_runs(self):
        calls = []

        class Starter(Actor):
            def on_start(self):
                calls.append(self.name)

            def on_message(self, sender, message):
                pass

        rt = LocalRuntime()
        rt.register(Starter("s"))
        rt.start()
        rt.replace(Starter("s"))
        assert calls == ["s", "s"]
