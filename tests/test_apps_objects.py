"""Tests for Tango-style replicated objects and Hyksos convergent reads."""

import pytest

from repro.apps import (
    Hyksos,
    ReplicatedCounter,
    ReplicatedDict,
    ReplicatedQueue,
    ReplicatedSet,
)
from repro.chariots import ChariotsDeployment
from repro.runtime import LocalRuntime


@pytest.fixture
def geo():
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=8)
    ca = deployment.blocking_client("A")
    cb = deployment.blocking_client("B")
    return runtime, deployment, ca, cb


class TestReplicatedCounter:
    def test_local_increments(self, geo):
        runtime, deployment, ca, cb = geo
        counter = ReplicatedCounter(ca)
        counter.increment(5)
        counter.decrement(2)
        runtime.run_for(0.2)
        counter.sync()
        assert counter.value == 3

    def test_replicas_converge_across_datacenters(self, geo):
        runtime, deployment, ca, cb = geo
        counter_a = ReplicatedCounter(ca)
        counter_b = ReplicatedCounter(cb)
        counter_a.increment(10)
        counter_b.increment(7)
        assert deployment.settle(max_seconds=10)
        counter_a.sync()
        counter_b.sync()
        assert counter_a.value == counter_b.value == 17

    def test_sync_is_exactly_once(self, geo):
        runtime, deployment, ca, cb = geo
        counter = ReplicatedCounter(ca)
        counter.increment()
        runtime.run_for(0.2)
        assert counter.sync() == 1
        assert counter.sync() == 0
        assert counter.value == 1

    def test_late_replica_replays_full_history(self, geo):
        runtime, deployment, ca, cb = geo
        writer = ReplicatedCounter(ca)
        for _ in range(4):
            writer.increment()
        assert deployment.settle(max_seconds=10)
        late = ReplicatedCounter(cb)  # fresh replica, no prior state
        late.sync()
        assert late.value == 4


class TestReplicatedSetAndDict:
    def test_set_operations_in_log_order(self, geo):
        runtime, deployment, ca, cb = geo
        s = ReplicatedSet(ca)
        s.add("x")
        s.add("y")
        s.discard("x")
        runtime.run_for(0.2)
        s.sync()
        assert s.members() == {"y"}

    def test_dict_last_writer_in_log_order(self, geo):
        runtime, deployment, ca, cb = geo
        d = ReplicatedDict(ca)
        d.set("k", 1)
        d.set("k", 2)
        d.delete("k")
        d.set("k", 3)
        runtime.run_for(0.2)
        d.sync()
        assert d.get("k") == 3

    def test_different_objects_are_isolated(self, geo):
        runtime, deployment, ca, cb = geo
        s1 = ReplicatedSet(ca, name="s1")
        s2 = ReplicatedSet(ca, name="s2")
        s1.add("only-in-s1")
        runtime.run_for(0.2)
        s1.sync()
        s2.sync()
        assert "only-in-s1" in s1
        assert "only-in-s1" not in s2

    def test_cross_datacenter_dict_convergence(self, geo):
        runtime, deployment, ca, cb = geo
        da = ReplicatedDict(ca)
        db = ReplicatedDict(cb)
        da.set("from", "A")
        db.set("upto", "B")
        assert deployment.settle(max_seconds=10)
        da.sync()
        db.sync()
        assert da.items() == db.items() == {"from": "A", "upto": "B"}


class TestReplicatedQueue:
    def test_log_arbitrates_claim_races(self, geo):
        runtime, deployment, ca, cb = geo
        producer = ReplicatedQueue(ca, claimant="producer")
        producer.enqueue("job-1", {"work": "x"})
        assert deployment.settle(max_seconds=10)

        worker_a = ReplicatedQueue(ca, claimant="worker-a")
        worker_b = ReplicatedQueue(cb, claimant="worker-b")
        worker_a.sync()
        worker_b.sync()
        # Both workers race to claim the same job.
        assert worker_a.claim_next() == ("job-1", {"work": "x"})
        assert worker_b.claim_next() == ("job-1", {"work": "x"})
        assert deployment.settle(max_seconds=10)
        worker_a.sync()
        worker_b.sync()
        # The log's order decided a single winner, identically everywhere.
        assert worker_a.owner_of("job-1") == worker_b.owner_of("job-1")
        assert worker_a.owner_of("job-1") in ("worker-a", "worker-b")

    def test_claimed_items_leave_pending(self, geo):
        runtime, deployment, ca, cb = geo
        queue = ReplicatedQueue(ca, claimant="w")
        queue.enqueue("j1", 1)
        queue.enqueue("j2", 2)
        runtime.run_for(0.2)
        queue.sync()
        queue.claim_next()
        runtime.run_for(0.2)
        queue.sync()
        assert [i for i, _ in queue.pending_items()] == ["j2"]

    def test_claim_on_empty_queue(self, geo):
        runtime, deployment, ca, cb = geo
        queue = ReplicatedQueue(ca)
        queue.sync()
        assert queue.claim_next() is None


class TestHyksosConvergentReads:
    def test_concurrent_puts_resolve_identically(self, geo):
        """Figure 2's divergence, fixed by the causal+ read: plain gets may
        disagree, convergent gets agree everywhere."""
        runtime, deployment, ca, cb = geo
        kv_a = Hyksos(ca)
        kv_b = Hyksos(cb)
        kv_a.put("x", 10)
        kv_b.put("x", 30)
        assert deployment.settle(max_seconds=10)
        assert kv_a.get_convergent("x") == kv_b.get_convergent("x")

    def test_causally_later_put_always_wins(self, geo):
        runtime, deployment, ca, cb = geo
        kv_a = Hyksos(ca)
        kv_b = Hyksos(cb)
        kv_a.put("k", "first")
        assert deployment.settle(max_seconds=10)
        assert kv_b.get("k") == "first"  # B's session now covers <A,·>
        kv_b.put("k", "second")
        assert deployment.settle(max_seconds=10)
        assert kv_a.get_convergent("k") == "second"
        assert kv_b.get_convergent("k") == "second"

    def test_convergent_read_of_missing_key(self, geo):
        _, _, ca, _ = geo
        assert Hyksos(ca).get_convergent("ghost") is None
