"""Tests for pipeline construction and wiring details (repro.chariots.pipeline)."""


from repro.chariots import ChariotsDeployment, DatacenterPipeline
from repro.core import DeploymentSpec, PipelineConfig


class TestStageCounts:
    def test_spec_controls_machine_counts(self, runtime):
        spec = DeploymentSpec(batchers=3, filters=2, queues=2, maintainers=4,
                              senders=2, receivers=3)
        pipeline = DatacenterPipeline(runtime, "A", ["A"], spec=spec)
        assert len(pipeline.batchers) == 3
        assert len(pipeline.filters) == 2
        assert len(pipeline.queues) == 2
        assert len(pipeline.maintainers) == 4
        assert len(pipeline.senders) == 2
        assert len(pipeline.receivers) == 3

    def test_actor_names_are_namespaced_by_datacenter(self, runtime):
        pipeline = DatacenterPipeline(runtime, "west", ["west"])
        for group in (pipeline.batchers, pipeline.filters, pipeline.queues,
                      pipeline.maintainers, pipeline.senders, pipeline.receivers):
            for actor in group:
                assert actor.name.startswith("west/")

    def test_exactly_one_queue_holds_the_initial_token(self, runtime):
        pipeline = DatacenterPipeline(
            runtime, "A", ["A"], spec=DeploymentSpec(queues=3)
        )
        holders = [q for q in pipeline.queues if q.holds_token]
        assert len(holders) == 1

    def test_token_ring_is_closed(self, runtime):
        pipeline = DatacenterPipeline(
            runtime, "A", ["A"], spec=DeploymentSpec(queues=3)
        )
        names = {q.name for q in pipeline.queues}
        successors = {q.next_queue for q in pipeline.queues}
        assert successors == names  # a permutation cycle

    def test_solo_queue_has_no_successor(self, runtime):
        pipeline = DatacenterPipeline(runtime, "A", ["A"])
        assert pipeline.queues[0].next_queue is None


class TestSenderPartitioning:
    def test_senders_partition_the_maintainers(self, runtime):
        pipeline = DatacenterPipeline(
            runtime, "A", ["A"], spec=DeploymentSpec(maintainers=4, senders=2)
        )
        covered = [m for sender in pipeline.senders for m in sender.maintainers]
        assert sorted(covered) == sorted(m.name for m in pipeline.maintainers)
        # Disjoint coverage: no maintainer shipped twice.
        assert len(covered) == len(set(covered))

    def test_more_senders_than_maintainers_still_covers(self, runtime):
        pipeline = DatacenterPipeline(
            runtime, "A", ["A"], spec=DeploymentSpec(maintainers=1, senders=3)
        )
        covered = {m for sender in pipeline.senders for m in sender.maintainers}
        assert covered == {pipeline.maintainers[0].name}


class TestFilterChampioning:
    def test_each_host_has_a_champion(self, runtime):
        pipeline = DatacenterPipeline(
            runtime, "A", ["A", "B", "C"], spec=DeploymentSpec(filters=2)
        )
        for host in ("A", "B", "C"):
            champion = pipeline.filter_map.filter_for(host, 1)
            assert champion in {f.name for f in pipeline.filters}

    def test_more_filters_than_hosts_slices_by_residue(self, runtime):
        pipeline = DatacenterPipeline(
            runtime, "A", ["A", "B"], spec=DeploymentSpec(filters=4)
        )
        champions = {
            pipeline.filter_map.filter_for("A", toid) for toid in range(1, 9)
        }
        assert len(champions) == 2  # A's records split over its champion group


class TestClientWiring:
    def test_client_names_are_unique(self, runtime):
        deployment = ChariotsDeployment(runtime, ["A"])
        c1 = deployment.client("A")
        c2 = deployment.client("A")
        assert c1.name != c2.name

    def test_client_deps_flow_into_records(self, runtime):
        deployment = ChariotsDeployment(runtime, ["A"], batch_size=4)
        client = deployment.blocking_client("A")
        client.append("base")
        result = client.append("dependent", deps={"X": 7})
        entry = client.read_lid(result.lid).entries[0]
        assert entry.record.dep_vector()["X"] == 7

    def test_clients_spread_over_batchers(self, runtime):
        deployment = ChariotsDeployment(
            runtime, ["A"], spec=DeploymentSpec(batchers=2), batch_size=4
        )
        clients = [deployment.blocking_client("A") for _ in range(2)]
        for client in clients:
            client.append("x")
        runtime.run_for(0.1)
        batched = [b.records_batched for b in deployment["A"].batchers]
        assert all(count > 0 for count in batched)


class TestReceiverFanout:
    def test_receivers_round_robin_over_batchers(self, runtime):
        deployment = ChariotsDeployment(
            runtime,
            ["A", "B"],
            specs={
                "A": DeploymentSpec(batchers=2, receivers=1),
                "B": DeploymentSpec(),
            },
            batch_size=4,
        )
        cb = deployment.blocking_client("B")
        for i in range(6):
            cb.append(f"b{i}")
            deployment.settle(max_seconds=5)  # one shipment per append
        batched = [b.records_batched for b in deployment["A"].batchers]
        assert all(count > 0 for count in batched)


class TestDeploymentSpecs:
    def test_per_datacenter_specs(self, runtime):
        deployment = ChariotsDeployment(
            runtime,
            ["A", "B"],
            specs={
                "A": DeploymentSpec(maintainers=3),
                "B": DeploymentSpec(maintainers=1),
            },
        )
        assert len(deployment["A"].maintainers) == 3
        assert len(deployment["B"].maintainers) == 1

    def test_config_objects_are_shared_downward(self, runtime):
        config = PipelineConfig(token_hold_interval=0.123)
        deployment = ChariotsDeployment(runtime, ["A"], pipeline_config=config)
        assert deployment["A"].queues[0].config.token_hold_interval == 0.123
