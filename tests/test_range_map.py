"""Tests for deterministic LId ownership (repro.flstore.range_map)."""

import pytest

from repro.core import ConfigurationError
from repro.flstore import OwnershipPlan, RangeEpoch


class TestRangeEpoch:
    def test_round_robin_ownership_matches_figure_4(self):
        # Figure 4: batch size 1000, maintainers A, B, C.
        epoch = RangeEpoch(0, 1000, ("A", "B", "C"))
        assert epoch.owner(0) == "A"
        assert epoch.owner(999) == "A"
        assert epoch.owner(1000) == "B"
        assert epoch.owner(2999) == "C"
        assert epoch.owner(3000) == "A"  # round 2 wraps back

    def test_next_owned_within_round(self):
        epoch = RangeEpoch(0, 10, ("A", "B"))
        assert epoch.next_owned("A", 0) == 1
        assert epoch.next_owned("A", 8) == 9

    def test_next_owned_jumps_rounds(self):
        epoch = RangeEpoch(0, 10, ("A", "B"))
        assert epoch.next_owned("A", 9) == 20
        assert epoch.next_owned("B", -1) == 10

    def test_next_owned_for_unknown_maintainer(self):
        epoch = RangeEpoch(0, 10, ("A",))
        assert epoch.next_owned("Z", 0) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RangeEpoch(-1, 10, ("A",))
        with pytest.raises(ConfigurationError):
            RangeEpoch(0, 0, ("A",))
        with pytest.raises(ConfigurationError):
            RangeEpoch(0, 10, ())
        with pytest.raises(ConfigurationError):
            RangeEpoch(0, 10, ("A", "A"))


class TestOwnershipPlan:
    def test_single_epoch_ownership(self):
        plan = OwnershipPlan(["m0", "m1"], batch_size=5)
        assert [plan.owner(l) for l in (0, 4, 5, 9, 10)] == ["m0", "m0", "m1", "m1", "m0"]

    def test_first_owned_lid(self):
        plan = OwnershipPlan(["m0", "m1", "m2"], batch_size=5)
        assert plan.first_owned_lid("m0") == 0
        assert plan.first_owned_lid("m1") == 5
        assert plan.first_owned_lid("m2") == 10

    def test_owned_lids_iteration(self):
        plan = OwnershipPlan(["m0", "m1"], batch_size=2)
        assert list(plan.owned_lids("m0", 9)) == [0, 1, 4, 5, 8, 9]
        assert list(plan.owned_lids("m1", 9)) == [2, 3, 6, 7]

    def test_every_lid_has_exactly_one_owner(self):
        plan = OwnershipPlan(["a", "b", "c"], batch_size=3)
        owned = {name: set(plan.owned_lids(name, 50)) for name in ("a", "b", "c")}
        union = set().union(*owned.values())
        assert union == set(range(51))
        assert sum(len(s) for s in owned.values()) == 51

    def test_negative_lid_rejected(self):
        plan = OwnershipPlan(["m0"], batch_size=5)
        with pytest.raises(ConfigurationError):
            plan.owner(-1)


class TestEpochJournal:
    def make_plan(self):
        plan = OwnershipPlan(["m0", "m1"], batch_size=5)
        plan.add_epoch(20, ["m0", "m1", "m2"], batch_size=5)
        return plan

    def test_old_records_stay_with_old_owners(self):
        plan = self.make_plan()
        assert plan.owner(0) == "m0"
        assert plan.owner(5) == "m1"
        assert plan.owner(19) == "m1"

    def test_new_epoch_takes_effect_at_boundary(self):
        plan = self.make_plan()
        assert plan.owner(20) == "m0"
        assert plan.owner(25) == "m1"
        assert plan.owner(30) == "m2"
        assert plan.owner(35) == "m0"

    def test_next_owned_crosses_epoch_boundary(self):
        plan = self.make_plan()
        # m0's last owned lid under epoch 1 is 14 (round at 10-14).
        assert plan.next_owned_lid("m0", 14) == 20

    def test_new_maintainer_first_lid_is_in_new_epoch(self):
        plan = self.make_plan()
        assert plan.first_owned_lid("m2") == 30

    def test_epoch_must_be_in_future(self):
        plan = OwnershipPlan(["m0"], batch_size=5)
        with pytest.raises(ConfigurationError):
            plan.add_epoch(0, ["m0", "m1"])

    def test_epoch_must_align_with_rounds(self):
        plan = OwnershipPlan(["m0"], batch_size=5)
        with pytest.raises(ConfigurationError):
            plan.add_epoch(7, ["m0", "m1"])

    def test_maintainers_union_over_journal(self):
        plan = self.make_plan()
        assert plan.maintainers() == ["m0", "m1", "m2"]

    def test_decommissioned_maintainer_has_no_future_lids(self):
        plan = OwnershipPlan(["m0", "m1"], batch_size=5)
        plan.add_epoch(10, ["m0"])  # m1 retired
        assert plan.next_owned_lid("m1", 5) == 6  # still owns the tail of its round
        assert plan.next_owned_lid("m1", 9) is None
        assert plan.owner(15) == "m0"

    def test_epoch_for(self):
        plan = self.make_plan()
        assert plan.epoch_for(0).start_lid == 0
        assert plan.epoch_for(19).start_lid == 0
        assert plan.epoch_for(20).start_lid == 20

    def test_batch_size_can_change_between_epochs(self):
        plan = OwnershipPlan(["m0", "m1"], batch_size=5)
        plan.add_epoch(10, ["m0", "m1"], batch_size=3)
        assert plan.owner(10) == "m0"
        assert plan.owner(13) == "m1"
        assert plan.owner(16) == "m0"
