"""Durability and crash recovery (repro.flstore.journal)."""

import os
import pickle


from repro.flstore import (
    FileJournal,
    MaintainerCore,
    MemoryJournal,
    OwnershipPlan,
    recover_maintainer_core,
)

from conftest import chain, rec


def make_plan(n=2, batch=5):
    return OwnershipPlan([f"m{i}" for i in range(n)], batch_size=batch)


class TestMemoryJournal:
    def test_records_every_placement(self):
        plan = make_plan()
        journal = MemoryJournal()
        core = MaintainerCore("m0", plan, journal=journal)
        core.append(chain("c", 4))
        assert len(journal) == 4

    def test_replay_order_matches_placement_order(self):
        plan = make_plan()
        journal = MemoryJournal()
        core = MaintainerCore("m0", plan, journal=journal)
        core.append(chain("c", 3))
        lids = [lid for lid, _ in journal.replay()]
        assert lids == [0, 1, 2]

    def test_truncate_compacts(self):
        plan = make_plan()
        journal = MemoryJournal()
        core = MaintainerCore("m0", plan, journal=journal)
        core.append(chain("c", 4))
        assert journal.truncate_below(2) == 2
        assert [lid for lid, _ in journal.replay()] == [2, 3]


class TestCrashRecovery:
    def test_recovered_core_has_identical_state(self):
        plan = make_plan(batch=3)
        journal = MemoryJournal()
        core = MaintainerCore("m0", plan, journal=journal)
        core.append(chain("c", 7))  # crosses a round boundary (0-2, 6-8)
        recovered = recover_maintainer_core("m0", plan, journal.replay())
        assert recovered.stored_count() == core.stored_count()
        assert recovered.next_unassigned == core.next_unassigned
        assert [e.lid for e in recovered.stored_entries()] == [
            e.lid for e in core.stored_entries()
        ]

    def test_recovered_core_resumes_without_reusing_lids(self):
        plan = make_plan(batch=3)
        journal = MemoryJournal()
        core = MaintainerCore("m0", plan, journal=journal)
        before = {r.lid for r in core.append(chain("c", 5))}
        recovered = recover_maintainer_core("m0", plan, journal.replay())
        after = {r.lid for r in recovered.append(chain("d", 3))}
        assert not (before & after)

    def test_recovery_restores_out_of_order_placements(self):
        plan = make_plan(batch=5)
        journal = MemoryJournal()
        core = MaintainerCore("m0", plan, journal=journal)
        core.place(3, rec("A", 1))  # early arrival, cursor still at 0
        core.place(0, rec("A", 2))
        recovered = recover_maintainer_core("m0", plan, journal.replay())
        assert recovered.next_unassigned == 1
        assert recovered.try_get(3) is not None

    def test_recovery_chains_into_a_new_journal(self):
        plan = make_plan()
        first = MemoryJournal()
        core = MaintainerCore("m0", plan, journal=first)
        core.append(chain("c", 3))
        second = MemoryJournal()
        recovered = recover_maintainer_core(
            "m0", plan, first.replay(), new_journal=second
        )
        assert len(second) == 3  # replayed placements re-journal
        recovered.append(chain("d", 1))
        assert len(second) == 4

    def test_recovered_maintainer_serves_reads(self):
        plan = make_plan()
        journal = MemoryJournal()
        core = MaintainerCore("m0", plan, journal=journal)
        core.append([rec("c", 1, body="survives")])
        recovered = recover_maintainer_core("m0", plan, journal.replay())
        assert recovered.get(0).record.body == "survives"


class TestFileJournal:
    def test_round_trip_through_disk(self, tmp_path):
        path = os.path.join(tmp_path, "m0.journal")
        plan = make_plan()
        journal = FileJournal(path)
        core = MaintainerCore("m0", plan, journal=journal)
        core.append([rec("c", i + 1, body=f"b{i}") for i in range(5)])
        journal.close()

        restored = FileJournal(path)
        recovered = recover_maintainer_core("m0", plan, restored.replay())
        restored.close()
        assert recovered.stored_count() == 5
        assert recovered.get(0).record.body == "b0"

    def test_torn_tail_is_skipped(self, tmp_path):
        path = os.path.join(tmp_path, "torn.journal")
        plan = make_plan()
        journal = FileJournal(path)
        core = MaintainerCore("m0", plan, journal=journal)
        core.append(chain("c", 3))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lid": 3, "record": {"host": "c", "to')  # crash mid-write

        restored = FileJournal(path)
        recovered = recover_maintainer_core("m0", plan, restored.replay())
        restored.close()
        assert recovered.stored_count() == 3

    def test_empty_journal_recovers_empty_core(self, tmp_path):
        path = os.path.join(tmp_path, "empty.journal")
        journal = FileJournal(path)
        recovered = recover_maintainer_core("m0", make_plan(), journal.replay())
        journal.close()
        assert recovered.stored_count() == 0
        assert recovered.next_unassigned == 0

    def test_pickle_round_trip_keeps_writing_to_the_same_file(self, tmp_path):
        """The supervision contract: a FileJournal shipped to a worker
        process (pickled) reopens its file in append mode, and the parent's
        replay of that same path sees every worker-side write — each entry
        is flushed as it lands."""
        path = os.path.join(tmp_path, "shipped.journal")
        plan = make_plan()
        journal = FileJournal(path)
        core = MaintainerCore("m0", plan, journal=journal)
        core.append(chain("c", 2))

        shipped = pickle.loads(pickle.dumps(journal))  # the worker's copy
        worker_core = recover_maintainer_core("m0", plan, journal.replay())
        worker_core.set_journal(shipped)
        worker_core.append(chain("d", 3))

        parent_view = FileJournal(path)
        lids = [lid for lid, _ in parent_view.replay()]
        parent_view.close()
        shipped.close()
        journal.close()
        assert lids == [0, 1, 2, 3, 4]

    def test_crash_after_partial_bulk_append_loses_and_duplicates_nothing(
        self, tmp_path
    ):
        """Crash mid-bulk: some placements of a batch hit the journal, the
        rest die with the process.  Recovery must keep every journaled LId
        exactly once and resume assignment past them — re-appending the
        batch's tail produces a dense, duplicate-free sequence."""
        path = os.path.join(tmp_path, "partial.journal")
        plan = make_plan(n=1, batch=5)  # sole owner: its LIds are dense
        journal = FileJournal(path)
        core = MaintainerCore("m0", plan, journal=journal)
        batch = chain("c", 8)
        core.append(batch[:5])  # the bulk append "crashes" after 5 of 8
        journal.close()  # SIGKILL: nothing after this line survived

        restored = FileJournal(path)
        recovered = recover_maintainer_core("m0", plan, restored.replay())
        recovered.set_journal(restored)
        survived = [e.lid for e in recovered.stored_entries()]
        recovered.append(batch[5:])  # the client retries the lost tail
        lids = [e.lid for e in recovered.stored_entries()]
        restored.close()
        assert survived == [0, 1, 2, 3, 4]
        assert len(lids) == len(set(lids)) == 8
        assert lids == list(range(lids[0], lids[0] + len(lids)))

    def test_restart_replays_from_the_original_journal_object(self, tmp_path):
        """Reusing the crashed maintainer's own journal for recovery: replay
        with ``new_journal=None`` and attach it afterwards, the discipline
        ``ChariotsDeployment.recover_maintainer`` follows (feeding a journal
        its own replay would loop it back into itself)."""
        path = os.path.join(tmp_path, "reuse.journal")
        plan = make_plan(n=1)
        journal = FileJournal(path)
        core = MaintainerCore("m0", plan, journal=journal)
        core.append(chain("c", 4))

        recovered = recover_maintainer_core("m0", plan, journal.replay())
        recovered.set_journal(journal)
        recovered.append(chain("d", 2))
        lids = [lid for lid, _ in journal.replay()]
        journal.close()
        assert lids == [0, 1, 2, 3, 4, 5]
        assert len(lids) == len(set(lids))

    def test_tags_survive_the_disk_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "tags.journal")
        plan = make_plan()
        journal = FileJournal(path)
        core = MaintainerCore("m0", plan, journal=journal)
        core.append([rec("c", 1, tags={"key": "value"})])
        journal.close()
        restored = FileJournal(path)
        recovered = recover_maintainer_core("m0", plan, restored.replay())
        restored.close()
        assert recovered.get(0).record.tag_dict() == {"key": "value"}
