"""Validation tests for configuration objects (repro.core.config)."""

import pytest

from repro.core import (
    PRIVATE_CLOUD,
    PUBLIC_CLOUD,
    ConfigurationError,
    DeploymentSpec,
    FLStoreConfig,
    MachineProfile,
    NetworkProfile,
    PipelineConfig,
    WorkloadConfig,
)


class TestFLStoreConfig:
    def test_defaults_match_paper(self):
        config = FLStoreConfig()
        assert config.batch_size == 1000  # Figure 4's example round size

    def test_batch_size_positive(self):
        with pytest.raises(ConfigurationError):
            FLStoreConfig(batch_size=0)

    def test_gossip_interval_positive(self):
        with pytest.raises(ConfigurationError):
            FLStoreConfig(gossip_interval=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            FLStoreConfig().batch_size = 5


class TestPipelineConfig:
    def test_flush_threshold_positive(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(batcher_flush_threshold=0)

    def test_token_deferred_limit_non_negative(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(token_deferred_limit=-1)

    def test_zero_deferred_limit_allowed(self):
        assert PipelineConfig(token_deferred_limit=0).token_deferred_limit == 0


class TestMachineProfile:
    def test_per_record_cost_positive(self):
        with pytest.raises(ConfigurationError):
            MachineProfile(per_record_cost=0)

    def test_nic_bandwidth_positive(self):
        with pytest.raises(ConfigurationError):
            MachineProfile(nic_bandwidth_bytes=0)

    def test_overload_cap_at_least_one(self):
        with pytest.raises(ConfigurationError):
            MachineProfile(overload_cap=0.9)

    def test_private_cloud_peaks_near_132k(self):
        assert 1.0 / PRIVATE_CLOUD.per_record_cost == pytest.approx(132_000)

    def test_public_cloud_degrades_to_about_120k(self):
        degraded = (1.0 / PUBLIC_CLOUD.per_record_cost) / PUBLIC_CLOUD.overload_cap
        assert 115_000 < degraded < 125_000  # Figure 7's overloaded plateau


class TestNetworkProfile:
    def test_lan_latency_is_half_rtt(self):
        net = NetworkProfile(lan_rtt=0.0002)
        assert net.lan_latency == pytest.approx(0.0001)

    def test_default_lan_rtt_matches_paper(self):
        assert NetworkProfile().lan_rtt == pytest.approx(0.00015)  # §7: 0.15 ms


class TestWorkloadConfig:
    def test_record_size_default_matches_paper(self):
        assert WorkloadConfig().record_size == 512

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(record_size=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(target_throughput=0)


class TestDeploymentSpec:
    def test_every_stage_needs_a_machine(self):
        with pytest.raises(ConfigurationError):
            DeploymentSpec(filters=0)

    def test_uniform(self):
        spec = DeploymentSpec.uniform(3)
        assert spec.batchers == spec.filters == spec.queues == spec.maintainers == 3
        assert spec.clients == 3

    def test_uniform_with_client_override(self):
        spec = DeploymentSpec.uniform(2, clients=5)
        assert spec.clients == 5
        assert spec.senders == 2
