"""Unit tests for causal-ordering primitives (repro.core.causality)."""

import pytest

from repro.core import CausalFrontier, DeferredQueue, causal_order_respected
from repro.core.causality import (
    first_violation,
    happened_before,
    topological_causal_sort,
)
from repro.core.errors import DuplicateRecordError
from repro.core.record import RecordId

from conftest import chain, rec


class TestCausalFrontier:
    def test_empty_frontier_knows_nothing(self):
        frontier = CausalFrontier()
        assert frontier.max_toid("A") == 0
        assert not frontier.known(RecordId("A", 1))

    def test_advance_marks_known(self):
        frontier = CausalFrontier()
        frontier.advance(rec("A", 1))
        assert frontier.known(RecordId("A", 1))
        assert frontier.max_toid("A") == 1

    def test_first_record_admissible(self):
        assert CausalFrontier().admissible(rec("A", 1))

    def test_out_of_order_same_host_not_admissible(self):
        assert not CausalFrontier().admissible(rec("A", 2))

    def test_cross_host_dependency_blocks_admission(self):
        frontier = CausalFrontier()
        record = rec("B", 1, deps={"A": 2})
        assert not frontier.admissible(record)
        frontier.advance(rec("A", 1))
        frontier.advance(rec("A", 2))
        assert frontier.admissible(record)

    def test_duplicate_detection(self):
        frontier = CausalFrontier()
        frontier.advance(rec("A", 1))
        assert frontier.is_duplicate(rec("A", 1))
        assert not frontier.is_duplicate(rec("A", 2))

    def test_snapshot_is_independent_copy(self):
        frontier = CausalFrontier()
        frontier.advance(rec("A", 1))
        snap = frontier.snapshot()
        frontier.advance(rec("A", 2))
        assert snap == {"A": 1}

    def test_dominates(self):
        low = CausalFrontier({"A": 1})
        high = CausalFrontier({"A": 2, "B": 1})
        assert high.dominates(low)
        assert not low.dominates(high)

    def test_equality_ignores_zero_entries(self):
        assert CausalFrontier({"A": 1, "B": 0}) == CausalFrontier({"A": 1})

    def test_copy_is_detached(self):
        frontier = CausalFrontier({"A": 1})
        clone = frontier.copy()
        frontier.advance(rec("A", 2))
        assert clone.max_toid("A") == 1


class TestDeferredQueue:
    def test_drain_releases_in_causal_order(self):
        queue = DeferredQueue()
        records = chain("A", 3)
        for record in reversed(records):
            queue.push(record)
        frontier = CausalFrontier()
        released = queue.drain(frontier)
        assert [r.toid for r in released] == [1, 2, 3]
        assert len(queue) == 0

    def test_unsatisfiable_records_stay(self):
        queue = DeferredQueue()
        queue.push(rec("A", 2))  # missing <A,1>
        frontier = CausalFrontier()
        assert queue.drain(frontier) == []
        assert len(queue) == 1

    def test_cross_host_unlocking(self):
        queue = DeferredQueue()
        queue.push(rec("B", 1, deps={"A": 1}))
        queue.push(rec("A", 1))
        frontier = CausalFrontier()
        released = queue.drain(frontier)
        assert [r.rid for r in released] == [RecordId("A", 1), RecordId("B", 1)]

    def test_duplicate_push_rejected(self):
        queue = DeferredQueue()
        queue.push(rec("A", 1))
        with pytest.raises(DuplicateRecordError):
            queue.push(rec("A", 1))

    def test_contains(self):
        queue = DeferredQueue()
        queue.push(rec("A", 2))
        assert RecordId("A", 2) in queue
        assert RecordId("A", 1) not in queue

    def test_already_incorporated_records_dropped_on_drain(self):
        queue = DeferredQueue()
        queue.push(rec("A", 1))
        frontier = CausalFrontier()
        frontier.advance(rec("A", 1))  # incorporated through another path
        assert queue.drain(frontier) == []
        assert len(queue) == 0

    def test_peek_all_sorted(self):
        queue = DeferredQueue()
        queue.push(rec("B", 2))
        queue.push(rec("A", 3))
        assert [r.rid for r in queue.peek_all()] == [RecordId("A", 3), RecordId("B", 2)]


class TestHappenedBefore:
    def test_same_host_total_order(self):
        assert happened_before(rec("A", 1), rec("A", 2))
        assert not happened_before(rec("A", 2), rec("A", 1))

    def test_cross_host_via_deps(self):
        earlier = rec("A", 5)
        later = rec("B", 1, deps={"A": 5})
        assert happened_before(earlier, later)
        assert not happened_before(later, earlier)

    def test_concurrent_records(self):
        a = rec("A", 1)
        b = rec("B", 1)
        assert not happened_before(a, b)
        assert not happened_before(b, a)


class TestCausalOrderRespected:
    def test_single_host_in_order(self):
        assert causal_order_respected(chain("A", 5))

    def test_single_host_out_of_order(self):
        records = chain("A", 3)
        assert not causal_order_respected([records[1], records[0], records[2]])

    def test_interleaving_of_independent_hosts(self):
        a1, a2 = chain("A", 2)
        b1 = rec("B", 1)
        assert causal_order_respected([a1, b1, a2])
        assert causal_order_respected([b1, a1, a2])

    def test_dependency_must_precede(self):
        a1 = rec("A", 1)
        b1 = rec("B", 1, deps={"A": 1})
        assert causal_order_respected([a1, b1])
        assert not causal_order_respected([b1, a1])

    def test_transitive_violation_detected(self):
        a1 = rec("A", 1)
        b1 = rec("B", 1, deps={"A": 1})
        c1 = rec("C", 1, deps={"B": 1})
        assert causal_order_respected([a1, b1, c1])
        assert not causal_order_respected([c1, a1, b1])

    def test_first_violation_names_the_offender(self):
        a1 = rec("A", 1)
        b1 = rec("B", 1, deps={"A": 1})
        assert first_violation([b1, a1]) == RecordId("B", 1)
        assert first_violation([a1, b1]) is None


class TestTopologicalCausalSort:
    def test_sorts_shuffled_input(self):
        a = chain("A", 3)
        b = [rec("B", 1, deps={"A": 2})]
        ordered = topological_causal_sort([b[0], a[2], a[0], a[1]])
        assert causal_order_respected(ordered)
        assert {r.rid for r in ordered} == {x.rid for x in a + b}

    def test_missing_dependency_raises(self):
        with pytest.raises(ValueError):
            topological_causal_sort([rec("A", 2)])

    def test_deterministic(self):
        records = [rec("B", 1), rec("A", 1)]
        first = topological_causal_sort(records)
        second = topological_causal_sort(list(reversed(records)))
        assert [r.rid for r in first] == [r.rid for r in second]
