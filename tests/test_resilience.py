"""Resilience policies: retry/backoff, circuit breakers, supervised recovery.

Covers the shared :mod:`repro.core.retry` mechanisms, the sender's backoff /
circuit-breaker retransmission schedule, supervised journal-based maintainer
restart (no lost or duplicated LIds), partition → heal → ATable-driven
catch-up, and the asyncio client's retry behaviour against an adversarial
server (``NetChaos``).
"""

import asyncio
import random

import pytest

from repro.chaos import FaultPlan, NetChaos
from repro.chariots import ChariotsDeployment
from repro.core import (
    CircuitBreaker,
    PipelineConfig,
    RetryPolicy,
    causal_order_respected,
)
from repro.core.errors import (
    AppendDeferred,
    ChariotsError,
    CircuitOpenError,
    ConfigurationError,
)
from repro.net.client import AsyncFLStoreClient
from repro.net.deploy import FLStoreNetDeployment
from repro.runtime import LocalRuntime, Supervisor


def run(coro):
    return asyncio.run(coro)


#: Fast retransmissions / breaker probes for seconds-scale tests.
FAST = PipelineConfig(
    retransmit_base=0.1,
    retransmit_max=0.8,
    breaker_failure_threshold=3,
    breaker_reset_timeout=0.5,
)


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.8, multiplier=2.0, jitter=0.0)
        assert [policy.delay(i) for i in range(5)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8, 0.8]
        )

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.1, jitter=0.2)
        rng = random.Random(7)
        for _ in range(100):
            assert 0.08 <= policy.delay(0, rng) <= 0.12

    def test_jitter_deterministic_under_seeded_rng(self):
        policy = RetryPolicy(jitter=0.3)
        a = [policy.delay(i, random.Random(5)) for i in range(4)]
        b = [policy.delay(i, random.Random(5)) for i in range(4)]
        assert a == b

    def test_delays_yields_one_wait_per_retry(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        assert len(list(policy.delays())) == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": 0.0},
            {"base_delay": 0.2, "max_delay": 0.1},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"max_attempts": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_config_derives_retransmit_policy(self):
        config = PipelineConfig(
            retransmit_base=0.2, retransmit_max=1.6, retransmit_multiplier=3.0
        )
        policy = config.retransmit_policy()
        assert policy.base_delay == 0.2
        assert policy.max_delay == 1.6
        assert policy.multiplier == 3.0
        assert policy.max_attempts > 1000  # senders retransmit until acked


# --------------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_closed_allows_traffic(self):
        breaker = CircuitBreaker()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(0.0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0)
        for t in range(2):
            breaker.record_failure(float(t))
            assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(2.5)

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_after_reset_timeout(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.5)
        assert breaker.allow(1.0)  # the single probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.probes == 1
        assert not breaker.allow(1.0)  # probe already in flight

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_success(1.1)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(1.1)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.1)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        assert not breaker.allow(1.5)  # cooldown restarted at 1.1
        assert breaker.allow(2.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout=0.0)


# --------------------------------------------------------------------------- #
# Sender retransmission: backoff schedule + per-peer breaker
# --------------------------------------------------------------------------- #


class TestSenderBackoffAndBreaker:
    def build(self):
        """Two datacenters; ack dropping is toggled by the returned dict, and
        every record-carrying shipment arrival time is logged."""
        state = {"drop_acks": False, "runtime": None}
        times = []

        def hook(src, dst, message):
            name = type(message).__name__
            if name == "ReplicationShipment" and getattr(message, "ship_seq", 0) > 0:
                times.append(state["runtime"].now)
            return name == "ShipmentAck" and state["drop_acks"]

        runtime = LocalRuntime(drop_fn=hook)
        state["runtime"] = runtime
        deployment = ChariotsDeployment(
            runtime, ["A", "B"], batch_size=4, pipeline_config=FAST
        )
        return runtime, deployment, state, times

    def test_retransmission_gaps_grow_exponentially(self):
        runtime, deployment, state, times = self.build()
        client = deployment.blocking_client("A")
        state["drop_acks"] = True
        client.append("unacked")
        runtime.run_for(1.2)
        # First transmission + retries with growing waits (0.1, ~0.2, ~0.4 ...).
        assert len(times) >= 3
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps[1] > gaps[0] * 1.3
        if len(gaps) >= 3:
            assert gaps[2] > gaps[1] * 1.3

    def test_breaker_opens_after_repeated_timeouts_then_heals(self):
        runtime, deployment, state, times = self.build()
        client = deployment.blocking_client("A")
        state["drop_acks"] = True
        client.append("buffered")
        runtime.run_for(4.0)
        sender = deployment["A"].senders[0]
        breaker = sender.breaker("B")
        assert breaker.opens >= 1  # peer declared down after 3 timeouts
        transmissions_down = len(times)

        state["drop_acks"] = False  # the "partition" heals
        assert deployment.settle(max_seconds=30)
        # settle() tracks incorporation, not sender bookkeeping: the records
        # already reached B during the outage, so convergence can precede the
        # final probe/ack cycle.  One more retry period closes the breaker.
        runtime.run_for(2.0)
        assert breaker.state == CircuitBreaker.CLOSED
        assert sender.buffered_records() == 0  # acked everywhere, compacted
        assert len(times) > transmissions_down  # a probe/retransmit got through
        a_set = {e.rid for e in deployment["A"].all_entries()}
        b_set = {e.rid for e in deployment["B"].all_entries()}
        assert a_set == b_set and a_set

    def test_open_breaker_stops_retransmissions(self):
        runtime, deployment, state, times = self.build()
        client = deployment.blocking_client("A")
        state["drop_acks"] = True
        client.append("shed")
        runtime.run_for(4.0)
        # While OPEN the sender must not hammer the peer: during each 0.5 s
        # cooldown no transmission happens, so the send rate collapses well
        # below the one-per-tick (0.02 s) rate a naive retry loop would show.
        assert len(times) < 15


# --------------------------------------------------------------------------- #
# Supervised recovery: crash mid-batch, partition catch-up, degraded mode
# --------------------------------------------------------------------------- #


class TestSupervisedRecovery:
    def test_maintainer_crash_mid_batch_no_lost_or_duplicate_lids(self):
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime, ["A", "B"], batch_size=4, pipeline_config=FAST
        )
        supervisor = deployment.supervise(check_interval=0.02)
        client = deployment.blocking_client("A")
        pre = [client.append(f"pre{i}") for i in range(6)]
        runtime.crash("A/store/0")  # mid-batch: LIds 4..7 partially placed
        post = [client.append(f"post{i}") for i in range(6)]
        assert deployment.settle(max_seconds=60)

        assert supervisor.restarts["A/store/0"] >= 1
        entries = deployment["A"].all_entries()
        lids = [e.lid for e in entries]
        assert len(lids) == len(set(lids))  # no LId duplicated
        bodies = sorted(e.record.body for e in entries)
        expected = sorted([f"pre{i}" for i in range(6)] + [f"post{i}" for i in range(6)])
        assert bodies == expected  # no record lost
        assert causal_order_respected([e.record for e in entries])
        # The remote datacenter observed the same log.
        assert {e.rid for e in deployment["B"].all_entries()} == {
            e.rid for e in entries
        }

    def test_supervisor_restarts_repeated_crashes(self):
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime, ["A"], batch_size=4, pipeline_config=FAST
        )
        supervisor = deployment.supervise(check_interval=0.02)
        client = deployment.blocking_client("A")
        for round_no in range(3):
            client.append(f"r{round_no}")
            runtime.crash("A/store/0")
            runtime.run_for(0.1)  # supervisor sweep restarts it
            assert not runtime.is_crashed("A/store/0")
        assert supervisor.restarts["A/store/0"] == 3
        assert deployment.settle(max_seconds=30)
        assert deployment["A"].total_records() == 3

    def test_unsupervised_actor_stays_down(self):
        runtime = LocalRuntime()
        supervisor = runtime.register(Supervisor(check_interval=0.01))
        from repro.runtime import Actor

        class Idle(Actor):
            def on_message(self, sender, message):
                pass

        runtime.register(Idle("loner"))
        runtime.start()
        runtime.crash("loner")
        runtime.run_for(0.1)
        assert runtime.is_crashed("loner")  # no factory registered
        assert not supervisor.restarts

    def test_partition_heal_atable_catch_up(self):
        plan = FaultPlan(seed=5).partition("A/", "B/", start=1.0, end=3.0)
        runtime = LocalRuntime(chaos=plan)
        deployment = ChariotsDeployment(
            runtime, ["A", "B"], batch_size=4, pipeline_config=FAST
        )
        client = deployment.blocking_client("A")
        pre = [client.append(f"pre{i}") for i in range(4)]
        assert deployment.settle(max_seconds=20)
        pre_set = {e.rid for e in deployment["B"].all_entries()}
        assert len(pre_set) == 4

        # Inside the partition window: local appends stay available ...
        runtime.run_for(max(0.0, 1.1 - runtime.now))
        during = [client.append(f"during{i}") for i in range(4)]
        assert len({r.lid for r in during}) == 4
        runtime.run_for(0.8)
        # ... and the partitioned peer keeps serving its pre-failure log.
        assert {e.rid for e in deployment["B"].all_entries()} == pre_set
        assert plan.stats["partitioned"] > 0

        # Heal: the sender's breaker probes, retransmits, and the Awareness
        # Table frontiers re-converge with every record exactly once.
        assert deployment.settle(max_seconds=60)
        b_entries = deployment["B"].all_entries()
        assert len(b_entries) == 8
        assert len({e.rid for e in b_entries}) == 8
        assert causal_order_respected([e.record for e in b_entries])
        assert (
            deployment["B"].frontier().get("A")
            == deployment["A"].frontier().get("A")
        )

    def test_crash_and_partition_together(self):
        """Degraded mode everywhere at once: B partitioned while A's only
        maintainer is down — supervision plus parking still converge."""
        plan = (
            FaultPlan(seed=6)
            .crash("A/store/0", at=0.5)
            .partition("A/", "B/", start=0.5, end=2.0)
        )
        runtime = LocalRuntime(chaos=plan)
        deployment = ChariotsDeployment(
            runtime, ["A", "B"], batch_size=4, pipeline_config=FAST
        )
        supervisor = deployment.supervise(check_interval=0.02)
        clients = {dc: deployment.blocking_client(dc) for dc in "AB"}
        for i in range(4):
            clients["A"].append(f"a{i}")
            clients["B"].append(f"b{i}")
        assert deployment.settle(max_seconds=60)
        assert {e.rid for e in deployment["A"].all_entries()} == {
            e.rid for e in deployment["B"].all_entries()
        }
        assert deployment["A"].total_records() == 8


# --------------------------------------------------------------------------- #
# asyncio client: retry policy, typed deferred appends, circuit breaker
# --------------------------------------------------------------------------- #


async def _client_for(deployment, **kwargs):
    client = AsyncFLStoreClient(deployment.controller.address, **kwargs)
    await client.connect()
    return client


class TestNetResilience:
    def test_reads_retry_through_dropped_requests(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=1, n_indexers=0, batch_size=4)
            await deployment.start()
            try:
                client = await _client_for(
                    deployment,
                    retry_policy=RetryPolicy(
                        base_delay=0.02, max_delay=0.1, max_attempts=6, op_timeout=0.3
                    ),
                    breaker_failure_threshold=10,
                )
                result = await client.append("v0")
                chaos = NetChaos(
                    seed=2, drop_probability=1.0, max_faults=2,
                    request_types=["read_lid"],
                )
                deployment.maintainers[0].set_chaos(chaos)
                entry = await client.read_lid(result.lid)  # 2 timeouts, then ok
                assert entry.record.body == "v0"
                assert chaos.stats["drop"] == 2
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_reads_retry_through_disconnects(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=1, n_indexers=0, batch_size=4)
            await deployment.start()
            try:
                client = await _client_for(
                    deployment,
                    retry_policy=RetryPolicy(
                        base_delay=0.01, max_delay=0.05, max_attempts=5, op_timeout=2.0
                    ),
                )
                result = await client.append("v0")
                chaos = NetChaos(
                    seed=3, disconnect_probability=1.0, max_faults=1,
                    request_types=["read_lid"],
                )
                deployment.maintainers[0].set_chaos(chaos)
                entry = await client.read_lid(result.lid)
                assert entry.record.body == "v0"
                assert chaos.stats["disconnect"] == 1
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_append_deferred_is_typed_and_retried(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=1, n_indexers=0, batch_size=4)
            await deployment.start()
            try:
                client = await _client_for(
                    deployment,
                    retry_policy=RetryPolicy(
                        base_delay=0.01, max_delay=0.02, max_attempts=3, op_timeout=2.0
                    ),
                )
                # A minimum-LId bound far beyond the log defers forever; the
                # client retries (the server stored nothing) and surfaces the
                # typed error once attempts run out — no string matching.
                with pytest.raises(AppendDeferred) as excinfo:
                    await client.append("late", min_lid=1000)
                assert isinstance(excinfo.value, ChariotsError)
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_breaker_opens_then_recovers_via_probe(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=1, n_indexers=0, batch_size=4)
            await deployment.start()
            try:
                client = await _client_for(
                    deployment,
                    retry_policy=RetryPolicy(
                        base_delay=0.02, max_delay=0.05, max_attempts=3, op_timeout=0.25
                    ),
                    breaker_failure_threshold=1,
                    breaker_reset_timeout=0.3,
                )
                result = await client.append("v0")
                address = deployment.maintainers[0].address
                deployment.maintainers[0].set_chaos(
                    NetChaos(seed=4, drop_probability=1.0, max_faults=1,
                             request_types=["read_lid"])
                )
                # First attempt times out and trips the breaker; the retry is
                # then refused outright instead of hammering the dead peer.
                with pytest.raises(CircuitOpenError):
                    await client.read_lid(result.lid)
                assert client.breaker(address).state == CircuitBreaker.OPEN

                await asyncio.sleep(0.35)  # cooldown: half-open probe allowed
                entry = await client.read_lid(result.lid)
                assert entry.record.body == "v0"
                assert client.breaker(address).state == CircuitBreaker.CLOSED
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())


class TestAioRuntimeChaos:
    def test_dropped_frames_never_reach_the_actor(self):
        async def scenario():
            from repro.flstore.messages import GossipHL
            from repro.runtime import Actor

            got = []

            class Listener(Actor):
                def on_message(self, sender, message):
                    got.append(message)

            from repro.net.aio_runtime import AioRuntime

            runtime = AioRuntime(chaos=FaultPlan(seed=1).drop(message_type="GossipHL"))
            runtime.register(Listener("ear"))
            await runtime.start()
            try:
                runtime.send("mouth", "ear", GossipHL("m0", 1))
                await runtime.run_for(0.05)
                assert not got
                assert runtime.messages_dropped == 1
            finally:
                await runtime.stop()

        run(scenario())

    def test_pipeline_converges_over_tcp_despite_bounded_chaos(self):
        async def scenario():
            from repro.net.aio_runtime import AioRuntime

            plan = (
                FaultPlan(seed=8)
                .drop(message_type="ReplicationShipment", probability=0.5, max_count=4)
                .duplicate(message_type="ReplicationShipment", probability=0.5,
                           delay=0.02, max_count=4)
            )
            runtime = AioRuntime(chaos=plan)
            deployment = ChariotsDeployment(
                runtime, ["A", "B"], batch_size=8, pipeline_config=FAST
            )
            await runtime.start()
            try:
                acks = []
                ca = deployment.client("A")
                cb = deployment.client("B")
                for i in range(3):
                    ca.append(f"a{i}", on_done=acks.append)
                    cb.append(f"b{i}", on_done=acks.append)
                ok = await runtime.settle(
                    lambda: len(acks) == 6 and deployment.converged(),
                    max_seconds=20,
                )
                assert ok
                for dc in "AB":
                    entries = deployment[dc].all_entries()
                    rids = [e.rid for e in entries]
                    assert len(rids) == 6 and len(set(rids)) == 6
                    assert causal_order_respected([e.record for e in entries])
            finally:
                await runtime.stop()

        run(scenario())
