"""Partial replication topologies and transitive shipping (§6.1's
Replicated-Dictionary-style propagation, extended to the pipeline)."""


from repro.chariots import ChariotsDeployment
from repro.core import PipelineConfig, causal_order_respected
from repro.runtime import LocalRuntime


def ring(dcs):
    return {dc: [dcs[(i + 1) % len(dcs)]] for i, dc in enumerate(dcs)}


def chain_topology(dcs):
    links = {dc: [] for dc in dcs}
    for a, b in zip(dcs, dcs[1:]):
        links[a].append(b)
        links[b].append(a)
    return links


class TestRingTopology:
    def test_ring_converges_with_transitive_shipping(self):
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime, ["A", "B", "C"], batch_size=4, topology=ring(["A", "B", "C"])
        )
        assert deployment.transitive  # implied by the custom topology
        clients = {dc: deployment.blocking_client(dc) for dc in "ABC"}
        for i in range(4):
            for dc, client in clients.items():
                client.append(f"{dc}{i}")
        assert deployment.settle(max_seconds=60)
        sets = deployment.record_sets()
        assert sets["A"] == sets["B"] == sets["C"]
        assert len(sets["A"]) == 12

    def test_ring_logs_stay_causally_consistent(self):
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime, ["A", "B", "C"], batch_size=4, topology=ring(["A", "B", "C"])
        )
        ca = deployment.blocking_client("A")
        a1 = ca.append("base")
        deployment.settle(max_seconds=30)
        cc = deployment.blocking_client("C")
        cc.append("depends", deps={"A": a1.toid})
        assert deployment.settle(max_seconds=60)
        for dc in "ABC":
            records = [e.record for e in deployment[dc].all_entries()]
            assert causal_order_respected(records)

    def test_four_dc_ring(self):
        runtime = LocalRuntime()
        dcs = ["A", "B", "C", "D"]
        deployment = ChariotsDeployment(
            runtime, dcs, batch_size=4, topology=ring(dcs)
        )
        clients = {dc: deployment.blocking_client(dc) for dc in dcs}
        for dc, client in clients.items():
            client.append(f"from-{dc}")
        assert deployment.settle(max_seconds=90)
        sets = deployment.record_sets()
        assert all(s == sets["A"] and len(s) == 4 for s in sets.values())


class TestChainTopology:
    def test_chain_converges_via_the_middle(self):
        # A <-> B <-> C: A and C never talk directly.
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime, ["A", "B", "C"], batch_size=4,
            topology=chain_topology(["A", "B", "C"]),
        )
        ca = deployment.blocking_client("A")
        cc = deployment.blocking_client("C")
        ca.append("from-A")
        cc.append("from-C")
        assert deployment.settle(max_seconds=60)
        assert deployment.converged()
        hosts_at_a = {e.record.host for e in deployment["A"].all_entries()}
        assert hosts_at_a == {"A", "C"}


class TestFullMeshDefaults:
    def test_full_mesh_is_direct_by_default(self):
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
        assert not deployment.transitive
        for pipeline in deployment.pipelines.values():
            for sender in pipeline.senders:
                assert not sender.transitive

    def test_explicit_transitive_on_full_mesh(self):
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime, ["A", "B", "C"], batch_size=4, transitive=True
        )
        clients = {dc: deployment.blocking_client(dc) for dc in "ABC"}
        for dc, client in clients.items():
            client.append(f"x-{dc}")
        assert deployment.settle(max_seconds=30)
        # Transitive forwarding over a mesh must not duplicate records.
        for dc in "ABC":
            rids = [e.rid for e in deployment[dc].all_entries()]
            assert len(rids) == len(set(rids)) == 3


class TestGcOverPartialTopology:
    def test_atable_converges_around_the_ring(self):
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime, ["A", "B", "C"], batch_size=4,
            topology=ring(["A", "B", "C"]),
            pipeline_config=PipelineConfig(gc_interval=0.05),
        )
        ca = deployment.blocking_client("A")
        for i in range(8):
            ca.append(f"a{i}")
        assert deployment.settle(max_seconds=60)
        runtime.run_for(3.0)
        # A hears what C knows only through B's forwarded ATable.
        atable = deployment["A"].gc.atable
        assert atable.get("C", "A") >= 8

    def test_gc_fires_on_ring_topology(self):
        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime, ["A", "B", "C"], batch_size=4,
            topology=ring(["A", "B", "C"]),
            pipeline_config=PipelineConfig(gc_interval=0.05),
        )
        clients = {dc: deployment.blocking_client(dc) for dc in "ABC"}
        for i in range(5):
            for client in clients.values():
                client.append(f"r{i}")
        assert deployment.settle(max_seconds=60)
        runtime.run_for(4.0)
        total_before_gc = 15
        assert deployment["A"].total_records() < total_before_gc
