"""Unit tests for the log storage primitive (repro.core.log)."""

import pytest

from repro.core import (
    GapError,
    GarbageCollectedError,
    ImmutabilityError,
    LidOutOfRangeError,
    LogStore,
    ReadRules,
)

from conftest import rec


@pytest.fixture
def store() -> LogStore:
    return LogStore()


class TestPutGet:
    def test_put_then_get(self, store):
        store.put(0, rec("A", 1))
        assert store.get(0).record.toid == 1

    def test_write_once(self, store):
        store.put(0, rec("A", 1))
        with pytest.raises(ImmutabilityError):
            store.put(0, rec("A", 2))

    def test_idempotent_same_record(self, store):
        record = rec("A", 1)
        store.put(0, record)
        entry = store.put(0, record)  # retried placement
        assert entry.record is record
        assert len(store) == 1

    def test_gap_read_raises(self, store):
        store.put(0, rec("A", 1))
        store.put(2, rec("A", 2))
        with pytest.raises(GapError):
            store.get(1)

    def test_read_past_end_raises(self, store):
        store.put(0, rec("A", 1))
        with pytest.raises(LidOutOfRangeError):
            store.get(5)

    def test_try_get_returns_none_for_missing(self, store):
        assert store.try_get(3) is None

    def test_lid_of_and_has_record(self, store):
        record = rec("A", 1)
        store.put(7, record)
        assert store.has_record(record.rid)
        assert store.lid_of(record.rid) == 7


class TestContiguity:
    def test_contiguous_tracking(self, store):
        store.put(0, rec("A", 1))
        store.put(2, rec("A", 3))
        assert store.contiguous_upto == 0
        store.put(1, rec("A", 2))
        assert store.contiguous_upto == 2

    def test_empty_store_state(self, store):
        assert store.max_lid == -1
        assert store.contiguous_upto == -1
        assert len(store) == 0

    def test_gaps_listing(self, store):
        store.put(0, rec("A", 1))
        store.put(3, rec("A", 2))
        assert store.gaps() == [1, 2]

    def test_scan_raises_on_gap(self, store):
        store.put(0, rec("A", 1))
        store.put(2, rec("A", 2))
        with pytest.raises(GapError):
            store.scan(0, 2)

    def test_scan_dense_prefix(self, store):
        for i in range(3):
            store.put(i, rec("A", i + 1))
        assert [e.lid for e in store.scan(0, 2)] == [0, 1, 2]


class TestReads:
    def test_rules_most_recent_with_limit(self, store):
        for i in range(10):
            store.put(i, rec("A", i + 1, tags={"k": i % 2}))
        entries = store.read(ReadRules(tag_key="k", tag_value=0, limit=2))
        assert [e.lid for e in entries] == [8, 6]

    def test_rules_oldest_first(self, store):
        for i in range(4):
            store.put(i, rec("A", i + 1))
        entries = store.read(ReadRules(most_recent=False, limit=2))
        assert [e.lid for e in entries] == [0, 1]

    def test_read_skips_gaps(self, store):
        store.put(0, rec("A", 1))
        store.put(2, rec("A", 2))
        entries = store.read(ReadRules())
        assert [e.lid for e in entries] == [2, 0]

    def test_entries_in_lid_order(self, store):
        store.put(5, rec("A", 2))
        store.put(1, rec("A", 1))
        assert [e.lid for e in store.entries()] == [1, 5]


class TestTruncation:
    def test_truncate_drops_prefix(self, store):
        for i in range(5):
            store.put(i, rec("A", i + 1))
        assert store.truncate_below(3) == 3
        assert store.truncated_below == 3
        with pytest.raises(GarbageCollectedError):
            store.get(0)
        assert store.get(3).record.toid == 4

    def test_truncate_does_not_cross_gaps(self, store):
        store.put(0, rec("A", 1))
        store.put(2, rec("A", 2))
        assert store.truncate_below(3) == 1  # only lid 0 collectable
        assert store.truncated_below == 1

    def test_truncate_cleans_tag_index(self, store):
        store.put(0, rec("A", 1, tags={"k": 1}))
        store.put(1, rec("A", 2, tags={"k": 2}))
        store.truncate_below(1)
        entries = store.read(ReadRules(tag_key="k"))
        assert [e.lid for e in entries] == [1]

    def test_put_below_truncation_raises(self, store):
        store.put(0, rec("A", 1))
        store.truncate_below(1)
        with pytest.raises(GarbageCollectedError):
            store.put(0, rec("B", 1))

    def test_truncate_is_idempotent(self, store):
        store.put(0, rec("A", 1))
        store.truncate_below(1)
        assert store.truncate_below(1) == 0


class TestJournal:
    def test_journal_hook_sees_every_put(self):
        seen = []
        store = LogStore(journal=lambda lid, record: seen.append((lid, record.rid)))
        store.put(0, rec("A", 1))
        store.put(1, rec("A", 2))
        assert len(seen) == 2
        assert seen[0][0] == 0

    def test_journal_replay_recovers_state(self):
        journal = []
        store = LogStore(journal=lambda lid, record: journal.append((lid, record)))
        for i in range(5):
            store.put(i, rec("A", i + 1))
        recovered = LogStore()
        for lid, record in journal:
            recovered.put(lid, record)
        assert [e.rid for e in recovered.entries()] == [e.rid for e in store.entries()]
