"""Tests for the CORFU-style sequencer baseline (repro.baseline)."""

import pytest

from repro.baseline import CorfuLog, Sequencer, SequencerRequest
from repro.core import ConfigurationError
from repro.runtime import LocalRuntime

from conftest import rec


class TestSequencer:
    def make(self):
        rt = LocalRuntime()
        seq = Sequencer("seq")
        rt.register(seq)
        from repro.sim.workload import SinkActor

        sink = SinkActor("sink")
        rt.register(sink)
        rt.start()
        return rt, seq, sink

    def test_ranges_are_dense_and_disjoint(self):
        rt, seq, sink = self.make()
        for i in range(3):
            sink.send("seq", SequencerRequest(i, count=5))
        rt.run()
        ranges = [(m.start, m.count) for m in sink.messages]
        assert ranges == [(0, 5), (5, 5), (10, 5)]

    def test_zero_count_rejected(self):
        rt, seq, sink = self.make()
        sink.send("seq", SequencerRequest(1, count=0))
        with pytest.raises(ConfigurationError):
            rt.run()

    def test_grants_counter(self):
        rt, seq, sink = self.make()
        sink.send("seq", SequencerRequest(1, count=2))
        rt.run()
        assert seq.grants_issued == 1
        assert seq.next_position == 2


class TestCorfuLog:
    def test_append_round_trip(self):
        rt = LocalRuntime()
        log = CorfuLog(rt, n_units=3, batch_size=5)
        client = log.client()
        rt.start()
        done = []
        client.append_records([rec("c", i + 1) for i in range(7)], on_done=done.append)
        rt.run_for(0.05)
        assert len(done) == 1
        assert [r.lid for r in done[0]] == list(range(7))
        assert log.total_records() == 7

    def test_striping_across_units(self):
        rt = LocalRuntime()
        log = CorfuLog(rt, n_units=2, batch_size=2)
        client = log.client()
        rt.start()
        client.append_records([rec("c", i + 1) for i in range(8)])
        rt.run_for(0.05)
        counts = [unit.core.stored_count() for unit in log.units]
        assert counts == [4, 4]

    def test_concurrent_clients_never_collide(self):
        rt = LocalRuntime()
        log = CorfuLog(rt, n_units=2, batch_size=3)
        c1, c2 = log.client(), log.client()
        rt.start()
        c1.append_records([rec("x", i + 1) for i in range(5)])
        c2.append_records([rec("y", i + 1) for i in range(5)])
        rt.run_for(0.05)
        lids = [e.lid for e in log.all_entries()]
        assert lids == list(range(10))

    def test_head_of_log_advances_via_gossip(self):
        rt = LocalRuntime()
        log = CorfuLog(rt, n_units=2, batch_size=2)
        client = log.client()
        rt.start()
        client.append_records([rec("c", i + 1) for i in range(6)])
        rt.run_for(0.1)
        assert log.head_of_log() == 5

    def test_sequencer_is_on_every_append_path(self):
        rt = LocalRuntime()
        log = CorfuLog(rt, n_units=4, batch_size=5)
        clients = [log.client() for _ in range(4)]
        rt.start()
        for i, client in enumerate(clients):
            client.append_records([rec(f"c{i}", 1)])
        rt.run_for(0.05)
        # Every append crossed the single sequencer: the bottleneck by design.
        assert log.sequencer.grants_issued == 4
