"""Pipeline ≡ abstract-solution equivalence (§6.2's stated goal).

The distributed pipeline must produce "a behavior identical to the abstract
solution" — property-based tests drive random multi-datacenter workloads
through both and compare the outcomes: the same record sets everywhere,
causal consistency of every log, and identical per-host total orders.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chariots import AbstractDeployment, ChariotsDeployment
from repro.core import causal_order_respected
from repro.runtime import LocalRuntime, random_latency

DCS = ["A", "B", "C"]

#: A workload step: (datacenter index, payload index) — an append at that DC.
workload_strategy = st.lists(
    st.tuples(st.integers(0, len(DCS) - 1), st.integers(0, 999)),
    min_size=1,
    max_size=25,
)


def run_abstract(workload):
    deployment = AbstractDeployment(DCS)
    for dc_index, payload in workload:
        deployment[DCS[dc_index]].append(f"p{payload}")
    deployment.sync()
    return deployment


def run_pipeline(workload, seed):
    runtime = LocalRuntime(latency_fn=random_latency(seed=seed, max_delay=0.03))
    deployment = ChariotsDeployment(runtime, DCS, batch_size=4)
    clients = {dc: deployment.blocking_client(dc) for dc in DCS}
    for dc_index, payload in workload:
        clients[DCS[dc_index]].append(f"p{payload}")
    assert deployment.settle(max_seconds=60)
    return deployment


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workload_strategy, seed=st.integers(0, 1000))
def test_pipeline_matches_abstract_record_sets(workload, seed):
    abstract = run_abstract(workload)
    pipeline = run_pipeline(workload, seed)
    abstract_set = {r.rid for r in abstract[DCS[0]].records()}
    for dc in DCS:
        pipeline_set = {e.rid for e in pipeline[dc].all_entries()}
        assert pipeline_set == abstract_set


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workload_strategy, seed=st.integers(0, 1000))
def test_pipeline_logs_causally_consistent(workload, seed):
    pipeline = run_pipeline(workload, seed)
    for dc in DCS:
        records = [e.record for e in pipeline[dc].all_entries()]
        assert causal_order_respected(records)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workload_strategy, seed=st.integers(0, 1000))
def test_per_host_total_order_identical_everywhere(workload, seed):
    pipeline = run_pipeline(workload, seed)
    abstract = run_abstract(workload)
    for host in DCS:
        reference = [r.toid for r in abstract[host].records() if r.host == host]
        for dc in DCS:
            observed = [
                e.record.toid
                for e in pipeline[dc].all_entries()
                if e.record.host == host
            ]
            assert observed == reference


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workload_strategy, seed=st.integers(0, 1000))
def test_abstract_deployment_always_converges_causally(workload, seed):
    deployment = run_abstract(workload)
    assert deployment.converged()
    for dc in DCS:
        assert causal_order_respected(deployment[dc].records())
