"""The direct (abstract-solution) backend drives every application
unchanged — the paper's point that the semantics live in the log, not in
the deployment machinery."""

import pytest

from repro.apps import (
    EventPublisher,
    Hyksos,
    LogAuditor,
    MessageFuturesManager,
    ReplicatedCounter,
    ReplicatedDict,
    StreamJoiner,
    StreamReader,
)
from repro.chariots.direct import DirectDeployment


@pytest.fixture
def direct():
    return DirectDeployment(["A", "B"], auto_replicate=False)


class TestDirectClient:
    def test_append_and_read(self, direct):
        client = direct.client("A")
        result = client.append("hello", tags={"k": 1})
        assert result.lid == 0
        assert client.read_lid(0).entries[0].record.body == "hello"

    def test_head(self, direct):
        client = direct.client("A")
        assert client.head() == -1
        client.append("x")
        assert client.head() == 0

    def test_read_lid_error_shim(self, direct):
        reply = direct.client("A").read_lid(42)
        assert reply.entries == []
        assert reply.error is not None

    def test_replicate_pump(self, direct):
        direct.client("A").append("from-A")
        assert direct.client("B").head() == -1
        direct.replicate()
        assert direct.client("B").head() == 0
        assert direct.converged()

    def test_auto_replicate_mode(self):
        deployment = DirectDeployment(["A", "B"], auto_replicate=True)
        deployment.client("A").append("x")
        assert deployment.client("B").head() == 0


class TestAppsOnDirectBackend:
    def test_hyksos(self, direct):
        kv_a = Hyksos(direct.client("A"))
        kv_b = Hyksos(direct.client("B"))
        kv_a.put("x", 10)
        kv_b.put("x", 30)
        direct.replicate()
        assert kv_a.get_convergent("x") == kv_b.get_convergent("x")
        values, _ = kv_a.get_transaction(["x"])
        assert values["x"] in (10, 30)

    def test_streams_and_join(self, direct):
        EventPublisher(direct.client("A")).publish("l", {"k": 1})
        EventPublisher(direct.client("B")).publish("r", {"k": 1})
        direct.replicate()
        reader = StreamReader(direct.client("A"), "l")
        assert len(reader.poll()) == 1
        joiner = StreamJoiner(direct.client("B"), "l", "r", key_fn=lambda p: p["k"])
        assert len(joiner.step()) == 1

    def test_replicated_objects(self, direct):
        counter_a = ReplicatedCounter(direct.client("A"))
        counter_b = ReplicatedCounter(direct.client("B"))
        counter_a.increment(2)
        counter_b.increment(3)
        direct.replicate()
        counter_a.sync()
        counter_b.sync()
        assert counter_a.value == counter_b.value == 5

    def test_replicated_dict_convergence_under_staged_delivery(self, direct):
        d_a = ReplicatedDict(direct.client("A"))
        d_b = ReplicatedDict(direct.client("B"))
        d_a.set("k", "from-A")
        d_b.set("k", "from-B")  # concurrent
        direct.replicate()
        d_a.sync()
        d_b.sync()
        assert d_a.get("k") == d_b.get("k")

    def test_message_futures_conflict(self, direct):
        ma = MessageFuturesManager("A", direct.client("A"), ["A", "B"])
        mb = MessageFuturesManager("B", direct.client("B"), ["A", "B"])
        ta = ma.begin(); ta.write("k", 1)
        tb = mb.begin(); tb.write("k", 2)
        pa, pb = ta.commit(), tb.commit()
        for _ in range(6):
            direct.replicate()
            ma.pump()
            mb.pump()
            if pa.decided and pb.decided:
                break
        assert pa.decided and pb.decided
        assert [pa.committed, pb.committed].count(True) == 1
        assert ma.committed_state() == mb.committed_state()

    def test_auditor(self, direct):
        client = direct.client("A")
        kv = Hyksos(client)
        kv.put("x", 1)
        kv.put("x", 2)
        auditor = LogAuditor(client)
        assert [v.value for v in auditor.history("x")] == [1, 2]
        assert auditor.state_at(0) == {"x": 1}
