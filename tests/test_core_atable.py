"""Unit tests for the Awareness Table (repro.core.atable)."""

import pytest

from repro.core import AwarenessTable, ConfigurationError, RecordId


@pytest.fixture
def table() -> AwarenessTable:
    return AwarenessTable("A", ["A", "B", "C"])


class TestConstruction:
    def test_initially_zero(self, table):
        for knower in "ABC":
            for host in "ABC":
                assert table.get(knower, host) == 0

    def test_self_must_be_member(self):
        with pytest.raises(ConfigurationError):
            AwarenessTable("X", ["A", "B"])

    def test_members_sorted_and_deduplicated(self):
        t = AwarenessTable("B", ["B", "A", "B"])
        assert t.datacenters == ["A", "B"]


class TestLocalUpdates:
    def test_record_appended_advances_self_cell(self, table):
        table.record_appended(1)
        assert table.get("A", "A") == 1

    def test_toids_must_be_dense(self, table):
        table.record_appended(1)
        with pytest.raises(ConfigurationError):
            table.record_appended(3)

    def test_record_incorporated_advances_self_row(self, table):
        table.record_incorporated(RecordId("B", 4))
        assert table.get("A", "B") == 4

    def test_record_incorporated_is_monotone(self, table):
        table.record_incorporated(RecordId("B", 4))
        table.record_incorporated(RecordId("B", 2))
        assert table.get("A", "B") == 4


class TestMerge:
    def test_merge_takes_elementwise_max(self, table):
        remote = {"A": {"A": 0, "B": 0, "C": 0}, "B": {"A": 3, "B": 7, "C": 0}, "C": {"A": 0, "B": 0, "C": 2}}
        table.merge("B", remote)
        assert table.get("B", "A") == 3
        assert table.get("B", "B") == 7
        assert table.get("C", "C") == 2

    def test_merge_never_regresses(self, table):
        table.note_peer_knowledge("B", {"A": 9})
        table.merge("B", {"B": {"A": 2, "B": 0, "C": 0}})
        assert table.get("B", "A") == 9

    def test_merge_ignores_unknown_datacenters(self, table):
        table.merge("B", {"Z": {"A": 5}, "B": {"Z": 7}})
        assert table.get("B", "A") == 0

    def test_note_peer_knowledge(self, table):
        table.note_peer_knowledge("C", {"A": 2, "B": 1})
        assert table.get("C", "A") == 2
        assert table.get("C", "B") == 1


class TestDerivedQueries:
    def test_peer_knows(self, table):
        table.note_peer_knowledge("B", {"C": 5})
        assert table.peer_knows("B", RecordId("C", 5))
        assert table.peer_knows("B", RecordId("C", 1))
        assert not table.peer_knows("B", RecordId("C", 6))

    def test_gc_frontier_is_min_over_knowers(self, table):
        table.note_peer_knowledge("A", {"C": 5})
        table.note_peer_knowledge("B", {"C": 3})
        table.note_peer_knowledge("C", {"C": 9})
        assert table.gc_frontier("C") == 3

    def test_gc_frontier_zero_until_everyone_knows(self, table):
        table.note_peer_knowledge("A", {"B": 5})
        table.note_peer_knowledge("B", {"B": 5})
        assert table.gc_frontier("B") == 0  # C knows nothing yet

    def test_gc_vector_covers_all_hosts(self, table):
        vector = table.gc_vector()
        assert set(vector) == {"A", "B", "C"}

    def test_self_row(self, table):
        table.record_appended(1)
        table.record_incorporated(RecordId("B", 2))
        assert table.self_row() == {"A": 1, "B": 2, "C": 0}

    def test_as_matrix_is_deep_copy(self, table):
        matrix = table.as_matrix()
        matrix["A"]["A"] = 99
        assert table.get("A", "A") == 0

    def test_equality(self):
        t1 = AwarenessTable("A", ["A", "B"])
        t2 = AwarenessTable("A", ["A", "B"])
        assert t1 == t2
        t1.record_appended(1)
        assert t1 != t2
