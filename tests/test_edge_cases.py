"""Edge-case tests across subsystems: overflow paths, override hooks,
control-plane refresh after elasticity, heartbeat-only replication."""


from repro.chariots import ChariotsDeployment
from repro.chariots.elasticity import expand_maintainers
from repro.chariots.messages import AdmittedBatch
from repro.core import MachineProfile, PipelineConfig
from repro.runtime import LocalRuntime
from repro.sim import SimRuntime, SinkActor

from conftest import rec


class TestTokenDeferredOverflow:
    def test_overflow_stays_local_and_still_drains(self):
        """token_deferred_limit bounds what travels with the token; the
        overflow waits at the queue and drains when dependencies arrive."""
        from repro.chariots.queues import QueueStage
        from repro.flstore.maintainer import LogMaintainer
        from repro.flstore.range_map import OwnershipPlan

        runtime = LocalRuntime()
        plan = OwnershipPlan(["store"], batch_size=100)
        store = LogMaintainer("store", plan, peers=["store"])
        config = PipelineConfig(token_hold_interval=0.001, token_deferred_limit=2)
        q0 = QueueStage("q0", "A", plan, next_queue="q1", config=config,
                        holds_initial_token=True)
        q1 = QueueStage("q1", "A", plan, next_queue="q0", config=config)
        runtime.register_all([store, q0, q1])
        runtime.start()
        # Five records blocked on B:1 — more than the token can carry.
        q0.on_message("f", AdmittedBatch(externals=[rec("B", t) for t in (2, 3, 4, 5, 6)]))
        runtime.run_for(0.0015)
        assert q0.deferred_count + len(q1._token.deferred if q1._token else []) >= 3
        q1.on_message("f", AdmittedBatch(externals=[rec("B", 1)]))
        runtime.run_for(0.02)  # several token circuits drain everything
        assert store.core.stored_count() == 6


class TestServiceCostOverride:
    def test_actor_override_beats_machine_default(self):
        class SlowActor(SinkActor):
            def service_cost(self, message):
                return 1.0  # one full second per message

        runtime = SimRuntime()
        slow = SlowActor("slow")
        fast_profile = MachineProfile(per_record_cost=1e-9)
        runtime.place_on_new_machine(slow, profile=fast_profile)
        src = SinkActor("src")
        runtime.place_on_new_machine(src, profile=fast_profile)
        runtime.start()
        runtime.send("src", "slow", "msg")
        runtime.run()
        assert runtime.now >= 1.0  # the override governed the service time

    def test_sequencer_grant_cost_override(self):
        from repro.baseline import Sequencer, SequencerRequest

        runtime = SimRuntime()
        sequencer = Sequencer("seq", grant_cost=0.5)
        runtime.place_on_new_machine(sequencer)
        src = SinkActor("src")
        runtime.place_on_new_machine(src)
        runtime.start()
        runtime.send("src", "seq", SequencerRequest(1, count=1))
        runtime.run()
        assert runtime.now >= 0.5


class TestControlPlaneAfterElasticity:
    def test_new_sessions_see_the_expanded_epoch_journal(self, runtime):
        deployment = ChariotsDeployment(runtime, ["A"], batch_size=4)
        client = deployment.blocking_client("A")
        for i in range(10):
            client.append(f"pre{i}")
        expand_maintainers(deployment["A"], 1)
        late = deployment.client("A")
        runtime.run_until(lambda: late.session_ready)
        assert len(late._session.epochs) == 2
        # The late client's routing plan resolves owners in both epochs.
        assert late._plan.owner(0) == deployment["A"].plan.owner(0)
        boundary = deployment["A"].plan.epochs[1].start_lid
        assert late._plan.owner(boundary) == deployment["A"].plan.owner(boundary)


class TestHeartbeatOnlyReplication:
    def test_idle_datacenter_still_reports_knowledge(self, runtime):
        """B never appends, so it never ships records — but its vector
        heartbeats must still tell A what B has incorporated, or garbage
        collection at A would stall forever."""
        deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
        ca = deployment.blocking_client("A")
        for i in range(5):
            ca.append(f"a{i}")
        assert deployment.settle(max_seconds=20)
        runtime.run_for(1.0)  # heartbeat rounds
        atable = deployment["A"].gc.atable
        assert atable.get("B", "A") == 5


class TestInternalRecordsStayInternal:
    def test_noop_fillers_are_not_replicated(self, runtime):
        from repro.core import FLStoreConfig

        deployment = ChariotsDeployment(
            runtime, ["A", "B"], batch_size=4,
            flstore_config=FLStoreConfig(batch_size=4, fill_gaps_with_noops=True),
        )
        ca = deployment.blocking_client("A")
        ca.append("real")
        assert deployment.settle(max_seconds=10)
        b_hosts = {e.record.host for e in deployment["B"].all_entries()}
        assert all(not h.startswith("__noop__") for h in b_hosts)

    def test_internal_records_hidden_from_rule_reads(self):
        from repro.core import FLStoreConfig, ReadRules
        from repro.flstore import FLStore

        runtime = LocalRuntime()
        store = FLStore(
            runtime, n_maintainers=1, n_indexers=0, batch_size=10,
            config=FLStoreConfig(batch_size=10, fill_gaps_with_noops=True),
        )
        client = store.blocking_client()
        client.append("visible", min_lid=3)  # forces no-op fill at 0..3
        entries = client.read(ReadRules())
        assert [e.record.body for e in entries] == ["visible"]


class TestReadRulesComposition:
    def test_host_and_toid_window_scan(self, two_dc_deployment):
        from repro.core import ReadRules

        ca = two_dc_deployment.blocking_client("A")
        cb = two_dc_deployment.blocking_client("B")
        for i in range(6):
            ca.append(f"a{i}")
            cb.append(f"b{i}")
        assert two_dc_deployment.settle(max_seconds=10)
        entries = ca.read(ReadRules(host="B", min_toid=2, max_toid=4, most_recent=False))
        assert [e.record.toid for e in entries] == [2, 3, 4]
        assert all(e.record.host == "B" for e in entries)
