"""Tests for the log maintainer (repro.flstore.maintainer)."""

import pytest

from repro.core import (
    FLStoreConfig,
    GapError,
    GarbageCollectedError,
    ImmutabilityError,
    LidOutOfRangeError,
    NotOwnerError,
    ReadRules,
)
from repro.flstore import MaintainerCore, OwnershipPlan
from repro.flstore.messages import GossipHL

from conftest import chain, rec


def make_cluster(n=3, batch=5):
    names = [f"m{i}" for i in range(n)]
    plan = OwnershipPlan(names, batch_size=batch)
    return plan, [MaintainerCore(name, plan) for name in names]


class TestPostAssignment:
    def test_appends_use_owned_lids_in_order(self):
        plan, (m0, m1, m2) = make_cluster()
        results = m0.append(chain("c", 7))
        assert [r.lid for r in results] == [0, 1, 2, 3, 4, 15, 16]

    def test_different_maintainers_never_collide(self):
        plan, maintainers = make_cluster()
        lids = []
        for i, m in enumerate(maintainers):
            lids += [r.lid for r in m.append(chain(f"c{i}", 8))]
        assert len(set(lids)) == len(lids)

    def test_append_returns_rid_and_lid(self):
        _, (m0, *_ ) = make_cluster()
        [result] = m0.append([rec("c", 1)])
        assert result.rid.host == "c"
        assert result.lid == 0

    def test_append_count_matches_append(self):
        _, (m0, *_) = make_cluster()
        n = m0.append_count(chain("c", 6))
        assert n == 6
        assert m0.stored_count() == 6
        assert m0.next_unassigned == 16

    def test_records_appended_counter(self):
        _, (m0, *_) = make_cluster()
        m0.append(chain("c", 3))
        assert m0.records_appended == 3


class TestPlacedMode:
    def test_place_at_owned_lid(self):
        plan, (m0, m1, _) = make_cluster()
        assert m1.place(5, rec("A", 1)) is True
        assert m1.get(5).record.host == "A"

    def test_place_rejects_foreign_lid(self):
        plan, (m0, *_) = make_cluster()
        with pytest.raises(NotOwnerError):
            m0.place(5, rec("A", 1))  # lid 5 belongs to m1

    def test_place_is_idempotent(self):
        _, (m0, *_) = make_cluster()
        record = rec("A", 1)
        assert m0.place(0, record) is True
        assert m0.place(0, record) is False

    def test_place_conflicting_record_raises(self):
        _, (m0, *_) = make_cluster()
        m0.place(0, rec("A", 1))
        with pytest.raises(ImmutabilityError):
            m0.place(0, rec("B", 1))

    def test_out_of_order_placement_tracked(self):
        _, (m0, *_) = make_cluster()
        m0.place(2, rec("A", 1))
        assert m0.next_unassigned == 0  # still waiting for 0
        m0.place(0, rec("A", 2))
        assert m0.next_unassigned == 1
        m0.place(1, rec("A", 3))
        assert m0.next_unassigned == 3  # skips the pre-placed 2

    def test_placement_across_rounds(self):
        _, (m0, *_) = make_cluster(batch=2)
        for lid in (0, 1):  # fill round 0
            m0.place(lid, rec("A", lid + 1))
        assert m0.next_unassigned == 6  # m0's next round with n=3, batch=2


class TestReads:
    def test_get_unowned_raises(self):
        _, (m0, *_) = make_cluster()
        with pytest.raises(NotOwnerError):
            m0.get(5)

    def test_get_beyond_stored_raises(self):
        _, (m0, *_) = make_cluster()
        m0.append([rec("c", 1)])
        with pytest.raises(LidOutOfRangeError):
            m0.get(1)

    def test_get_hole_raises_gap(self):
        _, (m0, *_) = make_cluster()
        m0.place(2, rec("A", 1))
        with pytest.raises(GapError):
            m0.get(0)

    def test_rule_read_scans_local_slice(self):
        _, (m0, *_) = make_cluster()
        m0.append([rec("c", i + 1, tags={"k": i % 2}) for i in range(6)])
        entries = m0.read(ReadRules(tag_key="k", tag_value=1, limit=2))
        assert [e.record.toid for e in entries] == [6, 4]

    def test_entries_after_stops_at_frontier(self):
        _, (m0, *_) = make_cluster()
        m0.append(chain("c", 3))
        m0.place(16, rec("X", 1))  # ahead of the contiguous frontier
        entries, upto = m0.entries_after(-1)
        assert [e.lid for e in entries] == [0, 1, 2]
        assert upto == 2

    def test_entries_after_respects_limit(self):
        _, (m0, *_) = make_cluster()
        m0.append(chain("c", 5))
        entries, upto = m0.entries_after(-1, limit=2)
        assert [e.lid for e in entries] == [0, 1]
        assert upto == 1


class TestHeadOfLogGossip:
    def test_initial_head_is_empty(self):
        _, (m0, m1, m2) = make_cluster()
        assert m0.head_of_log() == -1

    def test_head_requires_all_maintainers(self):
        # §5.4: maintainer ahead of the others does not advance the head.
        _, (m0, m1, m2) = make_cluster(batch=5)
        m0.append(chain("c", 5))
        m0.on_gossip(m1.gossip_payload())
        m0.on_gossip(m2.gossip_payload())
        assert m0.head_of_log() == 4  # m1 owns 5..9 and has nothing

    def test_head_advances_with_gossip(self):
        _, (m0, m1, m2) = make_cluster(batch=5)
        m0.append(chain("a", 5))
        m1.append(chain("b", 5))
        m2.append(chain("c", 2))
        for src in (m0, m1, m2):
            payload = src.gossip_payload()
            for dst in (m0, m1, m2):
                dst.on_gossip(payload)
        # m2 filled 10, 11 -> first gap is at 12.
        assert m0.head_of_log() == 11
        assert m1.head_of_log() == 11

    def test_gossip_is_monotone(self):
        _, (m0, m1, _) = make_cluster()
        m0.on_gossip(GossipHL("m1", 10))
        m0.on_gossip(GossipHL("m1", 5))  # stale gossip must not regress
        assert m0._hl_vector["m1"] == 10

    def test_reading_below_head_never_gaps(self):
        # The §5.4 guarantee: any LId at or below HL is readable somewhere.
        plan, maintainers = make_cluster(batch=3)
        maintainers[0].append(chain("a", 4))
        maintainers[1].append(chain("b", 9))
        maintainers[2].append(chain("c", 5))
        for src in maintainers:
            payload = src.gossip_payload()
            for dst in maintainers:
                dst.on_gossip(payload)
        head = maintainers[0].head_of_log()
        assert head >= 0
        for lid in range(head + 1):
            owner = next(m for m in maintainers if m.name == plan.owner(lid))
            assert owner.get(lid) is not None


class TestExplicitOrder:
    def test_min_lid_defers_until_bound_passes(self):
        _, (m0, *_) = make_cluster(batch=5)
        result = m0.append([rec("late", 1)], min_lid=2)
        assert result is None
        assert m0.deferred_count == 1
        m0.append(chain("c", 3))  # lids 0, 1, 2 -> next is 3 > 2
        completed = m0.flush_deferred()
        assert len(completed) == 1
        assert completed[0].results[0].lid == 3

    def test_min_lid_satisfied_immediately(self):
        _, (m0, *_) = make_cluster(batch=5)
        m0.append(chain("c", 3))
        results = m0.append([rec("late", 1)], min_lid=1)
        assert results is not None
        assert results[0].lid == 3

    def test_noop_fill_preserves_no_gap_invariant(self):
        config = FLStoreConfig(batch_size=5, fill_gaps_with_noops=True)
        plan = OwnershipPlan(["m0"], batch_size=5)
        m0 = MaintainerCore("m0", plan, config=config)
        results = m0.append([rec("late", 1)], min_lid=3)
        assert results is not None
        assert results[0].lid == 4  # lids 0-3 filled with no-ops
        for lid in range(4):
            assert m0.get(lid).record.internal

    def test_deferred_context_round_trips(self):
        _, (m0, *_) = make_cluster(batch=5)
        m0.append([rec("late", 1)], min_lid=0, context=("client", 42))
        m0.append(chain("c", 1))
        [completed] = m0.flush_deferred()
        assert completed.context == ("client", 42)


class TestGarbageCollection:
    def test_truncate_covered_prefix(self):
        _, (m0, *_) = make_cluster(batch=5)
        m0.append([rec("A", t) for t in range(1, 6)])
        dropped = m0.truncate({"A": 3})
        assert dropped == 3
        assert m0.gc_floor == 3
        with pytest.raises(GarbageCollectedError):
            m0.get(0)
        assert m0.get(3).record.toid == 4

    def test_truncate_stops_at_uncovered_record(self):
        _, (m0, *_) = make_cluster(batch=5)
        m0.append([rec("A", 1), rec("B", 1), rec("A", 2)])
        dropped = m0.truncate({"A": 5})  # B:1 not covered
        assert dropped == 1

    def test_truncate_respects_keep_from(self):
        _, (m0, *_) = make_cluster(batch=5)
        m0.append([rec("A", t) for t in range(1, 5)])
        dropped = m0.truncate({"A": 10}, keep_from_lid=2)
        assert dropped == 2

    def test_internal_records_always_collectable(self):
        config = FLStoreConfig(batch_size=5, fill_gaps_with_noops=True)
        plan = OwnershipPlan(["m0"], batch_size=5)
        m0 = MaintainerCore("m0", plan, config=config)
        m0.append([rec("A", 1)], min_lid=2)  # no-ops at 0..2, record at 3
        dropped = m0.truncate({"A": 1})
        assert dropped == 4

    def test_replacement_after_gc_is_noop(self):
        _, (m0, *_) = make_cluster(batch=5)
        record = rec("A", 1)
        m0.place(0, record)
        m0.truncate({"A": 1})
        assert m0.place(0, record) is False  # retransmitted placement

    def test_entries_after_skips_collected_prefix(self):
        _, (m0, *_) = make_cluster(batch=5)
        m0.append([rec("A", t) for t in range(1, 4)])
        m0.truncate({"A": 2})
        entries, upto = m0.entries_after(-1)
        assert [e.record.toid for e in entries] == [3]


class TestElasticityHooks:
    def test_new_peer_extends_hl_vector(self):
        plan, (m0, m1, m2) = make_cluster(batch=5)
        m0.append(chain("c", 20))
        plan.add_epoch(30, ["m0", "m1", "m2", "m3"])
        m0.note_new_peer("m3")
        assert "m3" in m0._hl_vector

    def test_cursor_crosses_into_new_epoch(self):
        plan = OwnershipPlan(["m0"], batch_size=5)
        m0 = MaintainerCore("m0", plan)
        m0.append(chain("c", 5))
        plan.add_epoch(5, ["m0", "m1"])
        results = m0.append(chain("d", 3))
        assert [r.lid for r in results] == [5, 6, 7]
        # Next round after 5-9 belongs to m1; m0 resumes at 15.
        more = m0.append(chain("e", 3))
        assert [r.lid for r in more] == [8, 9, 15]
