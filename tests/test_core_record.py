"""Unit tests for the record model (repro.core.record)."""

import pytest

from repro.core import (
    AppendResult,
    ConfigurationError,
    LogEntry,
    ReadRules,
    Record,
    RecordId,
    freeze_tags,
)

from conftest import rec


class TestRecordId:
    def test_fields(self):
        rid = RecordId("A", 3)
        assert rid.host == "A"
        assert rid.toid == 3

    def test_toids_start_at_one(self):
        with pytest.raises(ConfigurationError):
            RecordId("A", 0)

    def test_negative_toid_rejected(self):
        with pytest.raises(ConfigurationError):
            RecordId("A", -5)

    def test_equality_and_hash(self):
        assert RecordId("A", 1) == RecordId("A", 1)
        assert RecordId("A", 1) != RecordId("B", 1)
        assert len({RecordId("A", 1), RecordId("A", 1), RecordId("A", 2)}) == 2

    def test_ordering_is_host_then_toid(self):
        assert RecordId("A", 9) < RecordId("B", 1)
        assert RecordId("A", 1) < RecordId("A", 2)

    def test_predecessor(self):
        assert RecordId("A", 2).predecessor() == RecordId("A", 1)

    def test_first_record_has_no_predecessor(self):
        assert RecordId("A", 1).predecessor() is None

    def test_str_matches_paper_notation(self):
        assert str(RecordId("A", 7)) == "<A,7>"


class TestFreezeTags:
    def test_none_becomes_empty(self):
        assert freeze_tags(None) == ()

    def test_empty_dict_becomes_empty(self):
        assert freeze_tags({}) == ()

    def test_sorted_stable(self):
        assert freeze_tags({"b": 2, "a": 1}) == (("a", 1), ("b", 2))


class TestRecord:
    def test_make_basics(self):
        record = Record.make("A", 1, "body", tags={"k": "v"})
        assert record.host == "A"
        assert record.toid == 1
        assert record.body == "body"
        assert record.tag_dict() == {"k": "v"}

    def test_records_are_immutable(self):
        record = rec("A", 1)
        with pytest.raises(Exception):
            record.body = "changed"  # frozen dataclass

    def test_implicit_host_dependency(self):
        record = rec("A", 3)
        assert record.dep_vector() == {"A": 2}

    def test_first_record_has_empty_implicit_dep(self):
        record = rec("A", 1)
        assert record.dep_vector() == {"A": 0}

    def test_explicit_deps_merge_with_implicit(self):
        record = rec("A", 3, deps={"B": 5})
        assert record.dep_vector() == {"A": 2, "B": 5}

    def test_explicit_self_dep_never_lowers_implicit(self):
        record = Record.make("A", 5, None, deps={"A": 1})
        assert record.dep_vector()["A"] == 4

    def test_depends_on(self):
        record = rec("A", 3, deps={"B": 5})
        assert record.depends_on(RecordId("B", 5))
        assert record.depends_on(RecordId("B", 1))
        assert not record.depends_on(RecordId("B", 6))
        assert record.depends_on(RecordId("A", 2))

    def test_size_bytes_measures_bytes_body(self):
        record = Record.make("A", 1, b"\x00" * 512)
        assert record.size_bytes() == 512 + 24

    def test_size_bytes_measures_str_body(self):
        record = Record.make("A", 1, "abcd")
        assert record.size_bytes() == 4 + 24

    def test_size_bytes_default_for_opaque_body(self):
        record = Record.make("A", 1, {"k": 1})
        assert record.size_bytes(default_body_size=100) >= 100

    def test_size_bytes_counts_tags_and_deps(self):
        bare = Record.make("A", 1, b"")
        tagged = Record.make("A", 1, b"", tags={"key": "value"}, deps={"B": 3})
        assert tagged.size_bytes() > bare.size_bytes()


class TestLogEntry:
    def test_entry_exposes_rid(self):
        entry = LogEntry(4, rec("A", 2))
        assert entry.rid == RecordId("A", 2)
        assert entry.lid == 4

    def test_negative_lid_rejected(self):
        with pytest.raises(ConfigurationError):
            LogEntry(-1, rec("A", 1))


class TestAppendResult:
    def test_toid_shortcut(self):
        result = AppendResult(RecordId("A", 7), 42)
        assert result.toid == 7
        assert result.lid == 42


class TestReadRules:
    def entry(self, lid=5, host="A", toid=3, tags=None, internal=False):
        record = Record.make(host, toid, "b", tags=tags, internal=internal)
        return LogEntry(lid, record)

    def test_empty_rules_match_everything(self):
        assert ReadRules().matches(self.entry())

    def test_lid_bounds(self):
        assert ReadRules(min_lid=5, max_lid=5).matches(self.entry(lid=5))
        assert not ReadRules(min_lid=6).matches(self.entry(lid=5))
        assert not ReadRules(max_lid=4).matches(self.entry(lid=5))

    def test_host_filter(self):
        assert ReadRules(host="A").matches(self.entry(host="A"))
        assert not ReadRules(host="B").matches(self.entry(host="A"))

    def test_toid_bounds(self):
        assert ReadRules(min_toid=3, max_toid=3).matches(self.entry(toid=3))
        assert not ReadRules(min_toid=4).matches(self.entry(toid=3))
        assert not ReadRules(max_toid=2).matches(self.entry(toid=3))

    def test_tag_key_presence(self):
        assert ReadRules(tag_key="k").matches(self.entry(tags={"k": 1}))
        assert not ReadRules(tag_key="missing").matches(self.entry(tags={"k": 1}))

    def test_tag_value_equality(self):
        assert ReadRules(tag_key="k", tag_value=1).matches(self.entry(tags={"k": 1}))
        assert not ReadRules(tag_key="k", tag_value=2).matches(self.entry(tags={"k": 1}))

    def test_tag_min_value(self):
        rules = ReadRules(tag_key="k", tag_min_value=5)
        assert rules.matches(self.entry(tags={"k": 7}))
        assert not rules.matches(self.entry(tags={"k": 3}))

    def test_internal_records_hidden_by_default(self):
        assert not ReadRules().matches(self.entry(internal=True))
        assert ReadRules(include_internal=True).matches(self.entry(internal=True))
