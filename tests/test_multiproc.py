"""MultiprocRuntime: cross-runtime equivalence and routing mechanics.

The multiproc runtime trades determinism for parallelism, so its anchor is
*outcome* equivalence: a fixed workload driven through a full Chariots
deployment on real OS processes must converge to exactly the record sets,
per-host total orders, and causal structure the deterministic sim runtime
produces.  The unit tests cover the envelope/routing layer, the default
placement policy, the inline (``workers=0``) baseline mode, and the
pre-encoded zero-copy send path.
"""

import pytest

from repro.chariots import ChariotsDeployment
from repro.core import causal_order_respected
from repro.core.errors import ConfigurationError, SessionError
from repro.core.record import Record, RecordId
from repro.flstore.maintainer import LogMaintainer
from repro.flstore.range_map import OwnershipPlan
from repro.net.binary_codec import encode_value_binary
from repro.runtime.messages import RecordBatch
from repro.runtime.multiproc import (
    MultiprocRuntime,
    default_placement,
)
from repro.sim import SimRuntime

DCS = ["A", "B"]

#: Fixed workload: (datacenter, payload) appends — identical on every run.
WORKLOAD = [(DCS[i % 2], f"p{i}") for i in range(30)]


def _extract(deployment):
    """Comparable outcome: record-id sets, per-host orders, causal checks."""
    sets = deployment.record_sets()
    orders = {}
    for dc in DCS:
        entries = deployment[dc].all_entries()
        assert causal_order_respected([e.record for e in entries])
        for host in DCS:
            orders[(dc, host)] = [
                e.record.toid for e in entries if e.record.host == host
            ]
    return sets, orders


def run_workload_on_sim():
    runtime = SimRuntime()
    deployment = ChariotsDeployment(runtime, DCS, batch_size=8)
    clients = {dc: deployment.blocking_client(dc) for dc in DCS}
    for dc, payload in WORKLOAD:
        clients[dc].append(payload)
    assert deployment.settle(max_seconds=120)
    return _extract(deployment)


def run_workload_on_multiproc(workers):
    runtime = MultiprocRuntime(workers=workers)
    try:
        deployment = ChariotsDeployment(runtime, DCS, batch_size=8)
        runtime.start()
        clients = {dc: deployment.client(dc) for dc in DCS}
        acks = []
        for dc, payload in WORKLOAD:
            clients[dc].append(payload, on_done=acks.append)
        runtime.run_until(lambda: len(acks) == len(WORKLOAD), timeout=60)
        assert runtime.settle(
            lambda: deployment.converged() and deployment._pipelines_drained(),
            max_seconds=60,
        )
        return _extract(deployment)
    finally:
        runtime.stop()


class TestEquivalence:
    def test_multiproc_matches_sim_on_fixed_workload(self):
        """The tentpole anchor: multiproc ≡ sim — same record sets in every
        datacenter and identical per-host total orders."""
        sim_sets, sim_orders = run_workload_on_sim()
        mp_sets, mp_orders = run_workload_on_multiproc(workers=2)
        assert mp_sets == sim_sets
        assert mp_orders == sim_orders

    def test_inline_mode_matches_sim(self):
        """workers=0 pays the codec round trip but stays in one process."""
        sim_sets, _ = run_workload_on_sim()
        mp_sets, _ = run_workload_on_multiproc(workers=0)
        assert mp_sets == sim_sets


class TestPlacement:
    def test_data_plane_spreads_and_control_plane_stays_home(self):
        assert default_placement("A/store/0", 4) is not None
        assert default_placement("A/batcher/1", 4) is not None
        assert default_placement("B/queue/0", 4) is not None
        assert default_placement("A/client/1", 4) is None
        assert default_placement("A/controller", 4) is None
        assert default_placement("A/gc", 4) is None
        assert default_placement("supervisor", 4) is None

    def test_placement_is_stable_and_in_range(self):
        for name in ("A/store/0", "A/store/1", "B/filter/0"):
            first = default_placement(name, 3)
            assert first == default_placement(name, 3)
            assert first in (0, 1, 2)

    def test_zero_workers_places_everything_in_parent(self):
        assert default_placement("A/store/0", 0) is None


def _maintainer_runtime(workers):
    names = ["store/0", "store/1"]
    plan = OwnershipPlan(names, batch_size=100)
    runtime = MultiprocRuntime(
        workers=workers,
        placement=lambda name, w: (
            int(name[-1]) % w if w and name.startswith("store") else None
        ),
    )
    for name in names:
        runtime.register(LogMaintainer(name, plan, peers=names))
    return runtime


def _batch_payload(n=20):
    records = [
        Record(rid=RecordId("A", i + 1), body=b"x" * 32) for i in range(n)
    ]
    return encode_value_binary(RecordBatch(records)), n


class TestRouting:
    def test_send_encoded_reaches_worker_maintainers(self):
        runtime = _maintainer_runtime(workers=2)
        try:
            runtime.start()
            payload, n = _batch_payload()
            for _ in range(5):
                runtime.send_encoded("driver", "store/0", payload)
                runtime.send_encoded("driver", "store/1", payload)
            runtime.run_until(
                lambda: _stored_total(runtime) == 10 * n, timeout=30
            )
            assert runtime.messages_routed >= 10
            assert runtime.bytes_routed > 0
        finally:
            runtime.stop()

    def test_send_encoded_inline_decodes_lazily(self):
        runtime = _maintainer_runtime(workers=0)
        runtime.start()
        payload, n = _batch_payload()
        runtime.send_encoded("driver", "store/0", payload)
        runtime.run_for(0.05)
        assert runtime.actor("store/0").core.stored_count() == n

    def test_refresh_updates_existing_references(self):
        runtime = _maintainer_runtime(workers=2)
        try:
            shadow = runtime.actor("store/0")
            runtime.start()
            payload, n = _batch_payload()
            runtime.send_encoded("driver", "store/0", payload)
            runtime.run_until(
                lambda: runtime.fetch_actor("store/0").core.stored_count() == n,
                timeout=30,
            )
            assert shadow.core.stored_count() == 0  # stale until refreshed
            runtime.refresh_actors(["store/0"])
            assert shadow.core.stored_count() == n  # same object, new state
            assert runtime.actor("store/0") is shadow
        finally:
            runtime.stop()

    def test_unknown_destination_raises(self):
        runtime = MultiprocRuntime(workers=0)
        runtime.start()
        with pytest.raises(ConfigurationError, match="unknown actor"):
            runtime.send("src", "nobody", RecordBatch([]))

    def test_send_prepared_resends_one_frame_to_workers(self):
        runtime = _maintainer_runtime(workers=2)
        try:
            runtime.start()
            payload, n = _batch_payload()
            frame = runtime.prepare_encoded("driver", "store/1", payload)
            for _ in range(4):
                runtime.send_prepared(frame)
            runtime.run_until(
                lambda: runtime.peek("store/1", _stored_count) == 4 * n,
                timeout=30,
            )
            # Peer gossip between the maintainers also crosses the parent,
            # so the total is a floor, not an exact multiple.
            assert runtime.bytes_routed >= 4 * len(frame)
        finally:
            runtime.stop()

    def test_send_prepared_inline_decodes_locally(self):
        runtime = _maintainer_runtime(workers=0)
        runtime.start()
        payload, n = _batch_payload()
        frame = runtime.prepare_encoded("driver", "store/0", payload)
        runtime.send_prepared(frame)
        runtime.run_for(0.05)
        assert runtime.actor("store/0").core.stored_count() == n
        assert runtime.bytes_routed == 0  # nothing crossed a socket

    def test_prepare_encoded_unknown_actor_raises(self):
        runtime = _maintainer_runtime(workers=0)
        runtime.start()
        payload, _ = _batch_payload()
        with pytest.raises(ConfigurationError, match="unknown actor"):
            runtime.prepare_encoded("driver", "nobody", payload)

    def test_peek_runs_module_level_fn_in_worker(self):
        runtime = _maintainer_runtime(workers=2)
        try:
            runtime.start()
            assert runtime.peek("store/0", _stored_count) == 0
            payload, n = _batch_payload()
            runtime.send_encoded("driver", "store/0", payload)
            runtime.run_until(
                lambda: runtime.peek("store/0", _stored_count) == n, timeout=30
            )
        finally:
            runtime.stop()

    def test_worker_side_errors_surface_in_parent(self):
        runtime = _maintainer_runtime(workers=2)
        try:
            runtime.start()
            with pytest.raises(SessionError, match="worker"):
                runtime.peek("store/0", _raise_in_worker)
        finally:
            runtime.stop()

    def test_duplicate_registration_rejected(self):
        runtime = _maintainer_runtime(workers=0)
        plan = OwnershipPlan(["store/0"], batch_size=10)
        with pytest.raises(ConfigurationError, match="already registered"):
            runtime.register(LogMaintainer("store/0", plan, peers=[]))


def _stored_count(actor):
    return actor.core.stored_count()


def _raise_in_worker(actor):
    raise ValueError("boom")


def _stored_total(runtime):
    return sum(
        runtime.peek(name, _stored_count) for name in ("store/0", "store/1")
    )
