"""Tests for message payload sizing (the simulator's accounting inputs)."""


from repro.chariots.messages import (
    AdmittedBatch,
    DraftBatch,
    DraftRecord,
    FilterBatch,
    ReplicationShipment,
    Token,
    TokenPass,
)
from repro.flstore.messages import (
    AppendRequest,
    IndexUpdate,
    PlaceRecords,
    ReadNewReply,
    ReadReply,
)
from repro.core.record import LogEntry
from repro.runtime.messages import (
    CONTROL_MESSAGE_BYTES,
    Payload,
    RecordBatch,
    record_count_of,
    wire_size_of,
)

from conftest import rec


class TestGenericSizing:
    def test_control_message_defaults(self):
        assert record_count_of("plain string") == 0
        assert wire_size_of("plain string") == CONTROL_MESSAGE_BYTES

    def test_record_batch_counts_records(self):
        batch = RecordBatch([rec("A", 1), rec("A", 2)])
        assert record_count_of(batch) == 2
        assert wire_size_of(batch) > CONTROL_MESSAGE_BYTES

    def test_payload_base_class_without_records(self):
        assert Payload().record_count() == 0


class TestFLStoreMessageSizing:
    def test_append_request_counts_records(self):
        request = AppendRequest(1, records=[rec("A", t) for t in (1, 2, 3)])
        assert record_count_of(request) == 3

    def test_place_records_counts_placements(self):
        message = PlaceRecords(placements=[(0, rec("A", 1)), (1, rec("A", 2))])
        assert record_count_of(message) == 2
        assert wire_size_of(message) > 64

    def test_read_reply_counts_entries(self):
        reply = ReadReply(1, entries=[LogEntry(0, rec("A", 1))])
        assert record_count_of(reply) == 1

    def test_read_new_reply_counts_entries(self):
        reply = ReadNewReply(1, entries=[LogEntry(0, rec("A", 1))], upto=0)
        assert record_count_of(reply) == 1

    def test_index_update_counts_postings(self):
        update = IndexUpdate(postings=[("k", 1, 0), ("k", 2, 1)])
        assert record_count_of(update) == 2

    def test_wire_size_scales_with_record_size(self):
        big = AppendRequest(1, records=[rec("A", 1, body=b"\x00" * 1024)])
        small = AppendRequest(2, records=[rec("A", 2, body=b"\x00" * 64)])
        assert wire_size_of(big) > wire_size_of(small)


class TestChariotsMessageSizing:
    def test_draft_batch(self):
        drafts = [DraftRecord("c", i + 1, "x" * 100) for i in range(4)]
        batch = DraftBatch(drafts)
        assert record_count_of(batch) == 4
        assert wire_size_of(batch) >= 4 * 100

    def test_mixed_filter_batch(self):
        batch = FilterBatch(
            drafts=[DraftRecord("c", 1, "b")], externals=[rec("A", 1)]
        )
        assert record_count_of(batch) == 2

    def test_admitted_batch(self):
        batch = AdmittedBatch(externals=[rec("A", 1), rec("A", 2)])
        assert record_count_of(batch) == 2

    def test_token_pass_counts_deferred(self):
        token = Token(frontier={"A": 1}, next_lid=2, deferred=[rec("B", 2)])
        message = TokenPass(token)
        assert record_count_of(message) == 1
        assert wire_size_of(message) > 64

    def test_empty_token_pass_is_small(self):
        message = TokenPass(Token())
        assert record_count_of(message) == 0
        assert wire_size_of(message) < 256

    def test_replication_shipment(self):
        shipment = ReplicationShipment(
            from_dc="A", sender="s", maintainer="m", ship_seq=1,
            records=[rec("A", 1)], vector={"A": 1},
        )
        assert record_count_of(shipment) == 1

    def test_draft_record_size_measures_body(self):
        text = DraftRecord("c", 1, "x" * 200)
        blob = DraftRecord("c", 2, b"\x00" * 300)
        opaque = DraftRecord("c", 3, {"k": 1})
        assert text.size_bytes() == 200 + 32
        assert blob.size_bytes() == 300 + 32
        assert opaque.size_bytes(default_body_size=512) == 512 + 32


class TestLoadBalancingFeedback:
    def test_controller_learns_load_and_suggests(self):
        from repro.flstore import FLStore
        from repro.runtime import LocalRuntime

        runtime = LocalRuntime()
        store = FLStore(runtime, n_maintainers=3, n_indexers=0, batch_size=5)
        client = store.blocking_client()
        for i in range(30):
            client.append(f"b{i}")
        runtime.run_for(0.1)  # gossip ticks carry load reports
        assert store.controller.core.approx_records() == 30
        suggestion = store.controller.core.least_loaded_maintainer()
        assert suggestion in {m.name for m in store.maintainers}

    def test_new_sessions_receive_the_suggestion(self):
        from repro.flstore import FLStore
        from repro.runtime import LocalRuntime

        runtime = LocalRuntime()
        store = FLStore(runtime, n_maintainers=2, n_indexers=0, batch_size=5)
        first = store.blocking_client()
        for i in range(10):
            first.append(f"b{i}")
        runtime.run_for(0.1)
        late = store.client()
        runtime.run_until(lambda: late.session_ready)
        assert late._session.suggested_maintainer is not None
