"""The full Chariots pipeline over real TCP sockets (repro.net.aio_runtime)."""

import asyncio

import pytest

from repro.chariots import ChariotsDeployment
from repro.core import ReadRules, causal_order_respected
from repro.core.errors import ConfigurationError
from repro.net.aio_runtime import AioRuntime
from repro.net.codec import decode_message, encode_message


def run(coro):
    return asyncio.run(coro)


def _codec_samples():
    """One (or more) instances of every registered protocol message type.

    Bodies exercise the awkward value shapes both codecs must preserve:
    nested tuples-in-lists, bytes, non-string dict keys, large ints.
    """
    from repro.baseline.sequencer import ReservedRange, SequencerRequest
    from repro.chariots import messages as cmsg
    from repro.core import ReadRules, Record
    from repro.core.record import AppendResult, LogEntry, RecordId
    from repro.flstore import messages as fmsg

    record = Record.make("A", 1, {"k": [1, (2, 3)]}, tags={"t": 1}, deps={"B": 2})
    nested = Record.make(
        "B",
        7,
        {3: "int-key", "blob": b"\x00\xff", "deep": [{"x": (1, [2])}, None, 2**72]},
        tags={"t": -1.5},
    )
    entry = LogEntry(4, record)
    return [
        record,
        nested,
        record.rid,
        RecordId("dc/with:odd chars", 2**40),
        entry,
        AppendResult(record.rid, 9),
        ReadRules(min_lid=2, tag_key="t", tag_value=1, limit=5),
        cmsg.Token({"A": 1, "B": 3}, 2, [nested]),
        *_codec_message_samples(record, nested, entry, cmsg, fmsg),
        SequencerRequest(1, 4),
        ReservedRange(1, 0, 4),
    ]


def _codec_message_samples(record, nested, entry, cmsg, fmsg):
    from repro.core import ReadRules
    from repro.core.record import AppendResult

    return [
        fmsg.AppendRequest(1, [record, nested], min_lid=3, want_results=False),
        fmsg.AppendReply(1, [AppendResult(record.rid, 3)], count=5, error=None),
        fmsg.PlaceRecords([(0, record)]),
        fmsg.ReadRequest(2, lid=1),
        fmsg.ReadRequest(3, rules=ReadRules(tag_key="t", limit=2)),
        fmsg.ReadReply(2, [entry]),
        fmsg.ReadNewRequest(4, after_lid=7, limit=10),
        fmsg.ReadNewReply(4, [entry], upto=4),
        fmsg.GossipHL("m0", 12),
        fmsg.HeadRequest(5),
        fmsg.HeadReply(5, 11),
        fmsg.IndexUpdate([("k", 1, 0)]),
        fmsg.LookupRequest(6, "k", tag_value=1, limit=3),
        fmsg.LookupReply(6, [0, 2]),
        fmsg.SessionRequest(7),
        fmsg.SessionInfo(7, ["m0"], ["ix"], 10, 3, [(0, 10, ("m0",))], "m0"),
        fmsg.LoadReport("m0", 100, 2.5),
        fmsg.TruncateBelow({"A": 3}, keep_from_lid=9),
        fmsg.PruneIndexBelow(4),
        fmsg.GcReport("m0", 5),
        cmsg.DraftRecord("c", 1, "body", tags=(("t", 1),), deps=(("B", 2),)),
        cmsg.DraftBatch([cmsg.DraftRecord("c", 1, None)]),
        cmsg.FilterBatch(drafts=[cmsg.DraftRecord("c", 1, 1)], externals=[record]),
        cmsg.AdmittedBatch(externals=[record]),
        cmsg.TokenPass(cmsg.Token({"A": 1}, 2, [record])),
        cmsg.DraftCommitted("c", 1, record.rid, 0),
        cmsg.DraftCommitBatch([cmsg.DraftCommitted("c", 1, record.rid, 0)]),
        cmsg.FrontierUpdate({"A": 1}, 2),
        cmsg.ReplicationShipment("A", "s", "m", 1, [record], {"A": 1}, 0,
                                 atable={"A": {"A": 1}}),
        cmsg.ShipmentAck("m", 1, 0, "B"),
        cmsg.PeerVector("B", {"A": 1}, matrix={"B": {"A": 1}}),
        cmsg.AtableSnapshot({"A": {"A": 1}}),
        _record_batch_sample(record, nested),
    ]


def _record_batch_sample(record, nested):
    from repro.runtime.messages import RecordBatch

    return RecordBatch([record, nested])


class TestCodecCoverage:
    def test_samples_cover_the_whole_registry(self):
        """Every registered message type (and special value type) has a
        sample — adding a protocol message without one fails here."""
        from repro.net.codec import registered_message_types, special_value_types

        sampled = {type(m).__name__ for m in _codec_samples()}
        registry = set(registered_message_types()) | set(special_value_types())
        assert registry <= sampled, sorted(registry - sampled)

    def test_every_message_round_trips_as_json(self):
        """Full wire trip: tagged JSON must survive json.dumps/loads."""
        import json as jsonlib

        for message in _codec_samples():
            wire = jsonlib.dumps(encode_message(message))
            assert decode_message(jsonlib.loads(wire)) == message, message

    def test_every_message_round_trips_as_binary(self):
        from repro.net.binary_codec import (
            decode_message_binary,
            encode_message_binary,
        )

        for message in _codec_samples():
            wire = encode_message_binary(message)
            assert isinstance(wire, bytes)
            assert decode_message_binary(wire) == message, message


class TestPipelineOverSockets:
    def test_two_datacenters_converge_over_tcp(self):
        async def scenario():
            runtime = AioRuntime()
            deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=8)
            await runtime.start()
            try:
                ca = deployment.client("A")
                cb = deployment.client("B")
                acks = []
                for i in range(3):
                    ca.append(f"a{i}", on_done=acks.append)
                    cb.append(f"b{i}", on_done=acks.append)
                ok = await runtime.settle(
                    lambda: len(acks) == 6 and deployment.converged(),
                    max_seconds=15,
                )
                assert ok
                for dc in "AB":
                    records = [e.record for e in deployment[dc].all_entries()]
                    assert len(records) == 6
                    assert causal_order_respected(records)
                assert runtime.messages_routed > 20  # real frames crossed TCP
            finally:
                await runtime.stop()

        run(scenario())

    def test_reads_and_tag_lookups_over_tcp(self):
        async def scenario():
            runtime = AioRuntime()
            deployment = ChariotsDeployment(runtime, ["A"], batch_size=8)
            await runtime.start()
            try:
                client = deployment.client("A")
                acks = []
                for i in range(4):
                    client.append(f"v{i}", tags={"p": i % 2}, on_done=acks.append)
                assert await runtime.settle(lambda: len(acks) == 4, max_seconds=10)
                await runtime.run_for(0.1)  # postings flush to indexers

                replies = []
                client.read_rules(
                    ReadRules(tag_key="p", tag_value=1, limit=2), replies.append
                )
                assert await runtime.settle(lambda: bool(replies), max_seconds=10)
                entries = replies[0]
                assert len(entries) == 2
                assert all(e.record.tag_dict()["p"] == 1 for e in entries)
            finally:
                await runtime.stop()

        run(scenario())

    def test_send_requires_started_runtime(self):
        runtime = AioRuntime()

        class Dummy:
            name = "x"

        runtime._actors["x"] = Dummy()  # bypass registration for the check
        with pytest.raises(ConfigurationError):
            runtime.send("a", "x", "msg")

    def test_send_to_unknown_actor_rejected(self):
        async def scenario():
            runtime = AioRuntime()
            await runtime.start()
            try:
                with pytest.raises(ConfigurationError):
                    runtime.send("a", "ghost", "msg")
            finally:
                await runtime.stop()

        run(scenario())

    def test_real_time_timers_fire(self):
        async def scenario():
            from repro.runtime import Actor

            ticks = []

            class Ticker(Actor):
                def on_start(self):
                    self.set_timer(0.01, lambda: ticks.append(self.now), periodic=True)

                def on_message(self, sender, message):
                    pass

            runtime = AioRuntime()
            runtime.register(Ticker("tick"))
            await runtime.start()
            try:
                await runtime.run_for(0.08)
                assert len(ticks) >= 3
            finally:
                await runtime.stop()

        run(scenario())


class TestCodecErrors:
    def test_unencodable_value_rejected(self):
        from repro.core.errors import NetworkProtocolError
        from repro.net.codec import encode_value

        class Opaque:
            pass

        with pytest.raises(NetworkProtocolError):
            encode_value(Opaque())

    def test_unknown_tag_rejected(self):
        from repro.core.errors import NetworkProtocolError
        from repro.net.codec import decode_value

        with pytest.raises(NetworkProtocolError):
            decode_value({"$": "NoSuchType", "v": {}})

    def test_unregistered_top_level_message_rejected(self):
        from repro.core.errors import NetworkProtocolError
        from repro.net.codec import encode_message

        with pytest.raises(NetworkProtocolError):
            encode_message("a bare string is not a protocol message")

    def test_bytes_round_trip(self):
        from repro.net.codec import decode_value, encode_value

        blob = bytes(range(256))
        assert decode_value(encode_value(blob)) == blob

    def test_nested_container_types_preserved(self):
        from repro.net.codec import decode_value, encode_value

        value = {"a": (1, [2, {"b": b"\x00"}]), 3: "int-key"}
        restored = decode_value(encode_value(value))
        assert restored == value
        assert isinstance(restored["a"], tuple)
        assert isinstance(restored["a"][1], list)
