"""Table 1's positioning claims, encoded and asserted (§2.3)."""

from repro.bench import TABLE1, chariots_fills_the_void
from repro.bench.comparison import groups, render, systems_with


def test_chariots_is_the_only_causal_partitioned_replicated_system():
    assert chariots_fills_the_void()


def test_partitioned_systems_in_table_are_strong_and_unreplicated():
    for entry in systems_with("strong", True, False):
        assert entry.name in {
            "CORFU/Tango", "LogBase", "RAMCloud", "Blizzard", "Ivy", "Zebra", "Hyder",
        }


def test_replicated_strong_systems():
    names = {e.name for e in systems_with("strong", False, True)}
    assert names == {"Megastore", "Paxos-CP"}


def test_causal_replicated_unpartitioned_systems():
    names = {e.name for e in systems_with("causal", False, True)}
    assert names == {
        "Message Futures", "PRACTI", "Bayou", "Lazy Replication", "Replicated Dictionary",
    }


def test_table_has_four_groups_like_the_paper():
    assert len(groups()) == 4


def test_render_mentions_every_system():
    text = render()
    for entry in TABLE1:
        assert entry.name in text
