"""Tests for the asyncio TCP deployment of FLStore (repro.net)."""

import asyncio

import pytest

from repro.core import ChariotsError, ReadRules
from repro.net.deploy import FLStoreNetDeployment
from repro.net.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    decode_body,
    encode_frame,
    encode_frame_binary,
    entry_from_dict,
    entry_to_dict,
    record_from_dict,
    record_to_dict,
    rules_from_dict,
    rules_to_dict,
)
from repro.core.errors import NetworkProtocolError
from repro.core.record import LogEntry

from conftest import rec


def run(coro):
    return asyncio.run(coro)


class TestProtocol:
    def test_record_round_trip(self):
        record = rec("A", 3, body="hello", deps={"B": 2}, tags={"k": 1})
        assert record_from_dict(record_to_dict(record)) == record

    def test_entry_round_trip(self):
        entry = LogEntry(9, rec("A", 1))
        assert entry_from_dict(entry_to_dict(entry)) == entry

    def test_rules_round_trip(self):
        rules = ReadRules(tag_key="k", tag_value=5, limit=3, max_lid=10, most_recent=False)
        restored = rules_from_dict(rules_to_dict(rules))
        assert restored.tag_key == "k"
        assert restored.limit == 3
        assert restored.most_recent is False

    def test_frame_round_trip(self):
        frame = encode_frame({"type": "x", "n": 1})
        assert decode_body(frame[4:]) == {"type": "x", "n": 1}

    def test_binary_frame_round_trip(self):
        frame = encode_frame_binary({"type": "x", "n": 1})
        assert decode_body(frame[4:]) == {"type": "x", "n": 1}

    def test_body_format_detected_per_frame(self):
        """Servers mirror the arrival format, so both encodings of the same
        message must decode identically."""
        message = {"type": "read", "request_id": 7, "lid": 3}
        assert decode_body(encode_frame(message)[4:]) == decode_body(
            encode_frame_binary(message)[4:]
        )

    def test_malformed_frame_rejected(self):
        with pytest.raises(NetworkProtocolError):
            decode_body(b"\xff\xfe not json")

    def test_untyped_message_rejected(self):
        import json

        with pytest.raises(NetworkProtocolError):
            decode_body(json.dumps({"no": "type"}).encode())


class TestNetDeployment:
    def test_append_and_read_over_tcp(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=3, batch_size=5)
            await deployment.start()
            try:
                client = await deployment.client()
                results = [await client.append(f"v{i}") for i in range(12)]
                assert len({r.lid for r in results}) == 12
                entry = await client.read_lid(results[0].lid)
                assert entry.record.body == "v0"
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_head_advances_over_tcp_gossip(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=2, batch_size=4)
            await deployment.start()
            try:
                client = await deployment.client()
                for i in range(10):
                    await client.append(f"v{i}")
                await asyncio.sleep(0.05)  # a few gossip rounds
                head = await client.head()
                assert head >= 0
                for lid in range(head + 1):
                    await client.read_lid(lid)  # must not raise
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_tag_lookup_via_index_pump(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=2, n_indexers=1, batch_size=4)
            await deployment.start()
            try:
                client = await deployment.client()
                for i in range(8):
                    await client.append(f"v{i}", tags={"p": i % 2})
                await asyncio.sleep(0.08)  # index pump round
                entries = await client.read(ReadRules(tag_key="p", tag_value=1, limit=2))
                assert len(entries) == 2
                assert all(e.record.tag_dict()["p"] == 1 for e in entries)
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_remote_error_surfaces_as_exception(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=1, batch_size=4)
            await deployment.start()
            try:
                client = await deployment.client()
                with pytest.raises(ChariotsError):
                    await client.read_lid(999)  # beyond the log
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_multiple_clients_share_the_log(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=2, batch_size=4)
            await deployment.start()
            try:
                c1 = await deployment.client("one")
                c2 = await deployment.client("two")
                r1 = await c1.append("from-one")
                entry = await c2.read_lid(r1.lid)
                assert entry.record.body == "from-one"
                await c1.close()
                await c2.close()
            finally:
                await deployment.stop()

        run(scenario())


class TestCodecInterop:
    """Old (JSON-only) and new (binary-preferring) peers share one log."""

    def test_mixed_codec_clients_share_the_log(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=2, batch_size=4)
            await deployment.start()
            try:
                modern = await deployment.client("modern", codec=CODEC_BINARY)
                legacy = await deployment.client("legacy", codec=CODEC_JSON)
                r1 = await modern.append("from-binary", tags={"k": 1})
                r2 = await legacy.append("from-json", tags={"k": 2})
                # Each client reads the other's record through the same flow.
                assert (await legacy.read_lid(r1.lid)).record.body == "from-binary"
                assert (await modern.read_lid(r2.lid)).record.body == "from-json"
                await modern.close()
                await legacy.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_binary_client_negotiates_binary(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=1, batch_size=4)
            await deployment.start()
            try:
                client = await deployment.client("c", codec=CODEC_BINARY)
                await client.append("v")
                assert next(iter(client._maintainers.values())).codec == CODEC_BINARY
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_json_client_skips_negotiation(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=1, batch_size=4)
            await deployment.start()
            try:
                client = await deployment.client("c", codec=CODEC_JSON)
                await client.append("v")
                assert next(iter(client._maintainers.values())).codec == CODEC_JSON
                await client.close()
            finally:
                await deployment.stop()

        run(scenario())


class TestConcurrency:
    def test_parallel_appends_from_many_tasks(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=3, batch_size=10)
            await deployment.start()
            try:
                clients = [await deployment.client(f"c{i}") for i in range(4)]

                async def writer(client, n):
                    return [await client.append(f"{client.client_id}-{i}") for i in range(n)]

                results = await asyncio.gather(*(writer(c, 10) for c in clients))
                lids = [r.lid for batch in results for r in batch]
                assert len(lids) == len(set(lids)) == 40  # no collisions
                for client in clients:
                    await client.close()
            finally:
                await deployment.stop()

        run(scenario())

    def test_interleaved_reads_and_writes(self):
        async def scenario():
            deployment = FLStoreNetDeployment(n_maintainers=2, batch_size=5)
            await deployment.start()
            try:
                writer = await deployment.client("writer")
                reader = await deployment.client("reader")

                async def write_loop():
                    return [await writer.append(f"w{i}") for i in range(20)]

                async def read_loop(results_future):
                    await asyncio.sleep(0.01)
                    seen = 0
                    for _ in range(50):
                        head = await reader.head()
                        seen = max(seen, head + 1)
                        await asyncio.sleep(0.005)
                    return seen

                writes, seen = await asyncio.gather(write_loop(), read_loop(None))
                assert len(writes) == 20
                assert seen > 0  # the reader observed progress concurrently
                await writer.close()
                await reader.close()
            finally:
                await deployment.stop()

        run(scenario())
