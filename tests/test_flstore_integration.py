"""Integration tests for a full FLStore deployment (§5)."""

import pytest

from repro.chariots.elasticity import expand_maintainers
from repro.core import ReadRules
from repro.flstore import FLStore
from repro.runtime import LocalRuntime


@pytest.fixture
def deployment():
    runtime = LocalRuntime()
    store = FLStore(runtime, n_maintainers=3, n_indexers=2, batch_size=10)
    return runtime, store


class TestAppendRead:
    def test_round_trip(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        result = client.append("hello", tags={"topic": "x"})
        assert client.read_lid(result.lid).entries[0].record.body == "hello"

    def test_lids_are_unique_across_maintainers(self, deployment):
        runtime, store = deployment
        clients = [store.blocking_client() for _ in range(3)]
        lids = [c.append(f"b{i}").lid for i in range(10) for c in clients]
        assert len(set(lids)) == len(lids)

    def test_all_records_stored_exactly_once(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        for i in range(25):
            client.append(f"b{i}")
        assert store.total_records() == 25

    def test_batch_append(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        records = [client.client.make_record(f"b{i}") for i in range(5)]
        results = client.append_records(records)
        assert len(results) == 5
        assert [r.rid for r in results] == [rec.rid for rec in records]


class TestHeadOfLog:
    def test_head_advances_after_gossip(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        for i in range(25):
            client.append(f"b{i}")
        runtime.run_for(0.1)  # several gossip rounds
        head = client.head()
        assert head >= 0
        # §5.4 invariant: every position at or below HL is readable.
        for lid in range(head + 1):
            assert client.read_lid(lid).error is None

    def test_head_is_conservative_before_gossip(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        client.append("only")
        # Without a gossip round other maintainers are presumed empty.
        assert client.head() <= 0


class TestIndexedReads:
    def test_read_by_tag_via_indexers(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        for i in range(12):
            client.append(f"b{i}", tags={"parity": i % 2})
        runtime.run_for(0.1)  # flush postings to indexers
        entries = client.read(ReadRules(tag_key="parity", tag_value=1, limit=3))
        assert len(entries) == 3
        assert all(e.record.tag_dict()["parity"] == 1 for e in entries)

    def test_scatter_gather_scan_without_tag(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        for i in range(9):
            client.append(f"b{i}")
        entries = client.read(ReadRules(limit=4))
        assert len(entries) == 4
        lids = [e.lid for e in entries]
        assert lids == sorted(lids, reverse=True)


class TestExplicitOrder:
    def test_min_lid_enforced_across_maintainers(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        first = client.append("first")
        second = client.append("second", min_lid=first.lid)
        assert second.lid > first.lid


class TestControllerSession:
    def test_session_reports_topology(self, deployment):
        runtime, store = deployment
        client = store.client()
        runtime.run_until(lambda: client.session_ready)
        assert len(client._session.maintainers) == 3
        assert len(client._session.indexers) == 2
        assert client._session.batch_size == 10

    def test_clients_start_on_different_maintainers(self, deployment):
        runtime, store = deployment
        c1 = store.blocking_client()
        c2 = store.blocking_client()
        l1 = c1.append("a").lid
        l2 = c2.append("b").lid
        assert store.plan.owner(l1) != store.plan.owner(l2)


class TestFLStoreElasticity:
    def test_expand_maintainers_on_live_store(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        for i in range(20):
            client.append(f"pre{i}")
        added = expand_maintainers(store, 1)
        assert len(store.maintainers) == 4
        # New appends eventually reach the new maintainer's ranges.
        client2 = store.blocking_client()
        for i in range(200):
            client2.append(f"post{i}")
        runtime.run_for(0.2)
        assert store.total_records() == 220
        assert added[0].core.stored_count() >= 0  # participates without error

    def test_old_records_remain_readable_after_expansion(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        results = [client.append(f"pre{i}") for i in range(15)]
        expand_maintainers(store, 1)
        for result in results:
            assert client.read_lid(result.lid).entries[0].record.body.startswith("pre")


class TestCallbackClientApi:
    def test_append_callback_fires_with_result(self, deployment):
        runtime, store = deployment
        client = store.client()
        results = []
        client.append("x", on_done=results.append)
        runtime.run_until(lambda: bool(results))
        assert results[0].lid >= 0

    def test_append_without_callback_is_fire_and_forget(self, deployment):
        runtime, store = deployment
        client = store.client()
        client.append("silent")
        runtime.run_for(0.05)
        assert store.total_records() == 1

    def test_operations_queue_until_session_ready(self, deployment):
        runtime, store = deployment
        client = store.client()
        results = []
        # Issued before the session reply has been processed.
        client.append("early", on_done=results.append)
        assert not client.session_ready
        runtime.run_until(lambda: bool(results))
        assert results[0].lid >= 0

    def test_head_callback(self, deployment):
        runtime, store = deployment
        client = store.blocking_client()
        client.append("x")
        runtime.run_for(0.1)
        heads = []
        client.client.head(heads.append)
        runtime.run_until(lambda: bool(heads))
        assert isinstance(heads[0], int)
