"""Tests for Message Futures and Helios transactions (§4.3)."""

import pytest

from repro.apps import HeliosManager, MessageFuturesManager
from repro.chariots import ChariotsDeployment
from repro.core import TransactionAborted
from repro.runtime import LocalRuntime


def make_world(dcs=("A", "B")):
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, list(dcs), batch_size=8)
    clients = {dc: deployment.blocking_client(dc) for dc in dcs}
    return runtime, deployment, clients


def pump_until(deployment, managers, predicate, rounds=30):
    for _ in range(rounds):
        deployment.settle(max_seconds=2)
        for manager in managers:
            manager.pump()
        if predicate():
            return True
    return False


class TestMessageFutures:
    def test_single_transaction_commits(self):
        runtime, deployment, clients = make_world()
        ma = MessageFuturesManager("A", clients["A"], ["A", "B"])
        mb = MessageFuturesManager("B", clients["B"], ["A", "B"])
        txn = ma.begin()
        txn.write("k", 1)
        pending = txn.commit()
        assert pump_until(deployment, [ma, mb], lambda: pending.decided)
        assert pending.committed
        assert pending.result() is True

    def test_committed_state_converges(self):
        runtime, deployment, clients = make_world()
        ma = MessageFuturesManager("A", clients["A"], ["A", "B"])
        mb = MessageFuturesManager("B", clients["B"], ["A", "B"])
        txn = ma.begin()
        txn.write("balance", 100)
        pending = txn.commit()
        assert pump_until(
            deployment, [ma, mb],
            lambda: pending.decided and mb.decision(pending.txn_id) is not None,
        )
        assert ma.committed_state() == mb.committed_state() == {"balance": 100}

    def test_conflicting_concurrent_transactions_one_survives(self):
        runtime, deployment, clients = make_world()
        ma = MessageFuturesManager("A", clients["A"], ["A", "B"])
        mb = MessageFuturesManager("B", clients["B"], ["A", "B"])
        ta = ma.begin(); ta.write("k", "from-A")
        tb = mb.begin(); tb.write("k", "from-B")
        pa = ta.commit()
        pb = tb.commit()
        assert pump_until(
            deployment, [ma, mb],
            lambda: pa.decided and pb.decided
            and mb.decision(pa.txn_id) is not None
            and ma.decision(pb.txn_id) is not None,
        )
        outcomes = sorted([pa.committed, pb.committed])
        assert outcomes == [False, True]  # exactly one commits
        # Both managers agree on both decisions.
        assert ma.decision(pa.txn_id) == mb.decision(pa.txn_id)
        assert ma.decision(pb.txn_id) == mb.decision(pb.txn_id)
        assert ma.committed_state() == mb.committed_state()

    def test_aborted_transaction_raises(self):
        runtime, deployment, clients = make_world()
        ma = MessageFuturesManager("A", clients["A"], ["A", "B"])
        mb = MessageFuturesManager("B", clients["B"], ["A", "B"])
        ta = ma.begin(); ta.write("k", 1)
        tb = mb.begin(); tb.write("k", 2)
        pa, pb = ta.commit(), tb.commit()
        assert pump_until(deployment, [ma, mb], lambda: pa.decided and pb.decided)
        loser = pa if not pa.committed else pb
        with pytest.raises(TransactionAborted):
            loser.result()

    def test_disjoint_concurrent_transactions_both_commit(self):
        runtime, deployment, clients = make_world()
        ma = MessageFuturesManager("A", clients["A"], ["A", "B"])
        mb = MessageFuturesManager("B", clients["B"], ["A", "B"])
        ta = ma.begin(); ta.write("x", 1)
        tb = mb.begin(); tb.write("y", 2)
        pa, pb = ta.commit(), tb.commit()
        assert pump_until(deployment, [ma, mb], lambda: pa.decided and pb.decided)
        assert pa.committed and pb.committed

    def test_causally_ordered_transactions_both_commit(self):
        runtime, deployment, clients = make_world()
        ma = MessageFuturesManager("A", clients["A"], ["A", "B"])
        mb = MessageFuturesManager("B", clients["B"], ["A", "B"])
        ta = ma.begin(); ta.write("k", 1)
        pa = ta.commit()
        assert pump_until(deployment, [ma, mb], lambda: pa.decided)
        # B saw A's transaction; B's next write to k is causally later.
        assert pump_until(deployment, [ma, mb], lambda: mb.committed_value("k") == 1)
        tb = mb.begin()
        assert tb.read("k") == 1
        tb.write("k", 2)
        pb = tb.commit()
        assert pump_until(deployment, [ma, mb], lambda: pb.decided)
        assert pb.committed
        assert pump_until(deployment, [ma, mb], lambda: ma.committed_value("k") == 2)

    def test_reads_come_from_committed_snapshot(self):
        runtime, deployment, clients = make_world()
        ma = MessageFuturesManager("A", clients["A"], ["A", "B"])
        txn = ma.begin()
        assert txn.read("unset") is None
        txn.write("unset", 5)
        assert txn.read("unset") == 5  # read-your-own-writes in the buffer

    def test_three_datacenters(self):
        runtime, deployment, clients = make_world(("A", "B", "C"))
        managers = [
            MessageFuturesManager(dc, clients[dc], ["A", "B", "C"]) for dc in "ABC"
        ]
        txn = managers[0].begin()
        txn.write("k", "v")
        pending = txn.commit()
        assert pump_until(deployment, managers, lambda: pending.decided, rounds=60)
        assert pending.committed


class TestHelios:
    def make_managers(self, deployment, clients, delay=0.001):
        return [
            HeliosManager(
                dc,
                clients[dc],
                ["A", "B"],
                default_delay=delay,
                clock=lambda rt=deployment.runtime: rt.now,
            )
            for dc in "AB"
        ]

    def test_single_transaction_commits(self):
        runtime, deployment, clients = make_world()
        ha, hb = self.make_managers(deployment, clients)
        txn = ha.begin()
        txn.write("k", 1)
        pending = txn.commit()
        assert pump_until(deployment, [ha, hb], lambda: pending.decided)
        assert pending.committed

    def test_decisions_replicate_to_peers(self):
        runtime, deployment, clients = make_world()
        ha, hb = self.make_managers(deployment, clients)
        txn = ha.begin()
        txn.write("k", "v")
        pending = txn.commit()
        assert pump_until(
            deployment, [ha, hb],
            lambda: hb.decision(pending.txn_id) is not None,
        )
        assert hb.committed_value("k") == "v"

    def test_conflicting_transactions_exactly_one_commits(self):
        runtime, deployment, clients = make_world()
        ha, hb = self.make_managers(deployment, clients)
        ta = ha.begin(); ta.write("k", "a")
        tb = hb.begin(); tb.write("k", "b")
        pa, pb = ta.commit(), tb.commit()
        assert pump_until(
            deployment, [ha, hb],
            lambda: ha.decision(pa.txn_id) is not None
            and ha.decision(pb.txn_id) is not None
            and hb.decision(pa.txn_id) is not None
            and hb.decision(pb.txn_id) is not None,
            rounds=60,
        )
        assert [ha.decision(pa.txn_id), ha.decision(pb.txn_id)].count(True) == 1
        assert ha.decision(pa.txn_id) == hb.decision(pa.txn_id)
        assert ha.committed_state() == hb.committed_state()

    def test_commit_bound_includes_skew(self):
        runtime, deployment, clients = make_world()
        manager = HeliosManager(
            "A", clients["A"], ["A", "B"], default_delay=0.05, max_skew=0.01
        )
        assert manager.commit_bound("B") == pytest.approx(0.06)

    def test_explicit_delay_bounds_per_peer(self):
        runtime, deployment, clients = make_world()
        manager = HeliosManager(
            "A", clients["A"], ["A", "B"],
            one_way_delay={"B": 0.2}, default_delay=0.05,
        )
        assert manager.commit_bound("B") == pytest.approx(0.2)
