"""Unit tests for the individual pipeline stages (§6.2)."""


from repro.chariots.batcher import Batcher
from repro.chariots.filters import FilterMap
from repro.chariots.gc import GcCoordinator
from repro.chariots.messages import AdmittedBatch, DraftBatch, DraftRecord, FilterBatch, PeerVector, ShipmentAck
from repro.chariots.queues import QueueStage
from repro.chariots.receiver import Receiver
from repro.chariots.sender import Sender
from repro.core import PipelineConfig
from repro.flstore.maintainer import LogMaintainer
from repro.flstore.range_map import OwnershipPlan
from repro.runtime import LocalRuntime
from repro.sim.workload import SinkActor

from conftest import rec


def draft(client, seq, body=None):
    return DraftRecord(client=client, seq=seq, body=body or f"{client}:{seq}")


class TestBatcher:
    def make(self, threshold=3, interval=0.01):
        runtime = LocalRuntime()
        fmap = FilterMap(["filter"])
        sink = SinkActor("filter")
        runtime.register(sink)
        batcher = Batcher(
            "batcher",
            fmap,
            config=PipelineConfig(
                batcher_flush_threshold=threshold, batcher_flush_interval=interval
            ),
        )
        runtime.register(batcher)
        runtime.start()
        return runtime, batcher, sink

    def test_flush_on_threshold(self):
        runtime, batcher, sink = self.make(threshold=3)
        batcher.on_message("client", DraftBatch([draft("c", i + 1) for i in range(3)]))
        runtime.loop.run(max_events=10)
        assert len(sink.messages) == 1
        assert sink.records_received == 3

    def test_buffers_below_threshold(self):
        runtime, batcher, sink = self.make(threshold=10, interval=60.0)
        batcher.on_message("client", DraftBatch([draft("c", 1)]))
        runtime.loop.run(until_time=0.5)
        assert sink.messages == []

    def test_timer_flushes_partial_buffers(self):
        runtime, batcher, sink = self.make(threshold=100, interval=0.01)
        batcher.on_message("client", DraftBatch([draft("c", 1)]))
        runtime.run_for(0.05)
        assert sink.records_received == 1

    def test_external_records_route_by_champion(self):
        runtime = LocalRuntime()
        fmap = FilterMap(["f0", "f1"])
        fmap.assign_host("A", ["f0"])
        fmap.assign_host("B", ["f1"])
        sinks = {name: SinkActor(name) for name in ("f0", "f1")}
        for sink in sinks.values():
            runtime.register(sink)
        batcher = Batcher(
            "batcher", fmap, config=PipelineConfig(batcher_flush_threshold=1)
        )
        runtime.register(batcher)
        runtime.start()
        batcher.on_message("recv", FilterBatch(externals=[rec("A", 1), rec("B", 1)]))
        runtime.loop.run(max_events=10)
        assert sinks["f0"].records_received == 1
        assert sinks["f1"].records_received == 1

    def test_counts_records(self):
        runtime, batcher, sink = self.make()
        batcher.on_message("client", DraftBatch([draft("c", 1), draft("c", 2)]))
        assert batcher.records_batched == 2


class TestQueueStage:
    def make_solo(self):
        runtime = LocalRuntime()
        plan = OwnershipPlan(["store"], batch_size=10)
        store = LogMaintainer("store", plan, peers=["store"])
        runtime.register(store)
        listener = SinkActor("listener")
        runtime.register(listener)
        queue = QueueStage(
            "queue", "A", plan, frontier_listeners=["listener"],
            holds_initial_token=True,
        )
        runtime.register(queue)
        runtime.start()
        return runtime, queue, store, listener

    def test_drafts_get_dense_toids_and_lids(self):
        runtime, queue, store, _ = self.make_solo()
        client = SinkActor("client")
        runtime.register(client)
        queue.on_message("f", AdmittedBatch(drafts=[draft("client", 1), draft("client", 2)]))
        runtime.loop.run(max_events=20)
        entries = store.core.stored_entries()
        assert [(e.lid, e.record.toid) for e in entries] == [(0, 1), (1, 2)]

    def test_externals_deferred_until_dependencies(self):
        runtime, queue, store, _ = self.make_solo()
        b2 = rec("B", 2)
        queue.on_message("f", AdmittedBatch(externals=[b2]))
        runtime.loop.run(max_events=20)
        assert queue.deferred_count == 1
        assert store.core.stored_count() == 0
        queue.on_message("f", AdmittedBatch(externals=[rec("B", 1)]))
        runtime.loop.run(max_events=20)
        assert queue.deferred_count == 0
        assert store.core.stored_count() == 2

    def test_frontier_updates_emitted(self):
        runtime, queue, store, listener = self.make_solo()
        client = SinkActor("client")
        runtime.register(client)
        queue.on_message("f", AdmittedBatch(drafts=[draft("client", 1)]))
        runtime.loop.run(max_events=20)
        from repro.chariots.messages import FrontierUpdate

        updates = [m for m in listener.messages if isinstance(m, FrontierUpdate)]
        assert updates and updates[-1].vector == {"A": 1}

    def test_duplicate_externals_dropped(self):
        runtime, queue, store, _ = self.make_solo()
        record = rec("B", 1)
        queue.on_message("f", AdmittedBatch(externals=[record]))
        queue.on_message("f", AdmittedBatch(externals=[record]))
        runtime.loop.run(max_events=30)
        assert store.core.stored_count() == 1

    def test_token_passes_in_a_ring(self):
        runtime = LocalRuntime()
        plan = OwnershipPlan(["store"], batch_size=10)
        store = LogMaintainer("store", plan, peers=["store"])
        runtime.register(store)
        config = PipelineConfig(token_hold_interval=0.001)
        q0 = QueueStage("q0", "A", plan, next_queue="q1", config=config,
                        holds_initial_token=True)
        q1 = QueueStage("q1", "A", plan, next_queue="q0", config=config)
        runtime.register_all([q0, q1])
        runtime.start()
        runtime.run_for(0.0015)
        assert not q0.holds_token
        assert q1.holds_token
        runtime.run_for(0.001)
        assert q0.holds_token

    def test_buffered_work_processed_on_token_arrival(self):
        runtime = LocalRuntime()
        plan = OwnershipPlan(["store"], batch_size=10)
        store = LogMaintainer("store", plan, peers=["store"])
        runtime.register(store)
        config = PipelineConfig(token_hold_interval=0.001)
        q0 = QueueStage("q0", "A", plan, next_queue="q1", config=config,
                        holds_initial_token=True)
        q1 = QueueStage("q1", "A", plan, next_queue="q0", config=config)
        client = SinkActor("client")
        runtime.register_all([q0, q1, client])
        runtime.start()
        q1.on_message("f", AdmittedBatch(drafts=[draft("client", 1)]))
        assert store.core.stored_count() == 0  # q1 has no token yet
        runtime.run_for(0.005)
        assert store.core.stored_count() == 1

    def test_deferred_records_travel_with_the_token(self):
        runtime = LocalRuntime()
        plan = OwnershipPlan(["store"], batch_size=10)
        store = LogMaintainer("store", plan, peers=["store"])
        runtime.register(store)
        config = PipelineConfig(token_hold_interval=0.001, token_deferred_limit=10)
        q0 = QueueStage("q0", "A", plan, next_queue="q1", config=config,
                        holds_initial_token=True)
        q1 = QueueStage("q1", "A", plan, next_queue="q0", config=config)
        runtime.register_all([q0, q1])
        runtime.start()
        q0.on_message("f", AdmittedBatch(externals=[rec("B", 2)]))  # blocked on B:1
        runtime.run_for(0.0015)  # token moved to q1 carrying the deferral
        q1.on_message("f", AdmittedBatch(externals=[rec("B", 1)]))
        runtime.run_for(0.005)
        assert store.core.stored_count() == 2


class TestSenderReceiver:
    def make_pair(self, transitive=False):
        runtime = LocalRuntime()
        plan = OwnershipPlan(["A/store"], batch_size=10)
        store = LogMaintainer("A/store", plan, peers=["A/store"])
        batcher_sink = SinkActor("B/batcher")
        gc_sink = SinkActor("B/gc")
        receiver = Receiver("B/recv", "B", batchers=["B/batcher"], gc_coordinator="B/gc")
        sender = Sender(
            "A/send", "A", maintainers=["A/store"],
            peer_receivers={"B": ["B/recv"]},
            config=PipelineConfig(replication_interval=0.01),
            transitive=transitive,
        )
        runtime.register_all([store, batcher_sink, gc_sink, receiver, sender])
        runtime.start()
        return runtime, store, sender, receiver, batcher_sink, gc_sink

    def test_local_records_flow_to_remote_batchers(self):
        runtime, store, sender, receiver, batcher_sink, _ = self.make_pair()
        store.core.append([rec("A", t) for t in (1, 2, 3)])
        runtime.run_for(0.05)
        assert batcher_sink.records_received == 3
        assert receiver.shipments_received >= 1

    def test_external_records_not_forwarded_in_direct_mode(self):
        runtime, store, sender, receiver, batcher_sink, _ = self.make_pair()
        store.core.append([rec("C", 1)])  # an external record in A's log
        runtime.run_for(0.05)
        assert batcher_sink.records_received == 0

    def test_transitive_mode_forwards_third_party_records(self):
        runtime, store, sender, receiver, batcher_sink, _ = self.make_pair(transitive=True)
        store.core.append([rec("C", 1)])
        runtime.run_for(0.05)
        assert batcher_sink.records_received == 1

    def test_transitive_mode_never_echoes_peers_own_records(self):
        runtime, store, sender, receiver, batcher_sink, _ = self.make_pair(transitive=True)
        store.core.append([rec("B", 1)])  # B's own record, held at A
        runtime.run_for(0.05)
        assert batcher_sink.records_received == 0

    def test_retransmission_until_acked(self):
        runtime = LocalRuntime(
            drop_fn=lambda s, d, m: isinstance(m, ShipmentAck) and runtime.now < 0.3
        )
        plan = OwnershipPlan(["A/store"], batch_size=10)
        store = LogMaintainer("A/store", plan, peers=["A/store"])
        batcher_sink = SinkActor("B/batcher")
        receiver = Receiver("B/recv", "B", batchers=["B/batcher"])
        sender = Sender(
            "A/send", "A", maintainers=["A/store"],
            peer_receivers={"B": ["B/recv"]},
            config=PipelineConfig(replication_interval=0.01),
            retransmit_timeout=0.05,
        )
        runtime.register_all([store, batcher_sink, receiver, sender])
        runtime.start()
        store.core.append([rec("A", 1)])
        runtime.run_for(0.6)
        # Acks dropped early -> retransmissions -> eventually acked.
        assert receiver.shipments_received > 1
        assert sender.buffered_records() == 0  # compacted after the ack

    def test_buffer_compaction_after_all_peers_ack(self):
        runtime, store, sender, receiver, batcher_sink, _ = self.make_pair()
        store.core.append([rec("A", t) for t in (1, 2)])
        runtime.run_for(0.1)
        assert sender.buffered_records() == 0

    def test_vector_reaches_remote_gc(self):
        runtime, store, sender, receiver, batcher_sink, gc_sink = self.make_pair()
        sender.on_message("queue", __import__(
            "repro.chariots.messages", fromlist=["FrontierUpdate"]
        ).FrontierUpdate({"A": 5}, 5))
        store.core.append([rec("A", 1)])
        runtime.run_for(0.05)
        vectors = [m for m in gc_sink.messages if isinstance(m, PeerVector)]
        assert vectors and vectors[-1].vector.get("A") == 5


class TestGcCoordinator:
    def test_sweep_truncates_when_everyone_knows(self):
        runtime = LocalRuntime()
        plan = OwnershipPlan(["store"], batch_size=10)
        store = LogMaintainer("store", plan, peers=["store"])
        gc = GcCoordinator(
            "gc", "A", ["A", "B"], maintainers=["store"],
            config=PipelineConfig(gc_interval=0.01),
        )
        runtime.register_all([store, gc])
        runtime.start()
        store.core.place(0, rec("A", 1))
        from repro.chariots.messages import FrontierUpdate

        gc.on_message("queue", FrontierUpdate({"A": 1}, 1))
        gc.on_message("recv", PeerVector("B", {"A": 1}))
        runtime.run_for(0.05)
        assert store.core.stored_count() == 0

    def test_no_truncation_without_universal_knowledge(self):
        runtime = LocalRuntime()
        plan = OwnershipPlan(["store"], batch_size=10)
        store = LogMaintainer("store", plan, peers=["store"])
        gc = GcCoordinator(
            "gc", "A", ["A", "B"], maintainers=["store"],
            config=PipelineConfig(gc_interval=0.01),
        )
        runtime.register_all([store, gc])
        runtime.start()
        store.core.place(0, rec("A", 1))
        from repro.chariots.messages import FrontierUpdate

        gc.on_message("queue", FrontierUpdate({"A": 1}, 1))  # B silent
        runtime.run_for(0.05)
        assert store.core.stored_count() == 1

    def test_matrix_merge_from_peer(self):
        runtime = LocalRuntime()
        gc = GcCoordinator("gc", "A", ["A", "B", "C"], maintainers=[])
        runtime.register(gc)
        runtime.start()
        gc.on_message(
            "recv",
            PeerVector("B", {"A": 3}, matrix={"C": {"A": 2, "B": 0, "C": 0}}),
        )
        assert gc.atable.get("B", "A") == 3
        assert gc.atable.get("C", "A") == 2  # learned transitively
