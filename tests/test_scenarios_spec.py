"""ScenarioSpec round-trip, tag filtering, invariants, and path resolution."""

import pytest

from repro.core.errors import ConfigurationError
from repro.scenarios import (
    CATALOG,
    BaselineCheck,
    Invariant,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    check_invariants,
    filter_specs,
    resolve_path,
    resolve_profile,
)


# --------------------------------------------------------------------- #
# Round-trip
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("spec", CATALOG, ids=[s.name for s in CATALOG])
def test_every_catalog_entry_roundtrips_through_json(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_roundtrip_preserves_faults_and_sweep():
    spec = ScenarioSpec(
        name="rt",
        title="round trip",
        kind="flstore",
        faults={"seed": 3, "rules": [{"kind": "drop", "probability": 0.1}],
                "crashes": [], "partitions": []},
        sweep=({"label": "a", "workload": {"target_rate": 1000.0}},),
        invariants=(Invariant(metric="points.0.achieved", op="gt", value=0),),
        baselines=(BaselineCheck(file="BENCH_micro.json", baseline_path="x",
                                 metric="y", rel_tol=0.1),),
    )
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.faults["rules"][0]["kind"] == "drop"


def test_to_dict_prunes_defaults():
    spec = ScenarioSpec(name="compact", title="t", kind="pipeline")
    data = spec.to_dict()
    assert data["topology"] == {}
    assert data["workload"] == {}
    assert "faults" not in data
    assert "sweep" not in data


# --------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------- #


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario kind"):
        ScenarioSpec(name="bad", title="t", kind="nope")


def test_sim_only_kind_rejects_other_runtimes():
    with pytest.raises(ConfigurationError, match="only runs on the sim"):
        ScenarioSpec(name="bad", title="t", kind="flstore", runtime="local")


def test_pipeline_kind_allows_sim_and_multiproc_only():
    spec = ScenarioSpec(name="mp", title="t", kind="pipeline",
                        runtime="multiproc",
                        topology=TopologySpec(workers=2))
    assert not spec.deterministic
    with pytest.raises(ConfigurationError, match="sim or multiproc"):
        ScenarioSpec(name="bad", title="t", kind="pipeline", runtime="local")


def test_topology_rejects_negative_workers_and_expansion():
    with pytest.raises(ConfigurationError, match="workers"):
        TopologySpec(workers=-1)
    with pytest.raises(ConfigurationError, match="expand_maintainers"):
        TopologySpec(expand_maintainers=-1)


def test_bad_pipeline_override_fails_eagerly():
    with pytest.raises(TypeError):
        ScenarioSpec(name="bad", title="t", pipeline={"no_such_field": 1})


def test_topology_rejects_zero_stage_counts():
    with pytest.raises(ConfigurationError, match="clients"):
        TopologySpec(clients=0)


def test_workload_rejects_warmup_past_duration():
    with pytest.raises(ConfigurationError, match="warmup"):
        WorkloadSpec(duration=0.5, warmup=0.5)


def test_baseline_check_needs_exactly_one_tolerance():
    with pytest.raises(ConfigurationError, match="exactly one"):
        BaselineCheck(file="f", baseline_path="a", metric="b")
    with pytest.raises(ConfigurationError, match="exactly one"):
        BaselineCheck(file="f", baseline_path="a", metric="b",
                      rel_tol=0.1, abs_tol=1.0)


def test_unknown_sweep_override_key_rejected():
    spec = ScenarioSpec(name="s", title="t",
                        sweep=({"label": "x", "bogus": {}},))
    with pytest.raises(ConfigurationError, match="unknown sweep override"):
        spec.points()


# --------------------------------------------------------------------- #
# Tag filtering and sweep resolution
# --------------------------------------------------------------------- #


def test_filter_specs_requires_every_tag():
    geo_soak = filter_specs(CATALOG, tags=["geo", "soak"])
    assert [s.name for s in geo_soak] == ["geo-partition-soak"]
    assert all("geo" in s.tags and "soak" in s.tags for s in geo_soak)


def test_filter_specs_by_name():
    assert [s.name for s in filter_specs(CATALOG, names=["fig7-single-maintainer"])] == [
        "fig7-single-maintainer"
    ]
    assert filter_specs(CATALOG, names=["missing"]) == []


def test_points_default_label_is_base():
    spec = ScenarioSpec(name="s", title="t")
    assert [label for label, _ in spec.points()] == ["base"]


def test_sweep_points_merge_sections_over_base():
    spec = ScenarioSpec(
        name="s", title="t", pipeline={"replication_interval": 0.01},
        sweep=(
            {"label": "wide", "topology": {"batchers": 3},
             "pipeline": {"batcher_flush_threshold": 100}},
        ),
    )
    (label, point), = spec.points()
    assert label == "wide"
    assert point.topology.batchers == 3
    # Sweep pipeline overrides merge with (not replace) the base dict.
    assert point.pipeline == {"replication_interval": 0.01,
                              "batcher_flush_threshold": 100}
    assert point.sweep == ()


# --------------------------------------------------------------------- #
# resolve_path / resolve_profile
# --------------------------------------------------------------------- #


def test_resolve_path_traverses_dicts_and_lists():
    doc = {"points": [{"stage_totals": {"Filter": 7}}]}
    assert resolve_path(doc, "points.0.stage_totals.Filter") == 7


def test_resolve_path_reports_full_path_on_miss():
    with pytest.raises(KeyError, match=r"points\.0\.missing.*'missing'"):
        resolve_path({"points": [{}]}, "points.0.missing")


def test_resolve_profile_accepts_name_and_inline_dict():
    assert resolve_profile("public-cloud").name == "public-cloud"
    inline = resolve_profile({"name": "x", "per_record_cost": 1e-6,
                              "nic_bandwidth_bytes": 1e9})
    assert inline.name == "x"
    with pytest.raises(ConfigurationError, match="unknown machine profile"):
        resolve_profile("no-such-profile")


# --------------------------------------------------------------------- #
# Invariant evaluation
# --------------------------------------------------------------------- #

_DOC = {"points": [{"achieved": 100, "target": 100},
                   {"achieved": 950, "target": 1000}],
        "best": {"index": 1}}


@pytest.mark.parametrize(
    "inv,ok",
    [
        (Invariant(metric="best.index", op="eq", value=1), True),
        (Invariant(metric="points.0.achieved", op="lt", value=101), True),
        (Invariant(metric="points.0.achieved", op="gt", value=100), False),
        (Invariant(metric="points.0.achieved", op="ge", value=100), True),
        (Invariant(metric="points.1.achieved", op="approx", value=1000, rel=0.06), True),
        (Invariant(metric="points.1.achieved", op="approx", value=1000, rel=0.01), False),
        (Invariant(metric="points.1.achieved", op="between", band=(900, 1000)), True),
        (Invariant(metric="points.1.achieved", op="ratio_between",
                   other="points.1.target", band=(0.9, 1.0)), True),
    ],
)
def test_invariant_ops(inv, ok):
    assert (inv.check(_DOC) is None) is ok


def test_invariant_other_path_with_scale():
    inv = Invariant(metric="points.1.achieved", op="approx",
                    other="points.0.achieved", scale=10, rel=0.06)
    assert inv.check(_DOC) is None


def test_invariant_failure_message_names_metric_and_note():
    inv = Invariant(metric="points.0.achieved", op="eq", value=7,
                    note="the paper says seven")
    message = inv.check(_DOC)
    assert "points.0.achieved" in message
    assert "the paper says seven" in message
    assert "100" in message


def test_invariant_missing_path_reported_not_raised():
    failures = check_invariants(
        ScenarioSpec(name="s", title="t",
                     invariants=(Invariant(metric="points.9.achieved", op="gt",
                                           value=0),)),
        _DOC,
    )
    assert failures and "points.9.achieved" in failures[0]
