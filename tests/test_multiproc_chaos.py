"""Fault tolerance of the multi-process runtime.

Fast units cover the sequenced envelope, :class:`ProcChaos` decisions,
``FaultPlan.kill`` round-trips, and the chaos placement helper.  The
``-m slow`` variants SIGKILL real worker processes mid-run — one pipeline
stage worker and one maintainer worker — and require the recovered output
to be *identical* to a fault-free simulation: same record sets, same
per-host total orders, no lost or duplicated LIds.
"""

import tempfile

import pytest

from repro.chariots import ChariotsDeployment
from repro.chaos import FaultPlan, KillEvent, ProcChaos
from repro.chaos.procchaos import DELAY, DROP, PASS
from repro.core.errors import ConfigurationError
from repro.bench.multiproc import (
    pipeline_placement,
    run_deployment_multiproc_chaos,
)
from repro.runtime.multiproc import (
    _envelope,
    _parse_envelope,
    MultiprocRuntime,
)
from repro.runtime.supervisor import ProcessSupervisor

from test_multiproc import DCS, WORKLOAD, _extract, run_workload_on_sim


# --------------------------------------------------------------------- #
# Envelope sequencing
# --------------------------------------------------------------------- #


class TestEnvelopeSeq:
    def test_seq_round_trips(self):
        frame = _envelope(0, "A/filter/0", "A/queue/0", b"payload", seq=7)
        kind, seq, src, dst, payload = _parse_envelope(memoryview(frame)[4:])
        assert (kind, seq, src, dst) == (0, 7, "A/filter/0", "A/queue/0")
        assert bytes(payload) == b"payload"

    def test_default_seq_is_unsequenced_zero(self):
        frame = _envelope(1, "parent", "worker", b"")
        _, seq, _, _, _ = _parse_envelope(memoryview(frame)[4:])
        assert seq == 0

    def test_seq_survives_large_values(self):
        frame = _envelope(2, "s", "d", b"x", seq=0xFFFF_FFFF)
        _, seq, _, _, _ = _parse_envelope(memoryview(frame)[4:])
        assert seq == 0xFFFF_FFFF


# --------------------------------------------------------------------- #
# ProcChaos decisions
# --------------------------------------------------------------------- #


class TestProcChaos:
    def test_same_seed_same_decisions(self):
        kwargs = dict(seed=11, drop_probability=0.3, delay_probability=0.3)
        first = [ProcChaos(**kwargs).decide_frame() for _ in range(1)]
        a, b = ProcChaos(**kwargs), ProcChaos(**kwargs)
        assert [a.decide_frame() for _ in range(200)] == [
            b.decide_frame() for _ in range(200)
        ]
        assert first  # keep the single-draw smoke visible

    def test_zero_probabilities_always_pass(self):
        chaos = ProcChaos(seed=1)
        assert all(chaos.decide_frame() == (PASS, 0.0) for _ in range(50))
        assert chaos.stats["frames_dropped"] == 0

    def test_decisions_update_stats_and_bound_delay(self):
        chaos = ProcChaos(seed=3, drop_probability=0.5, delay_probability=0.5)
        for _ in range(200):
            action, delay = chaos.decide_frame()
            assert action in (PASS, DROP, DELAY)
            assert 0.0 <= delay <= chaos.max_delay
        assert chaos.stats["frames_dropped"] > 0
        assert chaos.stats["frames_delayed"] > 0

    def test_max_faults_caps_injections(self):
        chaos = ProcChaos(seed=5, drop_probability=1.0, max_faults=3)
        decisions = [chaos.decide_frame() for _ in range(10)]
        assert decisions[:3] == [(DROP, 0.0)] * 3
        assert decisions[3:] == [(PASS, 0.0)] * 7

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError, match="drop_probability"):
            ProcChaos(drop_probability=1.5)
        with pytest.raises(ConfigurationError, match="max_delay"):
            ProcChaos(max_delay=-0.1)

    def test_from_plan_carries_kills_and_seed(self):
        plan = FaultPlan(seed=42).kill("A/store/0", 0.3).kill(1, 0.6)
        chaos = ProcChaos.from_plan(plan, drop_probability=0.1)
        assert chaos.seed == 42
        assert chaos.kill_schedule() == [("A/store/0", 0.3), (1, 0.6)]
        assert chaos.drop_probability == 0.1


# --------------------------------------------------------------------- #
# FaultPlan.kill round-trip
# --------------------------------------------------------------------- #


class TestKillPlanRoundTrip:
    def test_kill_round_trips_through_dict(self):
        plan = FaultPlan(seed=9).kill("B/batcher/0", 0.25).kill(2, 1.5)
        data = plan.to_dict()
        assert data["kills"] == [
            {"worker": "B/batcher/0", "at": 0.25},
            {"worker": 2, "at": 1.5},
        ]
        restored = FaultPlan.from_dict(data)
        assert restored.kills == [KillEvent("B/batcher/0", 0.25), KillEvent(2, 1.5)]
        assert restored.to_dict() == data

    def test_empty_plan_round_trips(self):
        data = FaultPlan().to_dict()
        assert data["kills"] == []
        assert FaultPlan.from_dict(data).kills == []


# --------------------------------------------------------------------- #
# Chaos placement
# --------------------------------------------------------------------- #


class TestPipelinePlacement:
    def test_stages_and_maintainers_split_per_datacenter(self):
        placement = pipeline_placement(["A", "B"], 4)
        assert placement("A/batcher/0", 4) == 0
        assert placement("A/filter/0", 4) == 0
        assert placement("A/sender/B", 4) == 0
        assert placement("A/store/0", 4) == 1
        assert placement("A/indexer/0", 4) == 1
        assert placement("B/queue/0", 4) == 2
        assert placement("B/store/1", 4) == 3

    def test_control_plane_stays_in_parent(self):
        placement = pipeline_placement(["A", "B"], 4)
        assert placement("A/client/0", 4) is None
        assert placement("A/controller", 4) is None
        assert placement("supervisor", 4) is None

    def test_zero_workers_places_everything_in_parent(self):
        placement = pipeline_placement(["A"], 0)
        assert placement("A/store/0", 0) is None


# --------------------------------------------------------------------- #
# The acceptance bar: SIGKILL two workers, output identical to sim
# --------------------------------------------------------------------- #


def run_workload_on_multiproc_with_kills(kills, journal_dir):
    """The WORKLOAD of tests.test_multiproc, under supervision and kills."""
    plan = FaultPlan(seed=7)
    for worker, at in kills:
        plan.kill(worker, at)
    chaos = ProcChaos.from_plan(plan)
    runtime = MultiprocRuntime(
        workers=4, placement=pipeline_placement(DCS, 4), chaos=chaos
    )
    try:
        deployment = ChariotsDeployment(runtime, DCS, batch_size=8)
        supervisor = ProcessSupervisor()
        deployment.supervise(supervisor, journal_dir=journal_dir)
        runtime.start()
        clients = {dc: deployment.client(dc) for dc in DCS}
        acks = []
        for dc, payload in WORKLOAD:
            clients[dc].append(payload, on_done=acks.append)
        runtime.run_until(lambda: len(acks) == len(WORKLOAD), timeout=120)
        runtime.run_until(
            lambda: chaos.stats["workers_killed"] >= len(kills), timeout=120
        )
        runtime.run_until(
            lambda: len(supervisor.recoveries) >= len(kills), timeout=120
        )
        assert runtime.settle(
            lambda: deployment.converged() and deployment._pipelines_drained(),
            max_seconds=120,
        )
        return _extract(deployment), supervisor, dict(runtime.loss_accounting)
    finally:
        runtime.stop()


@pytest.mark.slow
class TestCrashRecoveryEquivalence:
    def test_killed_stage_and_maintainer_workers_match_fault_free_sim(self):
        """Kill one pipeline-stage worker (A's batcher/filter/queue) and one
        maintainer worker (A's stores) mid-run; the recovered deployment
        must produce byte-for-byte the fault-free sim outcome."""
        sim_sets, sim_orders = run_workload_on_sim()
        with tempfile.TemporaryDirectory() as journal_dir:
            (mp_sets, mp_orders), supervisor, loss = (
                run_workload_on_multiproc_with_kills(
                    [("A/batcher/0", 0.15), ("A/store/0", 0.3)], journal_dir
                )
            )
        assert mp_sets == sim_sets
        assert mp_orders == sim_orders
        assert len(supervisor.recoveries) >= 2
        for recovery in supervisor.recoveries:
            assert recovery["seconds"] < 30.0
        assert loss == {}

    def test_bench_harness_reports_recovery_metrics(self):
        plan = FaultPlan(seed=3).kill("A/batcher/0", 0.15).kill("A/store/0", 0.3)
        out = run_deployment_multiproc_chaos(
            datacenters=DCS, workers=4, appends=24, batch_size=8, plan=plan
        )
        assert out["converged"]
        assert out["acked"] == out["appends"] == 24
        assert out["gap_free"] and out["duplicate_free"]
        assert out["causal_order_ok"]
        assert out["records_per_dc"]["A"] == out["records_per_dc"]["B"] == 24
        assert out["workers_killed"] == 2
        assert out["recoveries"] >= 2
        assert 0.0 < out["recovery_seconds_max"] < 30.0
        assert out["loss_accounting"] == {}


@pytest.mark.slow
class TestPlannedRestart:
    def test_drain_then_restart_loses_nothing(self):
        """The elasticity path: a planned, drained restart of the maintainer
        worker mid-workload neither loses records nor times out the drain."""
        sim_sets, sim_orders = run_workload_on_sim()
        runtime = MultiprocRuntime(
            workers=4, placement=pipeline_placement(DCS, 4)
        )
        with tempfile.TemporaryDirectory() as journal_dir:
            try:
                deployment = ChariotsDeployment(runtime, DCS, batch_size=8)
                supervisor = ProcessSupervisor()
                deployment.supervise(supervisor, journal_dir=journal_dir)
                runtime.start()
                clients = {dc: deployment.client(dc) for dc in DCS}
                acks = []
                for dc, payload in WORKLOAD:
                    clients[dc].append(payload, on_done=acks.append)
                runtime.run_until(
                    lambda: len(acks) == len(WORKLOAD), timeout=120
                )
                drained = runtime.restart_worker(1, drain=True)
                assert drained
                assert runtime.settle(
                    lambda: deployment.converged()
                    and deployment._pipelines_drained(),
                    max_seconds=120,
                )
                assert _extract(deployment) == (sim_sets, sim_orders)
                assert supervisor.recoveries
                assert supervisor.recoveries[-1]["reason"] == "planned restart"
                assert runtime.loss_accounting.get("drain_timeouts", 0) == 0
            finally:
                runtime.stop()
