"""Smoke tests for the benchmark harness: shapes, not absolute numbers.

The full-size runs live in ``benchmarks/``; these short runs assert the
qualitative claims the paper's evaluation makes so regressions in the
capacity model are caught by ``pytest tests/``.
"""

import json

import pytest

from repro.bench import (
    run_corfu_sim,
    run_flstore_sim,
    run_pipeline_sim,
)
from repro.bench.micro import (
    bench_codecs,
    interleaved_best_of,
    run_micro_suite,
    write_json_report,
)
from repro.core import PRIVATE_CLOUD, PUBLIC_CLOUD

SHORT = dict(duration=0.8, warmup=0.3)


class TestFigure7Shape:
    def test_throughput_tracks_target_below_capacity(self):
        result = run_flstore_sim(1, 100_000, **SHORT)
        assert result.achieved_total == pytest.approx(100_000, rel=0.05)

    def test_throughput_degrades_past_the_peak(self):
        at_peak = run_flstore_sim(1, 150_000, **SHORT)
        overloaded = run_flstore_sim(1, 250_000, **SHORT)
        assert at_peak.achieved_total > overloaded.achieved_total
        # §7.1: drops to "around 120K appends per second".
        assert overloaded.achieved_total == pytest.approx(120_000, rel=0.08)


class TestFigure8Shape:
    def test_near_linear_scaling_private_cloud(self):
        single = run_flstore_sim(1, 131_000, maintainer_profile=PRIVATE_CLOUD, **SHORT)
        scaled = run_flstore_sim(4, 131_000, maintainer_profile=PRIVATE_CLOUD, **SHORT)
        assert scaled.perfect_scaling_fraction > 0.97  # paper: 99.3% at n=10
        assert scaled.achieved_total == pytest.approx(4 * single.achieved_total, rel=0.05)

    def test_overloaded_public_cloud_still_scales(self):
        scaled = run_flstore_sim(3, 250_000, maintainer_profile=PUBLIC_CLOUD, **SHORT)
        assert scaled.perfect_scaling_fraction > 0.95
        # Each maintainer is saturated near its overloaded rate, not 250K.
        assert scaled.achieved_per_maintainer < 150_000


class TestTablesShape:
    def test_table2_all_stages_track_the_client(self):
        result = run_pipeline_sim(clients=1, **SHORT)
        client_rate = result.stage_total("Client")
        for stage in ("Batcher", "Filter", "Queue", "Store"):
            assert result.stage_total(stage) == pytest.approx(client_rate, rel=0.06)
        assert result.bottleneck() == "Client"

    def test_table3_batcher_becomes_bottleneck(self):
        result = run_pipeline_sim(clients=2, **SHORT)
        assert result.bottleneck() == "Batcher"
        assert result.stage_total("Batcher") < result.stage_total("Client")

    def test_table4_filter_becomes_bottleneck(self):
        result = run_pipeline_sim(clients=2, batchers=2, **SHORT)
        assert result.bottleneck() == "Filter"
        # §7.2: batcher stage throughput "more than doubled".
        three = run_pipeline_sim(clients=2, **SHORT)
        assert result.stage_total("Batcher") > 1.5 * three.stage_total("Batcher")

    def test_table5_two_of_everything_doubles_throughput(self):
        basic = run_pipeline_sim(clients=1, **SHORT)
        doubled = run_pipeline_sim(
            clients=2, batchers=2, filters=2, queues=2, maintainers=2,
            senders=2, receivers=2, **SHORT
        )
        assert doubled.stage_total("Store") == pytest.approx(
            2 * basic.stage_total("Store"), rel=0.08
        )
        # Each machine stays close to the basic single-machine case.
        for machine_rate in doubled.stage_rates["Store"].values():
            assert machine_rate == pytest.approx(basic.stage_total("Store"), rel=0.1)


class TestFigure9Shape:
    def test_fixed_workload_drains_after_clients_stop(self):
        result = run_pipeline_sim(
            clients=2,
            batchers=2,
            total_records=160_000,
            duration=1.2,
            warmup=0.2,
            run_past_load=1.5,
            timeseries_for=("A/client/0", "A/batcher/0", "A/queue/0"),
        )
        assert result.records_stored == 160_000
        queue_series = dict(result.timeseries["A/queue/0"])
        client_series = dict(result.timeseries["A/client/0"])
        # Clients finish early; the queue keeps draining afterwards.
        client_end = max(t for t, rate in client_series.items() if rate > 0)
        queue_end = max(t for t, rate in queue_series.items() if rate > 0)
        assert queue_end > client_end


class TestMicroHarness:
    def test_binary_codec_beats_json_on_hot_types(self):
        """Perf-regression guard: the binary codec must stay clearly ahead
        of tagged JSON on the hot wire types.  The committed reports show
        >3x; 1.5x here leaves generous headroom for noisy CI hosts."""
        results = bench_codecs(batch=500, repeats=3)
        for label in ("Record", "LogEntry"):
            assert results[label]["combined_speedup"] >= 1.5, results[label]

    def test_pipeline_sim_reports_wall_clock(self):
        result = run_pipeline_sim(clients=1, duration=0.2, warmup=0.05)
        assert result.wall_clock > 0.0

    def test_interleaved_best_of_keeps_best_round(self):
        calls = {"n": 0}

        def op():
            calls["n"] += 1

        rates = interleaved_best_of({"op": op}, ops=100, repeats=4)
        assert calls["n"] == 4
        assert rates["op"] > 0

    def test_micro_suite_json_report_is_deterministic(self, tmp_path):
        """Shape + determinism of the committed BENCH_micro.json artefact:
        sorted keys, no timestamps, reruns differ only in measured rates."""
        report = run_micro_suite(batch=200, repeats=1)
        assert set(report) == {
            "codec",
            "filter_admission_ops_per_sec",
            "maintainer_append_ops_per_sec",
            "method",
        }
        path = tmp_path / "BENCH_micro.json"
        write_json_report(str(path), report)
        text = path.read_text()
        assert json.loads(text) == report
        assert list(json.loads(text)) == sorted(report)  # sorted keys
        assert text == text.rstrip() + "\n"


class TestCorfuBaseline:
    def test_sequencer_caps_cluster_throughput(self):
        capacity = 5_000.0  # grants/s; with batch 16 -> 80 K appends ceiling
        small = run_corfu_sim(
            n_units=1, target_per_unit=125_000, sequencer_capacity=capacity,
            grant_batch=16, **SHORT
        )
        big = run_corfu_sim(
            n_units=4, target_per_unit=125_000, sequencer_capacity=capacity,
            grant_batch=16, **SHORT
        )
        ceiling = capacity * 16
        assert big.achieved_total <= ceiling * 1.1
        # Adding units does not scale past the sequencer.
        assert big.achieved_total < 2 * small.achieved_total

    def test_flstore_scales_where_corfu_does_not(self):
        corfu = run_corfu_sim(
            n_units=4, target_per_unit=125_000, sequencer_capacity=5_000.0,
            grant_batch=16, **SHORT
        )
        flstore = run_flstore_sim(4, 125_000, **SHORT)
        assert flstore.achieved_total > 3 * corfu.achieved_total
