"""Chaos layer: seeded fault plans and pipeline ≡ abstract equivalence under chaos.

The fault model (docs/FAULTS.md) says a seeded :class:`FaultPlan` reproduces
the same failure schedule bit-for-bit, and the ISSUE's acceptance criterion is
that a chaos run with drops + duplicates + reorders + a maintainer crash + a
datacenter partition stays observationally equivalent to the abstract model —
exactly-once filtering and causal order must survive everything the plan
throws at the pipeline.
"""

import random

import pytest

from repro.chaos import (
    CrashEvent,
    FaultPlan,
    FaultRule,
    KillEvent,
    NetChaos,
    PartitionEvent,
)
from repro.chariots import AbstractDeployment, ChariotsDeployment
from repro.core import PipelineConfig, causal_order_respected
from repro.core.errors import ConfigurationError
from repro.runtime import Actor, LocalRuntime
from repro.sim import SimRuntime, SinkActor

from test_sim import SIMPLE

DCS = ["A", "B", "C"]

#: Replication traffic is the safe chaos target: shipments are retransmitted
#: until acked and the filters admit exactly once, so drops / duplicates /
#: reorders there must never change the observable outcome.
SHIP = "ReplicationShipment"
ACK = "ShipmentAck"


class Ping:
    """A named message class so FaultRule.message_type has something to match."""


class Pong:
    pass


class Probe(Actor):
    """Counts everything it receives (with arrival times)."""

    def __init__(self, name: str = "probe") -> None:
        super().__init__(name)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.now, sender, message))


# --------------------------------------------------------------------------- #
# FaultRule / FaultPlan unit behaviour
# --------------------------------------------------------------------------- #


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("explode")

    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            FaultRule("drop", probability=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("delay", delay=-0.1)

    def test_prefix_and_type_scoping(self):
        rule = FaultRule("drop", src="A/", dst="B/", message_type="Ping")
        assert rule.matches("A/sender/0", "B/receiver/0", Ping(), 0.0)
        assert not rule.matches("C/sender/0", "B/receiver/0", Ping(), 0.0)
        assert not rule.matches("A/sender/0", "C/receiver/0", Ping(), 0.0)
        assert not rule.matches("A/sender/0", "B/receiver/0", Pong(), 0.0)

    def test_window_is_half_open(self):
        rule = FaultRule("drop", start=1.0, end=2.0)
        assert not rule.matches("x", "y", Ping(), 0.99)
        assert rule.matches("x", "y", Ping(), 1.0)
        assert not rule.matches("x", "y", Ping(), 2.0)

    def test_max_count_bounds_firings(self):
        plan = FaultPlan(seed=1).drop(max_count=2)
        outcomes = [plan.intercept("x", "y", Ping(), 0.0) for _ in range(5)]
        assert outcomes[:2] == [None, None]
        assert all(out == [0.0] for out in outcomes[2:])


class TestPartitionEvent:
    def test_bidirectional_within_window(self):
        part = PartitionEvent("A/", "B/", start=1.0, end=3.0)
        assert part.active("A/sender/0", "B/receiver/0", 2.0)
        assert part.active("B/sender/0", "A/receiver/0", 2.0)
        assert not part.active("A/sender/0", "C/receiver/0", 2.0)
        assert not part.active("A/sender/0", "B/receiver/0", 3.0)


class TestFaultPlan:
    def test_drop_returns_none_and_counts(self):
        plan = FaultPlan(seed=3).drop(message_type="Ping")
        assert plan.intercept("x", "y", Ping(), 0.0) is None
        assert plan.intercept("x", "y", Pong(), 0.0) == [0.0]
        assert plan.stats["dropped"] == 1

    def test_duplicate_yields_two_copies(self):
        plan = FaultPlan(seed=3).duplicate(delay=0.02)
        copies = plan.intercept("x", "y", Ping(), 0.0)
        assert len(copies) == 2
        assert copies[0] == 0.0
        assert 0.0 <= copies[1] <= 0.02

    def test_delay_and_reorder_bounded(self):
        plan = FaultPlan(seed=3).delay(delay=0.1).reorder(delay=0.05)
        copies = plan.intercept("x", "y", Ping(), 0.0)
        assert len(copies) == 1
        # delay adds [0.05, 0.1], reorder adds [0, 0.05)
        assert 0.05 <= copies[0] < 0.15

    def test_same_seed_same_schedule(self):
        def outcomes(plan):
            return [plan.intercept("x", "y", Ping(), float(i)) for i in range(200)]

        build = lambda: FaultPlan(seed=42).drop(probability=0.3).duplicate(probability=0.3)
        assert outcomes(build()) == outcomes(build())

    def test_different_seed_different_schedule(self):
        def outcomes(seed):
            plan = FaultPlan(seed=seed).drop(probability=0.5)
            return [plan.intercept("x", "y", Ping(), 0.0) for _ in range(100)]

        assert outcomes(1) != outcomes(2)

    def test_dict_round_trip(self):
        plan = (
            FaultPlan(seed=7)
            .drop(src="A/", message_type=SHIP, probability=0.25, end=6.0)
            .duplicate(probability=0.2, delay=0.03)
            .reorder(dst="B/", delay=0.05, max_count=10)
            .crash("A/store/0", at=1.0)
            .kill("A/batcher/0", at=0.5)
            .partition("C/", "A/", start=2.0, end=5.0)
        )
        data = plan.to_dict()
        restored = FaultPlan.from_dict(data)
        assert restored.to_dict() == data
        assert restored.seed == 7
        assert restored.crashes == [CrashEvent("A/store/0", 1.0)]
        assert restored.kills == [KillEvent("A/batcher/0", 0.5)]
        assert restored.partitions == [PartitionEvent("C/", "A/", 2.0, 5.0)]


class TestNetChaos:
    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            NetChaos(drop_probability=2.0)

    def test_pass_by_default(self):
        chaos = NetChaos(seed=1)
        assert chaos.decide("read_lid") == ("pass", 0.0)
        assert not chaos.stats

    def test_request_type_scoping(self):
        chaos = NetChaos(seed=1, drop_probability=1.0, request_types=["append"])
        assert chaos.decide("read_lid") == ("pass", 0.0)
        assert chaos.decide("append")[0] == "drop"

    def test_max_faults_guarantees_eventual_success(self):
        chaos = NetChaos(seed=1, drop_probability=1.0, max_faults=3)
        actions = [chaos.decide("read_lid")[0] for _ in range(6)]
        assert actions == ["drop", "drop", "drop", "pass", "pass", "pass"]

    def test_same_seed_same_decisions(self):
        build = lambda: NetChaos(seed=9, drop_probability=0.3, delay_probability=0.3)
        a, b = build(), build()
        assert [a.decide("x") for _ in range(100)] == [b.decide("x") for _ in range(100)]


# --------------------------------------------------------------------------- #
# Runtime integration: the plan actually shapes delivery
# --------------------------------------------------------------------------- #


class TestLocalRuntimeChaos:
    def test_dropped_messages_never_delivered(self):
        runtime = LocalRuntime(chaos=FaultPlan(seed=1).drop(message_type="Ping"))
        probe = runtime.register(Probe())
        runtime.start()
        runtime.send("ghost", probe.name, Ping())
        runtime.send("ghost", probe.name, Pong())
        runtime.run()
        assert [type(m).__name__ for _, _, m in probe.received] == ["Pong"]
        assert runtime.messages_dropped == 1

    def test_duplicates_delivered_twice(self):
        runtime = LocalRuntime(chaos=FaultPlan(seed=1).duplicate(delay=0.01))
        probe = runtime.register(Probe())
        runtime.start()
        runtime.send("ghost", probe.name, Ping())
        runtime.run()
        assert len(probe.received) == 2

    def test_partition_blocks_both_directions(self):
        plan = FaultPlan(seed=1).partition("A/", "B/", start=0.0, end=1.0)
        runtime = LocalRuntime(chaos=plan)
        a = runtime.register(Probe("A/probe"))
        b = runtime.register(Probe("B/probe"))
        runtime.start()
        runtime.send("A/x", b.name, Ping())
        runtime.send("B/x", a.name, Ping())
        runtime.run_for(0.5)
        assert not a.received and not b.received
        runtime.run_for(1.0)  # window over: traffic flows again
        runtime.send("A/x", b.name, Ping())
        runtime.run()
        assert len(b.received) == 1
        assert plan.stats["partitioned"] == 2

    def test_scheduled_crash_parks_inbound_until_revive(self):
        runtime = LocalRuntime(chaos=FaultPlan(seed=1).crash("probe", at=0.5))
        probe = runtime.register(Probe())
        runtime.run_for(1.0)
        assert runtime.is_crashed("probe")
        runtime.send("ghost", "probe", Ping())
        runtime.run()
        assert not probe.received
        assert runtime.messages_parked == 1
        runtime.revive("probe")
        runtime.run()
        assert len(probe.received) == 1

    def test_crashed_actor_sends_nothing(self):
        runtime = LocalRuntime()
        probe = runtime.register(Probe())
        runtime.register(Probe("dead"))
        runtime.start()
        runtime.crash("dead")
        runtime.send("dead", probe.name, Ping())
        runtime.run()
        assert not probe.received
        assert runtime.messages_dropped == 1

    def test_crash_unknown_actor_rejected(self):
        runtime = LocalRuntime()
        with pytest.raises(ConfigurationError):
            runtime.crash("nobody")


class TestSimRuntimeChaos:
    def test_drops_apply_under_the_capacity_model(self):
        from repro.runtime import RecordBatch
        from conftest import rec

        runtime = SimRuntime(chaos=FaultPlan(seed=1).drop(message_type="RecordBatch"))
        sink = SinkActor("sink")
        runtime.place_on_new_machine(sink, profile=SIMPLE)
        src = SinkActor("src")
        runtime.place_on_new_machine(src, profile=SIMPLE)
        runtime.start()
        runtime.send("src", "sink", RecordBatch([rec("A", 1)]))
        runtime.run()
        assert sink.records_received == 0
        assert runtime.messages_dropped == 1

    def test_crash_parks_inbound_in_sim(self):
        from repro.runtime import RecordBatch
        from conftest import rec

        runtime = SimRuntime(chaos=FaultPlan(seed=1).crash("sink", at=0.0))
        sink = SinkActor("sink")
        runtime.place_on_new_machine(sink, profile=SIMPLE)
        src = SinkActor("src")
        runtime.place_on_new_machine(src, profile=SIMPLE)
        runtime.run_for(0.1)
        runtime.send("src", "sink", RecordBatch([rec("A", 1)]))
        runtime.run()
        assert sink.records_received == 0
        runtime.revive("sink")
        runtime.run()
        assert sink.records_received == 1


# --------------------------------------------------------------------------- #
# Pipeline ≡ abstract equivalence under chaos (the acceptance criterion)
# --------------------------------------------------------------------------- #

#: Faster retransmissions + breaker probes than production defaults so chaos
#: runs converge in a few simulated seconds.
CHAOS_CONFIG = PipelineConfig(
    retransmit_base=0.1,
    retransmit_max=0.8,
    breaker_failure_threshold=4,
    breaker_reset_timeout=0.5,
)


def make_workload(seed, size=20):
    rng = random.Random(seed)
    return [(rng.randrange(len(DCS)), i) for i in range(size)]


def run_abstract(workload):
    deployment = AbstractDeployment(DCS)
    for dc_index, payload in workload:
        deployment[DCS[dc_index]].append(f"p{payload}")
    deployment.sync()
    return deployment


def run_chaotic_pipeline(workload, plan, max_seconds=120):
    runtime = LocalRuntime(chaos=plan)
    deployment = ChariotsDeployment(
        runtime, DCS, batch_size=4, pipeline_config=CHAOS_CONFIG
    )
    clients = {dc: deployment.blocking_client(dc) for dc in DCS}
    for dc_index, payload in workload:
        clients[DCS[dc_index]].append(f"p{payload}")
    assert deployment.settle(max_seconds=max_seconds)
    return deployment


def replication_chaos(seed):
    """Drops + duplicates + reorders on replication traffic, bounded window."""
    return (
        FaultPlan(seed=seed)
        .drop(message_type=SHIP, probability=0.25, end=6.0)
        .drop(message_type=ACK, probability=0.25, end=6.0)
        .duplicate(message_type=SHIP, probability=0.25, delay=0.05, end=6.0)
        .reorder(message_type=SHIP, delay=0.05, end=6.0)
        .reorder(message_type=ACK, delay=0.05, end=6.0)
    )


def assert_equivalent(pipeline, abstract):
    """Observational equivalence: same records everywhere, exactly once,
    causally ordered, identical per-host total orders."""
    reference = {r.rid for r in abstract[DCS[0]].records()}
    for dc in DCS:
        entries = pipeline[dc].all_entries()
        rids = [e.rid for e in entries]
        assert len(rids) == len(set(rids))  # exactly-once admission
        assert set(rids) == reference
        assert causal_order_respected([e.record for e in entries])
    for host in DCS:
        host_order = [r.toid for r in abstract[host].records() if r.host == host]
        for dc in DCS:
            observed = [
                e.record.toid
                for e in pipeline[dc].all_entries()
                if e.record.host == host
            ]
            assert observed == host_order


class TestEquivalenceUnderChaos:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_drops_dups_reorders_preserve_equivalence(self, seed):
        workload = make_workload(seed)
        plan = replication_chaos(seed)
        pipeline = run_chaotic_pipeline(workload, plan)
        # The plan must actually have interfered for the run to mean anything.
        assert plan.stats["dropped"] > 0
        assert plan.stats["duplicated"] > 0
        assert plan.stats["reordered"] > 0
        assert_equivalent(pipeline, run_abstract(workload))

    def test_full_acceptance_run(self):
        """drops + dups + reorders + one maintainer crash + one DC partition,
        under supervision — still observationally equivalent."""
        workload = make_workload(99, size=24)
        plan = (
            replication_chaos(99)
            .crash("A/store/0", at=0.3)
            .partition("C/", "A/", start=0.5, end=2.0)
            .partition("C/", "B/", start=0.5, end=2.0)
        )
        runtime = LocalRuntime(chaos=plan)
        deployment = ChariotsDeployment(
            runtime, DCS, batch_size=4, pipeline_config=CHAOS_CONFIG
        )
        supervisor = deployment.supervise()
        clients = {dc: deployment.blocking_client(dc) for dc in DCS}
        # First wave before the faults; then drive time into the partition
        # window (the crash at 0.3 fires on the way) and append the rest
        # while C is dark and A's maintainer is being restarted.
        for dc_index, payload in workload[:12]:
            clients[DCS[dc_index]].append(f"p{payload}")
        runtime.run_for(max(0.0, 0.8 - runtime.now))
        for dc_index, payload in workload[12:]:
            clients[DCS[dc_index]].append(f"p{payload}")
        assert deployment.settle(max_seconds=120)

        assert supervisor.restarts["A/store/0"] >= 1
        assert plan.stats["partitioned"] > 0
        assert plan.stats["dropped"] > 0
        assert plan.stats["duplicated"] > 0
        assert plan.stats["reordered"] > 0
        assert_equivalent(deployment, run_abstract(workload))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [11, 12, 13, 14, 15])
    def test_soak_many_seeds_with_crash_and_partition(self, seed):
        """Long variant of the acceptance run: larger workloads, more seeds."""
        workload = make_workload(seed, size=60)
        plan = (
            replication_chaos(seed)
            .crash("B/store/0", at=0.4)
            .partition("A/", "C/", start=1.0, end=3.0)
        )
        runtime = LocalRuntime(chaos=plan)
        deployment = ChariotsDeployment(
            runtime, DCS, batch_size=4, pipeline_config=CHAOS_CONFIG
        )
        supervisor = deployment.supervise()
        clients = {dc: deployment.blocking_client(dc) for dc in DCS}
        for dc_index, payload in workload[:30]:
            clients[DCS[dc_index]].append(f"p{payload}")
        runtime.run_for(max(0.0, 1.5 - runtime.now))  # crash fired; partition on
        for dc_index, payload in workload[30:]:
            clients[DCS[dc_index]].append(f"p{payload}")
        assert deployment.settle(max_seconds=300)
        assert supervisor.restarts["B/store/0"] >= 1
        assert plan.stats["partitioned"] > 0
        assert_equivalent(deployment, run_abstract(workload))
