"""Tests for the abstract single-node solution (§6.1)."""

import pytest

from repro.chariots import AbstractChariots, AbstractDeployment
from repro.core import (
    GarbageCollectedError,
    LidOutOfRangeError,
    ReadRules,
    RecordId,
    causal_order_respected,
)


class TestAppend:
    def test_toids_are_dense(self):
        dc = AbstractChariots("A", ["A", "B"])
        assert dc.append("x").rid == RecordId("A", 1)
        assert dc.append("y").rid == RecordId("A", 2)

    def test_lids_are_dense(self):
        dc = AbstractChariots("A", ["A"])
        assert dc.append("x").lid == 0
        assert dc.append("y").lid == 1

    def test_append_updates_atable_self_cell(self):
        dc = AbstractChariots("A", ["A", "B"])
        dc.append("x")
        assert dc.atable.get("A", "A") == 1

    def test_append_captures_frontier_as_deps(self):
        deployment = AbstractDeployment(["A", "B"])
        deployment["B"].append("from-b")
        deployment.exchange("B", "A")
        result = deployment["A"].append("after")
        record = deployment["A"].read(result.lid).record
        assert record.dep_vector()["B"] == 1

    def test_explicit_deps_merged(self):
        dc = AbstractChariots("A", ["A", "B"])
        result = dc.append("x", deps={"B": 7})
        assert dc.read(result.lid).record.dep_vector()["B"] == 7


class TestReads:
    def test_read_by_lid(self):
        dc = AbstractChariots("A", ["A"])
        dc.append("x", tags={"k": 1})
        entry = dc.read(0)
        assert entry.record.body == "x"

    def test_read_past_end(self):
        dc = AbstractChariots("A", ["A"])
        with pytest.raises(LidOutOfRangeError):
            dc.read(0)

    def test_read_rules(self):
        dc = AbstractChariots("A", ["A"])
        for i in range(6):
            dc.append(f"b{i}", tags={"p": i % 2})
        entries = dc.read_rules(ReadRules(tag_key="p", tag_value=0, limit=2))
        assert [e.record.body for e in entries] == ["b4", "b2"]


class TestReception:
    def test_records_with_satisfied_deps_incorporate(self):
        deployment = AbstractDeployment(["A", "B"])
        deployment["A"].append("x")
        learned = deployment.exchange("A", "B")
        assert learned == 1
        assert deployment["B"].read(0).record.body == "x"

    def test_duplicates_ignored(self):
        deployment = AbstractDeployment(["A", "B"])
        deployment["A"].append("x")
        deployment.exchange("A", "B")
        assert deployment.exchange("A", "B") == 0

    def test_out_of_order_reception_deferred(self):
        a = AbstractChariots("A", ["A", "B"])
        b = AbstractChariots("B", ["A", "B"])
        r1 = a.append("first")
        r2 = a.append("second")
        second = a.read(r2.lid).record
        first = a.read(r1.lid).record
        incorporated = b.receive("A", [second])  # arrives before its predecessor
        assert incorporated == []
        assert len(b.deferred) == 1
        incorporated = b.receive("A", [first])
        assert [r.toid for r in incorporated] == [1, 2]

    def test_cross_host_dependency_deferred(self):
        deployment = AbstractDeployment(["A", "B", "C"])
        deployment["A"].append("base")
        deployment.exchange("A", "B")
        deployment["B"].append("depends-on-a")  # deps: {A: 1}
        b_record = deployment["B"].read(1).record
        # C receives B's record before A's.
        incorporated = deployment["C"].receive("B", [b_record])
        assert incorporated == []
        deployment.exchange("A", "C")
        drained = deployment["C"].deferred.drain(deployment["C"].frontier)
        for record in drained:
            deployment["C"]._incorporate(record)
        assert len(deployment["C"]) == 2

    def test_atable_merge_on_reception(self):
        deployment = AbstractDeployment(["A", "B"])
        deployment["A"].append("x")
        deployment.exchange("A", "B")
        assert deployment["B"].atable.get("A", "A") == 1


class TestConvergenceAndCausality:
    def test_sync_converges(self):
        deployment = AbstractDeployment(["A", "B", "C"])
        for dc in "ABC":
            for i in range(3):
                deployment[dc].append(f"{dc}{i}")
        deployment.sync()
        assert deployment.converged()

    def test_all_logs_causally_consistent_after_sync(self):
        deployment = AbstractDeployment(["A", "B", "C"])
        deployment["A"].append("a1")
        deployment.exchange("A", "B")
        deployment["B"].append("b1-after-a1")
        deployment["C"].append("c1")
        deployment.sync()
        for dc in "ABC":
            assert causal_order_respected(deployment[dc].records())

    def test_per_host_subsequences_identical_everywhere(self):
        deployment = AbstractDeployment(["A", "B"])
        for i in range(4):
            deployment["A"].append(f"a{i}")
            deployment["B"].append(f"b{i}")
        deployment.sync()
        for host in "AB":
            seq_a = [r.toid for r in deployment["A"].records() if r.host == host]
            seq_b = [r.toid for r in deployment["B"].records() if r.host == host]
            assert seq_a == seq_b == [1, 2, 3, 4]

    def test_transitive_shipping_through_intermediary(self):
        # A -> B -> C without a direct A -> C exchange.
        deployment = AbstractDeployment(["A", "B", "C"])
        deployment["A"].append("origin")
        deployment.exchange("A", "B")
        deployment.exchange("B", "C")
        assert any(r.host == "A" for r in deployment["C"].records())


class TestGarbageCollection:
    def test_gc_only_after_universal_knowledge(self):
        deployment = AbstractDeployment(["A", "B", "C"])
        deployment["A"].append("x")
        deployment.exchange("A", "B")
        assert deployment["A"].collect_garbage() == 0  # C does not know yet
        deployment.sync()
        deployment.sync()  # second round propagates the ATable knowledge
        assert deployment["A"].collect_garbage() == 1

    def test_read_after_gc_raises(self):
        deployment = AbstractDeployment(["A", "B"])
        deployment["A"].append("x")
        deployment.sync()
        deployment.sync()
        deployment["A"].collect_garbage()
        with pytest.raises(GarbageCollectedError):
            deployment["A"].read(0)

    def test_keep_records_retention(self):
        deployment = AbstractDeployment(["A", "B"])
        for i in range(5):
            deployment["A"].append(f"x{i}")
        deployment.sync()
        deployment.sync()
        dropped = deployment["A"].collect_garbage(keep_records=2)
        assert dropped <= len(deployment["A"]) + dropped - 2

    def test_base_lid_advances(self):
        deployment = AbstractDeployment(["A", "B"])
        deployment["A"].append("x")
        deployment["A"].append("y")
        deployment.sync()
        deployment.sync()
        deployment["A"].collect_garbage()
        assert deployment["A"].base_lid == 2
        assert deployment["A"].head_lid() == 1
