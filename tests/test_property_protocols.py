"""Property-based tests on whole protocols: transaction agreement,
abstract-solution convergence under adversarial exchange schedules, and
simulator determinism."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import MessageFuturesManager
from repro.chariots import AbstractDeployment
from repro.chariots.direct import DirectDeployment
from repro.core import causal_order_respected

DCS = ["A", "B", "C"]


# --------------------------------------------------------------------- #
# Abstract solution under arbitrary pairwise exchange schedules
# --------------------------------------------------------------------- #

#: A schedule step: (appender dc, exchange src, exchange dst) indices.
schedule_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
    min_size=1,
    max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(schedule_strategy)
def test_abstract_causality_holds_at_every_intermediate_state(schedule):
    deployment = AbstractDeployment(DCS)
    counter = 0
    for appender, src, dst in schedule:
        counter += 1
        deployment[DCS[appender]].append(f"r{counter}")
        if src != dst:
            deployment.exchange(DCS[src], DCS[dst])
        # The causal invariant is not just eventual — it holds after
        # every single step, at every datacenter.
        for dc in DCS:
            assert causal_order_respected(deployment[dc].records())
    deployment.sync()
    assert deployment.converged()


@settings(max_examples=100, deadline=None)
@given(schedule_strategy)
def test_abstract_atable_never_overclaims(schedule):
    """The ATable is an *under*-approximation of knowledge: whenever it says
    a peer knows a record, the peer really has it."""
    deployment = AbstractDeployment(DCS)
    counter = 0
    for appender, src, dst in schedule:
        counter += 1
        deployment[DCS[appender]].append(f"r{counter}")
        if src != dst:
            deployment.exchange(DCS[src], DCS[dst])
        for dc in DCS:
            table = deployment[dc].atable
            for peer in DCS:
                for host in DCS:
                    claimed = table.get(peer, host)
                    actual = deployment[peer].frontier.max_toid(host)
                    assert claimed <= actual


# --------------------------------------------------------------------- #
# Message Futures: global agreement on every decision
# --------------------------------------------------------------------- #

#: Transactions: (dc index, key index) — same key index => conflict.
txn_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)),
    min_size=1,
    max_size=6,
)


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(txn_strategy)
def test_message_futures_agreement(txns):
    deployment = DirectDeployment(DCS)
    managers = {
        dc: MessageFuturesManager(dc, deployment.client(dc), DCS) for dc in DCS
    }
    pendings = []
    for dc_index, key_index in txns:
        manager = managers[DCS[dc_index]]
        txn = manager.begin()
        txn.write(f"key-{key_index}", f"{txn.txn_id}")
        pendings.append(txn.commit())

    for _ in range(12):
        deployment.replicate()
        for manager in managers.values():
            manager.pump()
        if all(
            managers[dc].decision(p.txn_id) is not None
            for p in pendings
            for dc in DCS
        ):
            break

    # Every manager decided every transaction, identically.
    for pending in pendings:
        decisions = {managers[dc].decision(pending.txn_id) for dc in DCS}
        assert len(decisions) == 1
        assert decisions.pop() is not None

    # Conflicting concurrent groups never commit two writers of one key...
    # but causally-ordered ones may all commit; the invariant that must
    # hold universally is identical final state everywhere.
    states = [managers[dc].committed_state() for dc in DCS]
    assert all(state == states[0] for state in states[1:])


# --------------------------------------------------------------------- #
# Simulator determinism
# --------------------------------------------------------------------- #


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 3), st.integers(50_000, 150_000))
def test_simulation_results_are_deterministic(n_maintainers, target):
    from repro.bench import run_flstore_sim

    first = run_flstore_sim(n_maintainers, float(target), duration=0.5, warmup=0.2)
    second = run_flstore_sim(n_maintainers, float(target), duration=0.5, warmup=0.2)
    assert first.achieved_total == second.achieved_total
    assert first.records_stored == second.records_stored
    assert first.head_of_log == second.head_of_log


# --------------------------------------------------------------------- #
# Hyksos convergent reads under random concurrent workloads
# --------------------------------------------------------------------- #

kv_workload = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 99)),
    min_size=1,
    max_size=15,
)


@settings(max_examples=100, deadline=None)
@given(kv_workload)
def test_hyksos_convergent_reads_agree_everywhere(workload):
    from repro.apps import Hyksos

    deployment = DirectDeployment(DCS)
    sessions = {dc: Hyksos(deployment.client(dc)) for dc in DCS}
    keys = set()
    for dc_index, key_index, value in workload:
        key = f"k{key_index}"
        keys.add(key)
        sessions[DCS[dc_index]].put(key, value)
    deployment.replicate()
    for key in keys:
        answers = {dc: sessions[dc].get_convergent(key) for dc in DCS}
        values = set(answers.values())
        assert len(values) == 1, answers
