"""Tests for the discrete-event capacity simulator (repro.sim)."""

import pytest

from repro.core import MachineProfile, NetworkProfile
from repro.core.errors import ConfigurationError
from repro.runtime import Actor, RecordBatch
from repro.sim import LoadClient, MetricsRegistry, SimRuntime, SinkActor
from repro.sim.machine import Machine


SIMPLE = MachineProfile(
    name="simple",
    per_record_cost=0.001,  # 1000 records/s
    nic_bandwidth_bytes=1e6,
    saturation_queue=5,
    overload_penalty=0.1,
    overload_cap=2.0,
)


class TestMachine:
    def test_cpu_serialises_jobs(self):
        machine = Machine("m", SIMPLE)
        first = machine.submit_cpu(0.0, 0.5)
        second = machine.submit_cpu(0.0, 0.5)
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(1.0)

    def test_cpu_idle_gap_respected(self):
        machine = Machine("m", SIMPLE)
        machine.submit_cpu(0.0, 0.1)
        late = machine.submit_cpu(5.0, 0.1)
        assert late == pytest.approx(5.1)

    def test_overload_factor_grows_with_backlog(self):
        machine = Machine("m", SIMPLE)
        for _ in range(SIMPLE.saturation_queue):
            machine.submit_cpu(0.0, 0.01)
        assert machine.overload_factor() == 1.0
        machine.submit_cpu(0.0, 0.01)
        assert machine.overload_factor() > 1.0

    def test_overload_factor_capped(self):
        machine = Machine("m", SIMPLE)
        for _ in range(1000):
            machine.submit_cpu(0.0, 0.001)
        assert machine.overload_factor() == SIMPLE.overload_cap

    def test_complete_cpu_reduces_backlog(self):
        machine = Machine("m", SIMPLE)
        machine.submit_cpu(0.0, 0.1)
        assert machine.cpu_pending == 1
        machine.complete_cpu()
        assert machine.cpu_pending == 0

    def test_negative_cost_rejected(self):
        machine = Machine("m", SIMPLE)
        with pytest.raises(ConfigurationError):
            machine.submit_cpu(0.0, -1.0)

    def test_nic_transmission_time(self):
        machine = Machine("m", SIMPLE)
        done = machine.transmit(0.0, 1_000_000)  # 1 MB at 1 MB/s
        assert done == pytest.approx(1.0)

    def test_nic_serialises_frames(self):
        machine = Machine("m", SIMPLE)
        machine.transmit(0.0, 500_000)
        done = machine.transmit(0.0, 500_000)
        assert done == pytest.approx(1.0)

    def test_full_duplex_by_default(self):
        machine = Machine("m", SIMPLE)
        machine.transmit(0.0, 1_000_000)
        rx_done = machine.receive(0.0, 1_000_000)
        assert rx_done == pytest.approx(1.0)  # rx unaffected by tx

    def test_shared_nic_couples_directions(self):
        machine = Machine("m", SIMPLE, shared_nic=True)
        machine.transmit(0.0, 1_000_000)
        rx_done = machine.receive(0.0, 1_000_000)
        assert rx_done == pytest.approx(2.0)  # rx waits for tx

    def test_peak_rate(self):
        assert Machine("m", SIMPLE).peak_rate() == pytest.approx(1000.0)

    def test_record_cost_control_message_minimum(self):
        machine = Machine("m", SIMPLE)
        assert machine.record_cost(0) > 0
        assert machine.record_cost(10) == pytest.approx(0.01)


class TestMetricsRegistry:
    def test_total_and_rate(self):
        metrics = MetricsRegistry(bin_width=0.1)
        for t in (0.05, 0.15, 0.25):
            metrics.add("src", "m", 10, t)
        assert metrics.total("src", "m") == 30
        assert metrics.rate("src", "m", 0.0, 0.3) == pytest.approx(100.0)

    def test_rate_window_excludes_outside_bins(self):
        metrics = MetricsRegistry(bin_width=0.1)
        metrics.add("src", "m", 100, 0.05)
        metrics.add("src", "m", 100, 0.95)
        assert metrics.rate("src", "m", 0.1, 0.9) == pytest.approx(0.0)

    def test_timeseries(self):
        metrics = MetricsRegistry(bin_width=1.0)
        metrics.add("src", "m", 5, 0.5)
        metrics.add("src", "m", 7, 1.5)
        assert metrics.timeseries("src", "m") == [(0.0, 5.0), (1.0, 7.0)]

    def test_timeseries_coarsening(self):
        metrics = MetricsRegistry(bin_width=0.5)
        metrics.add("src", "m", 1, 0.1)
        metrics.add("src", "m", 1, 0.6)
        series = metrics.timeseries("src", "m", bin_width=1.0)
        assert series == [(0.0, 2.0)]

    def test_incompatible_bin_width_rejected(self):
        metrics = MetricsRegistry(bin_width=0.3)
        metrics.add("s", "m", 1, 0.0)
        with pytest.raises(ConfigurationError):
            metrics.timeseries("s", "m", bin_width=0.5)

    def test_stage_rate_sums_prefix(self):
        metrics = MetricsRegistry(bin_width=0.1)
        metrics.add("stage/0", "m", 10, 0.05)
        metrics.add("stage/1", "m", 20, 0.05)
        metrics.add("other/0", "m", 99, 0.05)
        assert metrics.stage_rate("stage/", "m", 0.0, 0.1) == pytest.approx(300.0)

    def test_empty_window_rejected(self):
        metrics = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            metrics.rate("s", "m", 1.0, 1.0)


class _Forwarder(Actor):
    """Relays batches to a sink (to exercise a two-hop simulated path)."""

    def __init__(self, name, sink):
        super().__init__(name)
        self.sink = sink

    def on_message(self, sender, message):
        if isinstance(message, RecordBatch):
            self.send(self.sink, message)


class TestSimRuntime:
    def test_message_crosses_nic_and_cpu(self):
        from conftest import rec

        runtime = SimRuntime()
        sink = SinkActor("sink")
        runtime.place_on_new_machine(sink, profile=SIMPLE)
        src = SinkActor("src")
        runtime.place_on_new_machine(src, profile=SIMPLE)
        runtime.start()
        runtime.send("src", "sink", RecordBatch([rec("A", 1)]))
        runtime.run()
        assert sink.records_received == 1
        assert runtime.now > 0  # time passed: latency + NIC + CPU

    def test_throughput_capped_by_cpu(self):
        from conftest import rec

        runtime = SimRuntime()
        sink = SinkActor("sink")
        runtime.place_on_new_machine(sink, profile=SIMPLE)  # 1000 rec/s

        template = rec("A", 1)
        client = LoadClient(
            "client",
            targets=["sink"],
            batch_factory=lambda name, i, n: RecordBatch([template] * n),
            target_rate=5000.0,
            batch_size=50,
        )
        fast = MachineProfile(name="fast", per_record_cost=1e-6)
        runtime.place_on_new_machine(client, profile=fast)
        runtime.run(until_time=2.0)
        achieved = runtime.metrics.rate("sink", "in_records", 1.0, 2.0)
        # Overloaded: capped at peak/overload_cap = 500 rec/s.
        assert achieved <= 1000.0
        assert achieved >= 300.0

    def test_under_capacity_load_is_delivered_in_full(self):
        from conftest import rec

        runtime = SimRuntime()
        sink = SinkActor("sink")
        runtime.place_on_new_machine(sink, profile=SIMPLE)
        template = rec("A", 1)
        client = LoadClient(
            "client",
            targets=["sink"],
            batch_factory=lambda name, i, n: RecordBatch([template] * n),
            target_rate=400.0,
            batch_size=20,
        )
        fast = MachineProfile(name="fast", per_record_cost=1e-6)
        runtime.place_on_new_machine(client, profile=fast)
        runtime.run(until_time=2.0)
        achieved = runtime.metrics.rate("sink", "in_records", 1.0, 2.0)
        assert achieved == pytest.approx(400.0, rel=0.1)

    def test_wan_latency_between_datacenters(self):
        from conftest import rec

        runtime = SimRuntime(network=NetworkProfile(wan_rtt=0.2))
        a = SinkActor("a")
        b = SinkActor("b")
        runtime.add_machine("ma", SIMPLE, datacenter="A")
        runtime.add_machine("mb", SIMPLE, datacenter="B")
        runtime.place(a, "ma")
        runtime.place(b, "mb")
        runtime.start()
        runtime.send("a", "b", RecordBatch([rec("A", 1)]))
        runtime.run()
        assert runtime.now >= 0.1  # one-way WAN latency

    def test_latency_override(self):
        runtime = SimRuntime()
        m1 = runtime.add_machine("m1", SIMPLE, datacenter="A")
        m2 = runtime.add_machine("m2", SIMPLE, datacenter="B")
        runtime.set_latency("A", "B", 0.5)
        assert runtime.latency_between(m1, m2) == 0.5

    def test_unplaced_actors_communicate_instantly(self):
        runtime = SimRuntime()
        sink = SinkActor("sink")
        runtime.register(sink)
        src = SinkActor("src")
        runtime.register(src)
        runtime.start()
        runtime.send("src", "sink", "control")
        runtime.run()
        assert sink.messages == ["control"]

    def test_duplicate_machine_name_rejected(self):
        runtime = SimRuntime()
        runtime.add_machine("m", SIMPLE)
        with pytest.raises(ConfigurationError):
            runtime.add_machine("m", SIMPLE)

    def test_placement_requires_known_machine(self):
        runtime = SimRuntime()
        with pytest.raises(ConfigurationError):
            runtime.place(SinkActor("s"), "ghost")


class TestLoadClient:
    def test_total_records_bound(self):
        from conftest import rec

        runtime = SimRuntime()
        sink = SinkActor("sink")
        runtime.place_on_new_machine(sink, profile=MachineProfile(per_record_cost=1e-6))
        template = rec("A", 1)
        client = LoadClient(
            "client",
            targets=["sink"],
            batch_factory=lambda name, i, n: RecordBatch([template] * n),
            target_rate=1000.0,
            batch_size=30,
            total_records=100,
        )
        runtime.place_on_new_machine(client, profile=MachineProfile(per_record_cost=1e-6))
        runtime.run(until_time=5.0)
        assert client.records_generated == 100
        assert sink.records_received == 100

    def test_round_robin_targets(self):
        from conftest import rec

        runtime = SimRuntime()
        sinks = [SinkActor(f"sink{i}") for i in range(2)]
        fast = MachineProfile(per_record_cost=1e-6)
        for sink in sinks:
            runtime.place_on_new_machine(sink, profile=fast)
        template = rec("A", 1)
        client = LoadClient(
            "client",
            targets=["sink0", "sink1"],
            batch_factory=lambda name, i, n: RecordBatch([template] * n),
            target_rate=1000.0,
            batch_size=10,
            total_records=100,
        )
        runtime.place_on_new_machine(client, profile=fast)
        runtime.run(until_time=2.0)
        assert sinks[0].records_received == 50
        assert sinks[1].records_received == 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadClient("c", [], lambda n, i, k: None, target_rate=1.0)
        with pytest.raises(ConfigurationError):
            LoadClient("c", ["t"], lambda n, i, k: None, target_rate=0)
