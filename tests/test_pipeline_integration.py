"""Integration tests for the geo-replicated Chariots pipeline (§6.2)."""

import pytest

from repro.chariots import ChariotsDeployment
from repro.core import ReadRules, RecordId, causal_order_respected
from repro.runtime import LocalRuntime, random_latency


class TestSingleDatacenter:
    def test_append_assigns_dense_lids(self, runtime):
        deployment = ChariotsDeployment(runtime, ["A"], batch_size=4)
        client = deployment.blocking_client("A")
        lids = [client.append(f"b{i}").lid for i in range(10)]
        assert lids == list(range(10))

    def test_reads_see_appended_records(self, runtime):
        deployment = ChariotsDeployment(runtime, ["A"], batch_size=4)
        client = deployment.blocking_client("A")
        result = client.append("payload", tags={"k": "v"})
        assert client.read_lid(result.lid).entries[0].record.body == "payload"

    def test_multiple_clients_all_sequenced(self, runtime):
        deployment = ChariotsDeployment(runtime, ["A"], batch_size=4)
        clients = [deployment.blocking_client("A") for _ in range(3)]
        for i in range(5):
            for c in clients:
                c.append(f"b{i}")
        runtime.run_for(0.1)
        assert deployment["A"].total_records() == 15

    def test_per_client_fifo(self, runtime):
        deployment = ChariotsDeployment(runtime, ["A"], batch_size=4)
        client = deployment.blocking_client("A")
        results = [client.append(f"b{i}") for i in range(8)]
        toids = [r.toid for r in results]
        assert toids == sorted(toids)


class TestGeoReplication:
    def test_two_dc_convergence(self, two_dc_deployment):
        ca = two_dc_deployment.blocking_client("A")
        cb = two_dc_deployment.blocking_client("B")
        for i in range(5):
            ca.append(f"a{i}")
            cb.append(f"b{i}")
        assert two_dc_deployment.settle(max_seconds=10)
        assert two_dc_deployment["A"].total_records() == 10
        assert two_dc_deployment["B"].total_records() == 10

    def test_three_dc_convergence_with_scaled_stages(self, three_dc_deployment):
        clients = {dc: three_dc_deployment.blocking_client(dc) for dc in "ABC"}
        for i in range(4):
            for dc, client in clients.items():
                client.append(f"{dc}{i}")
        assert three_dc_deployment.settle(max_seconds=15)
        sets = three_dc_deployment.record_sets()
        assert sets["A"] == sets["B"] == sets["C"]
        assert len(sets["A"]) == 12

    def test_logs_causally_consistent_everywhere(self, two_dc_deployment):
        ca = two_dc_deployment.blocking_client("A")
        cb = two_dc_deployment.blocking_client("B")
        a1 = ca.append("a1")
        two_dc_deployment.settle(max_seconds=5)
        cb.append("b-after-a1", deps={"A": a1.toid})
        ca.append("a2")
        assert two_dc_deployment.settle(max_seconds=10)
        for dc in "AB":
            records = [e.record for e in two_dc_deployment[dc].all_entries()]
            assert causal_order_respected(records)

    def test_figure_2_divergent_but_causal_orders(self, runtime):
        """The paper's Figure 2: uncoordinated puts may interleave
        differently at A and B, which is permissible without dependencies."""
        deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=8)
        ca = deployment.blocking_client("A")
        cb = deployment.blocking_client("B")
        ca.append("x=10", tags={"key": "x"})
        cb.append("x=30", tags={"key": "x"})
        assert deployment.settle(max_seconds=10)
        a_order = [e.record.body for e in deployment["A"].all_entries()]
        b_order = [e.record.body for e in deployment["B"].all_entries()]
        assert set(a_order) == set(b_order) == {"x=10", "x=30"}
        # The local record always precedes the remote one at its host.
        assert a_order[0] == "x=10"
        assert b_order[0] == "x=30"

    def test_toids_identical_across_copies(self, two_dc_deployment):
        ca = two_dc_deployment.blocking_client("A")
        results = [ca.append(f"a{i}") for i in range(3)]
        assert two_dc_deployment.settle(max_seconds=10)
        for result in results:
            found = [
                e
                for e in two_dc_deployment["B"].all_entries()
                if e.rid == result.rid
            ]
            assert len(found) == 1


class TestExactlyOnce:
    def test_wan_reordering_does_not_duplicate_or_drop(self):
        runtime = LocalRuntime(latency_fn=random_latency(seed=7, max_delay=0.08))
        deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
        ca = deployment.blocking_client("A")
        cb = deployment.blocking_client("B")
        for i in range(10):
            ca.append(f"a{i}")
            cb.append(f"b{i}")
        assert deployment.settle(max_seconds=30)
        for dc in "AB":
            rids = [e.rid for e in deployment[dc].all_entries()]
            assert len(rids) == len(set(rids)) == 20

    def test_replication_drops_recovered_by_retransmission(self):
        import random

        rng = random.Random(3)

        def drop(src, dst, message):
            # Drop 30% of cross-datacenter shipments (never acks/local).
            from repro.chariots.messages import ReplicationShipment

            return isinstance(message, ReplicationShipment) and rng.random() < 0.3

        runtime = LocalRuntime(drop_fn=drop)
        deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
        ca = deployment.blocking_client("A")
        for i in range(12):
            ca.append(f"a{i}")
        assert deployment.settle(max_seconds=60)
        b_rids = {e.rid for e in deployment["B"].all_entries()}
        assert b_rids == {RecordId("A", t) for t in range(1, 13)}

    def test_duplicate_shipments_filtered(self):
        # Aggressive retransmission: every shipment is sent twice.
        class DuplicatingRuntime(LocalRuntime):
            def send(self, src, dst, message):
                from repro.chariots.messages import ReplicationShipment

                super().send(src, dst, message)
                if isinstance(message, ReplicationShipment):
                    super().send(src, dst, message)

        runtime = DuplicatingRuntime()
        deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
        ca = deployment.blocking_client("A")
        for i in range(8):
            ca.append(f"a{i}")
        assert deployment.settle(max_seconds=20)
        rids = [e.rid for e in deployment["B"].all_entries()]
        assert len(rids) == len(set(rids)) == 8


class TestPartitionTolerance:
    def test_datacenters_stay_available_during_partition(self):

        block = {"on": True}

        def drop(src, dst, message):
            return block["on"] and (
                (src.startswith("A/") and dst.startswith("B/"))
                or (src.startswith("B/") and dst.startswith("A/"))
            )

        runtime = LocalRuntime(drop_fn=drop)
        deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
        ca = deployment.blocking_client("A")
        cb = deployment.blocking_client("B")
        # Both sides accept writes while partitioned (AP choice, §1).
        for i in range(5):
            assert ca.append(f"a{i}").lid == i
            assert cb.append(f"b{i}").lid == i
        # Heal the partition; replication converges.
        block["on"] = False
        assert deployment.settle(max_seconds=30)
        assert len(deployment["A"].all_entries()) == 10


class TestHeadAndSnapshots:
    def test_head_of_log_has_no_gaps(self, two_dc_deployment):
        runtime = two_dc_deployment.runtime
        ca = two_dc_deployment.blocking_client("A")
        for i in range(10):
            ca.append(f"a{i}")
        runtime.run_for(0.2)
        head = ca.head()
        for lid in range(head + 1):
            assert ca.read_lid(lid).error is None

    def test_tag_reads_over_pipeline(self, two_dc_deployment):
        ca = two_dc_deployment.blocking_client("A")
        for i in range(6):
            ca.append(f"v{i}", tags={"stream": "s", "i": i})
        two_dc_deployment.runtime.run_for(0.2)
        entries = ca.read(ReadRules(tag_key="stream", tag_value="s", limit=3))
        assert len(entries) == 3


class TestGcEndToEnd:
    def test_pipeline_gc_truncates_replicated_prefix(self):
        from repro.core import PipelineConfig

        runtime = LocalRuntime()
        deployment = ChariotsDeployment(
            runtime,
            ["A", "B"],
            batch_size=4,
            pipeline_config=PipelineConfig(gc_interval=0.05),
        )
        ca = deployment.blocking_client("A")
        cb = deployment.blocking_client("B")
        for i in range(8):
            ca.append(f"a{i}")
            cb.append(f"b{i}")
        assert deployment.settle(max_seconds=10)
        # Keep exchanging heartbeat-free: senders re-ship vectors with empty
        # batches, ATables converge, GC sweeps truncate.
        runtime.run_for(3.0)
        collected = sum(
            1
            for m in deployment["A"].maintainers
            if (m.core.gc_floor or 0) > (m.core.plan.first_owned_lid(m.core.name) or 0)
        )
        assert collected > 0
        assert deployment["A"].total_records() < 16


class TestVisibilityWait:
    def test_wait_until_visible_blocks_for_replication(self, two_dc_deployment):
        ca = two_dc_deployment.blocking_client("A")
        cb = two_dc_deployment.blocking_client("B")
        result = ca.append("cross-dc")
        entry = cb.wait_until_visible("A", result.toid)
        assert entry.record.body == "cross-dc"

    def test_wait_until_visible_times_out_cleanly(self, runtime):
        from repro.chariots import ChariotsDeployment
        from repro.core.errors import RuntimeExhaustedError

        deployment = ChariotsDeployment(runtime, ["A"], batch_size=4)
        client = deployment.blocking_client("A")
        with pytest.raises(RuntimeExhaustedError):
            client.wait_until_visible("ghost-dc", 1, max_seconds=0.2)
