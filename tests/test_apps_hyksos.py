"""Tests for Hyksos, the causally consistent key-value store (§4.1)."""

import pytest

from repro.apps import Hyksos
from repro.chariots import ChariotsDeployment
from repro.flstore import FLStore
from repro.runtime import LocalRuntime


@pytest.fixture
def geo():
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=8)
    ha = Hyksos(deployment.blocking_client("A"))
    hb = Hyksos(deployment.blocking_client("B"))
    return runtime, deployment, ha, hb


class TestPutGet:
    def test_put_then_get(self, geo):
        runtime, deployment, ha, hb = geo
        ha.put("x", 10)
        runtime.run_for(0.2)
        assert ha.get("x") == 10

    def test_missing_key_returns_none(self, geo):
        _, _, ha, _ = geo
        assert ha.get("nope") is None

    def test_overwrite_takes_latest(self, geo):
        runtime, _, ha, _ = geo
        ha.put("x", 1)
        ha.put("x", 2)
        runtime.run_for(0.2)
        assert ha.get("x") == 2

    def test_put_many_is_one_record(self, geo):
        runtime, _, ha, _ = geo
        versions = ha.put_many({"x": 1, "y": 2})
        assert versions["x"].lid == versions["y"].lid
        runtime.run_for(0.2)
        assert ha.get("x") == 1
        assert ha.get("y") == 2

    def test_get_version_reports_provenance(self, geo):
        runtime, _, ha, _ = geo
        ha.put("x", 5)
        runtime.run_for(0.2)
        version = ha.get_version("x")
        assert version.host == "A"
        assert version.value == 5


class TestGeoReplication:
    def test_remote_values_visible_after_replication(self, geo):
        runtime, deployment, ha, hb = geo
        ha.put("x", 42)
        assert deployment.settle(max_seconds=10)
        assert hb.get("x") == 42

    def test_figure_2_scenario(self, geo):
        """§4.1.2: concurrent puts to x diverge (each DC sees its own first),
        then converge to a causally consistent state."""
        runtime, deployment, ha, hb = geo
        ha.put("x", 10)
        ha.put("y", 20)
        hb.put("x", 30)
        hb.put("z", 40)
        assert deployment.settle(max_seconds=10)
        # Both logs contain both writes to x; reads return the one later in
        # the local log (which may differ between A and B — permissible).
        value_a = ha.get("x")
        value_b = hb.get("x")
        assert value_a in (10, 30)
        assert value_b in (10, 30)
        assert ha.get("y") == 20 and ha.get("z") == 40
        assert hb.get("y") == 20 and hb.get("z") == 40

    def test_session_causality_read_then_write(self, geo):
        runtime, deployment, ha, hb = geo
        ha.put("x", 1)
        assert deployment.settle(max_seconds=10)
        assert hb.get("x") == 1  # B's session now depends on <A,1>
        hb.put("y", "after-x")
        assert deployment.settle(max_seconds=10)
        # At A, y=after-x must appear after x=1 in the log (causality).
        entries = deployment["A"].all_entries()
        lid_x = next(e.lid for e in entries if e.record.tag_dict().get("kv:x") == 1)
        lid_y = next(e.lid for e in entries if "kv:y" in e.record.tag_dict())
        assert lid_x < lid_y


class TestGetTransactions:
    def test_snapshot_is_consistent(self, geo):
        runtime, deployment, ha, hb = geo
        ha.put("x", 1)
        ha.put("y", 2)
        runtime.run_for(0.3)
        values, snapshot_lid = ha.get_transaction(["x", "y", "z"])
        assert values == {"x": 1, "y": 2, "z": None}
        assert snapshot_lid >= 1

    def test_snapshot_excludes_later_writes(self, geo):
        """Algorithm 1: a value appended after the snapshot position is not
        returned even if it is newer (the paper's time-2 example)."""
        runtime, deployment, ha, hb = geo
        ha.put("y", 20)
        runtime.run_for(0.3)
        snapshot_lid = ha.log.head()
        ha.put("y", 50)  # after the pinned position
        runtime.run_for(0.3)
        version = ha.get_version("y", max_lid=snapshot_lid)
        assert version.value == 20
        assert ha.get("y") == 50

    def test_get_transaction_on_empty_store(self, geo):
        _, _, ha, _ = geo
        values, snapshot_lid = ha.get_transaction(["a", "b"])
        assert values == {"a": None, "b": None}


class TestOnFLStore:
    def test_hyksos_works_on_single_dc_flstore(self):
        runtime = LocalRuntime()
        store = FLStore(runtime, n_maintainers=2, n_indexers=1, batch_size=5)
        kv = Hyksos(store.blocking_client())
        kv.put("k", "v")
        runtime.run_for(0.2)
        assert kv.get("k") == "v"
