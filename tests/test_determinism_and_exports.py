"""Whole-deployment determinism and public-API sanity."""


import repro
from repro.chariots import ChariotsDeployment
from repro.runtime import LocalRuntime, random_latency


def run_deployment(seed):
    runtime = LocalRuntime(latency_fn=random_latency(seed=seed, max_delay=0.02))
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
    ca = deployment.blocking_client("A")
    cb = deployment.blocking_client("B")
    for i in range(6):
        ca.append(f"a{i}")
        cb.append(f"b{i}")
    assert deployment.settle(max_seconds=30)
    return {
        dc: [(e.lid, e.rid) for e in deployment[dc].all_entries()]
        for dc in "AB"
    }


class TestDeterministicReplay:
    def test_same_seed_same_logs(self):
        first = run_deployment(seed=11)
        second = run_deployment(seed=11)
        assert first == second

    def test_different_seeds_still_converge_to_same_record_sets(self):
        first = run_deployment(seed=1)
        second = run_deployment(seed=2)
        for dc in "AB":
            assert {rid for _, rid in first[dc]} == {rid for _, rid in second[dc]}


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)

    def test_subpackage_exports_resolve(self):
        import repro.apps
        import repro.baseline
        import repro.bench
        import repro.chariots
        import repro.core
        import repro.flstore
        import repro.net
        import repro.runtime
        import repro.sim

        for module in (
            repro.apps, repro.baseline, repro.bench, repro.chariots,
            repro.core, repro.flstore, repro.net, repro.runtime, repro.sim,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module.__name__, name)

    def test_docstrings_on_public_classes(self):
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
