"""Failure injection: component crashes and whole-datacenter outages.

The paper lists "handling component and whole datacenter failures" among
the challenges Chariots tackles (§1).  These tests exercise the mechanisms:
journal-based maintainer recovery under the same address, and continued
availability plus catch-up around datacenter outages.
"""


from repro.chariots import ChariotsDeployment
from repro.core import causal_order_respected
from repro.flstore import FLStore, LogMaintainer, MemoryJournal, recover_maintainer_core
from repro.runtime import LocalRuntime


class TestMaintainerCrashRecovery:
    def build(self):
        runtime = LocalRuntime()
        store = FLStore(runtime, n_maintainers=2, n_indexers=0, batch_size=5)
        # Attach journals post-hoc (FLStore wires plain maintainers).
        journals = {}
        for maintainer in store.maintainers:
            journal = MemoryJournal()
            maintainer.core._journal = journal
            journals[maintainer.name] = journal
        return runtime, store, journals

    def crash_and_recover(self, runtime, store, journals, victim_index=0):
        victim = store.maintainers[victim_index]
        journal = journals[victim.name]
        recovered_core = recover_maintainer_core(
            victim.name, store.plan, journal.replay(), new_journal=journal
        )
        replacement = LogMaintainer(
            victim.name,
            store.plan,
            peers=[m.name for m in store.maintainers],
            config=store.config,
        )
        replacement.core = recovered_core
        runtime.replace(replacement)
        store.maintainers[victim_index] = replacement
        return replacement

    def test_recovered_maintainer_serves_old_records(self):
        runtime, store, journals = self.build()
        client = store.blocking_client()
        results = [client.append(f"b{i}") for i in range(10)]
        replacement = self.crash_and_recover(runtime, store, journals)
        for result in results:
            reply = client.read_lid(result.lid)
            assert reply.error is None
            assert reply.entries[0].record.body.startswith("b")

    def test_recovered_maintainer_continues_post_assignment(self):
        runtime, store, journals = self.build()
        client = store.blocking_client()
        before = {client.append(f"pre{i}").lid for i in range(10)}
        self.crash_and_recover(runtime, store, journals)
        after = {client.append(f"post{i}").lid for i in range(10)}
        assert not (before & after)  # no LId handed out twice
        assert store.total_records() == 20

    def test_in_flight_appends_reach_the_replacement(self):
        runtime, store, journals = self.build()
        client = store.client()
        runtime.run_until(lambda: client.session_ready)
        done = []
        client.append("in-flight", on_done=done.append)
        # Crash before the append is processed.
        self.crash_and_recover(runtime, store, journals)
        runtime.run_until(lambda: bool(done))
        assert done[0].lid >= 0

    def test_head_of_log_recovers_after_crash(self):
        runtime, store, journals = self.build()
        client = store.blocking_client()
        for i in range(10):
            client.append(f"b{i}")
        runtime.run_for(0.1)
        head_before = client.head()
        self.crash_and_recover(runtime, store, journals)
        runtime.run_for(0.1)  # gossip re-converges
        assert client.head() >= head_before


class TestDatacenterOutage:
    def test_surviving_datacenters_converge_during_outage(self):
        down = {"on": False}

        def drop(src, dst, message):
            return down["on"] and (src.startswith("C/") or dst.startswith("C/"))

        runtime = LocalRuntime(drop_fn=drop)
        deployment = ChariotsDeployment(runtime, ["A", "B", "C"], batch_size=4)
        clients = {dc: deployment.blocking_client(dc) for dc in "ABC"}
        clients["C"].append("pre-outage")
        assert deployment.settle(max_seconds=20)

        down["on"] = True  # datacenter C goes dark
        clients["A"].append("during-1")
        clients["B"].append("during-2")
        runtime.run_for(2.0)
        # A and B replicated to each other despite C being down.
        a_hosts = {e.record.host for e in deployment["A"].all_entries()}
        b_hosts = {e.record.host for e in deployment["B"].all_entries()}
        assert {"A", "B"} <= a_hosts
        assert {"A", "B"} <= b_hosts

    def test_datacenter_catches_up_after_outage(self):
        down = {"on": False}

        def drop(src, dst, message):
            return down["on"] and (src.startswith("C/") or dst.startswith("C/"))

        runtime = LocalRuntime(drop_fn=drop)
        deployment = ChariotsDeployment(runtime, ["A", "B", "C"], batch_size=4)
        clients = {dc: deployment.blocking_client(dc) for dc in "ABC"}

        down["on"] = True
        for i in range(5):
            clients["A"].append(f"missed-{i}")
        runtime.run_for(1.5)
        assert deployment["C"].total_records() == 0

        down["on"] = False  # C comes back
        assert deployment.settle(max_seconds=60)
        c_records = [e.record for e in deployment["C"].all_entries()]
        assert len(c_records) == 5
        assert causal_order_respected(c_records)

    def test_local_writes_never_block_on_remote_outage(self):
        down = {"on": True}

        def drop(src, dst, message):
            return down["on"] and (src.startswith("B/") or dst.startswith("B/"))

        runtime = LocalRuntime(drop_fn=drop)
        deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
        client = deployment.blocking_client("A")
        # Availability under partition: appends complete locally (§1's
        # AP choice) even though the only peer is unreachable.
        results = [client.append(f"solo-{i}") for i in range(8)]
        assert [r.lid for r in results] == list(range(8))
