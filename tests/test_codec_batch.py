"""Zero-copy ``RecordBatch`` wire frame: laziness, bounds, and symmetry.

The binary codec encodes a whole batch as one contiguous ``0x15`` frame
(``u32 count`` then ``u32 span_len || record-fields`` per record) and
decodes it into a :class:`~repro.net.binary_codec.LazyRecordBatch` that
holds a memoryview over the frame — no per-record objects until a consumer
touches ``records``.  The JSON codec pays the type tag once per batch.
"""

import gc
import json

import pytest

from repro.core.errors import NetworkProtocolError
from repro.core.record import Record, RecordId
from repro.net.binary_codec import (
    LazyRecordBatch,
    decode_value_binary,
    encode_value_binary,
)
from repro.net.codec import decode_message, encode_message
from repro.runtime.messages import RecordBatch


def rec(host, toid, body=b"payload", tags=(), deps=()):
    return Record(
        rid=RecordId(host, toid), body=body, tags=tuple(tags), deps=tuple(deps)
    )


@pytest.fixture
def batch():
    return RecordBatch(
        [
            rec("A", 1, b"x" * 64, tags=(("k", 7),)),
            rec("B", 2, "text body", deps=(("A", 1),)),
            rec("A", 3, {"nested": [1, 2.5, None]}),
        ]
    )


class TestLaziness:
    def test_decode_returns_unmaterialised_lazy_batch(self, batch):
        lazy = decode_value_binary(encode_value_binary(batch))
        assert type(lazy) is LazyRecordBatch
        assert not lazy.materialised

    def test_sizing_answers_without_materialising(self, batch):
        lazy = decode_value_binary(encode_value_binary(batch))
        assert len(lazy) == 3
        assert lazy.record_count() == 3
        assert not lazy.materialised

    def test_touching_records_materialises_exactly(self, batch):
        lazy = decode_value_binary(encode_value_binary(batch))
        assert lazy.records == batch.records
        assert lazy.materialised

    def test_survives_source_buffer_release(self, batch):
        wire = encode_value_binary(batch)
        lazy = decode_value_binary(wire)
        del wire
        gc.collect()
        assert lazy.records == batch.records

    def test_decodes_from_memoryview_without_copy(self, batch):
        wire = encode_value_binary(batch)
        lazy = decode_value_binary(memoryview(wire))
        assert not lazy.materialised
        assert lazy == batch

    def test_equality_both_directions(self, batch):
        lazy = decode_value_binary(encode_value_binary(batch))
        assert lazy == batch
        assert batch == lazy
        other = RecordBatch([rec("C", 9)])
        assert lazy != other
        assert other != lazy


class TestSymmetry:
    def test_round_trips_equal(self, batch):
        assert decode_value_binary(encode_value_binary(batch)) == batch

    def test_lazy_reencode_is_byte_identical_and_parse_free(self, batch):
        wire = encode_value_binary(batch)
        lazy = decode_value_binary(wire)
        assert encode_value_binary(lazy) == wire
        assert not lazy.materialised  # re-encoding copied the raw spans

    def test_materialised_reencode_is_byte_identical_to_eager(self, batch):
        lazy = decode_value_binary(encode_value_binary(batch))
        _ = lazy.records
        assert encode_value_binary(lazy) == encode_value_binary(batch)

    def test_empty_batch(self):
        empty = RecordBatch([])
        lazy = decode_value_binary(encode_value_binary(empty))
        assert len(lazy) == 0
        assert lazy == empty

    def test_nested_inside_containers(self, batch):
        wrapped = {"k": [batch]}
        out = decode_value_binary(encode_value_binary(wrapped))
        assert out["k"][0] == batch

    def test_records_setter_replaces_views(self, batch):
        lazy = decode_value_binary(encode_value_binary(batch))
        lazy.records = [rec("Z", 5)]
        assert lazy.materialised
        assert lazy.records == [rec("Z", 5)]


class TestBounds:
    def test_every_truncated_prefix_is_rejected(self, batch):
        wire = encode_value_binary(batch)
        for cut in range(len(wire)):
            with pytest.raises(NetworkProtocolError):
                decode_value_binary(wire[:cut])

    def test_span_past_end_is_rejected_at_decode_time(self, batch):
        wire = bytearray(encode_value_binary(batch))
        # First span length sits right after tag + count; inflate it.
        wire[5:9] = (2**31).to_bytes(4, "big")
        with pytest.raises(NetworkProtocolError, match="truncated RecordBatch"):
            decode_value_binary(bytes(wire))

    def test_trailing_garbage_is_rejected(self, batch):
        wire = encode_value_binary(batch) + b"\x00"
        with pytest.raises(NetworkProtocolError, match="trailing garbage"):
            decode_value_binary(wire)

    def test_corrupt_span_content_fails_on_materialisation(self, batch):
        wire = bytearray(encode_value_binary(batch))
        (span_len,) = (int.from_bytes(wire[5:9], "big"),)
        # Shift the span boundary by one: bounds still valid, content not.
        wire[5:9] = (span_len - 1).to_bytes(4, "big")
        wire[9 + span_len - 1 : 9 + span_len] = b""
        lazy = decode_value_binary(bytes(wire))
        with pytest.raises(NetworkProtocolError):
            _ = lazy.records


class TestJsonSingleFrame:
    def test_batch_encodes_as_one_tagged_frame(self, batch):
        enc = encode_message(batch)
        assert enc["$"] == "RecordBatch"
        records = enc["v"]["records"]
        assert len(records) == 3
        # Bare record dicts — the per-record {"$": "Record"} tag is gone.
        assert records[0]["host"] == "A"
        assert "$" not in records[0]

    def test_json_round_trip(self, batch):
        wire = json.dumps(encode_message(batch))
        assert decode_message(json.loads(wire)) == batch

    def test_lazy_batch_crosses_the_json_codec(self, batch):
        lazy = decode_value_binary(encode_value_binary(batch))
        wire = json.dumps(encode_message(lazy))
        assert decode_message(json.loads(wire)) == batch
