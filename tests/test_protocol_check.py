"""Tests for the explicit-state protocol checker (``repro.analysis.protocol_check``).

Four layers, four sections: the generic BFS checker against a hand-built
three-state machine with a known dup-delivery bug (the counterexample
trace must name it); the multiproc machine explored exhaustively under
dup + reorder + crash + respawn (a proof over the bounded space, asserted
via ``complete``); the FIFO assumption shown to be load-bearing by
switching on worker→parent reordering; and the spec/extractor cross-check
run over the *real* ``runtime/multiproc.py`` sources plus a mutated copy
that must register as drift.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import run_rules, scan
from repro.analysis.protocol_check import (
    CheckResult,
    MPConfig,
    MultiprocModel,
    Violation,
    anchor_matches,
    check_anchors,
    explore,
    locate_classes,
    multiproc_spec,
)
from repro.analysis.protocol_check.spec import CodeAnchor

REPO_ROOT = Path(__file__).resolve().parent.parent


# --------------------------------------------------------------------- #
# Generic checker on a hand-built buggy machine
# --------------------------------------------------------------------- #


class BuggyDupMachine:
    """Three-state sender with a seeded dup-delivery bug.

    The receiver counts every arrival but never dedups, so delivering a
    duplicated message applies it twice — ``at_most_once`` must fail, and
    the shortest counterexample is exactly send -> dup -> deliver -> deliver.

    State: (in_flight copies, applied count).
    """

    def initial(self):
        return (0, 0)

    def events(self, state):
        in_flight, applied = state
        out = []
        if in_flight == 0 and applied == 0:
            out.append(("send", (1, applied)))
        if in_flight == 1:
            out.append(("dup", (2, applied)))
        if in_flight > 0:
            out.append(("deliver", (in_flight - 1, applied + 1)))
        return out

    def invariants(self):
        return [("at_most_once", lambda s: s[1] <= 1)]


class TestGenericChecker:
    def test_buggy_machine_yields_shortest_counterexample(self):
        result = explore(BuggyDupMachine())
        assert not result.ok
        assert result.complete
        violation = result.violations[0]
        assert violation.invariant == "at_most_once"
        assert violation.trace == ("send", "dup", "deliver", "deliver")
        assert violation.state == (0, 2)

    def test_render_reads_as_a_trace(self):
        violation = explore(BuggyDupMachine()).violations[0]
        assert violation.render() == (
            "invariant 'at_most_once' violated after: "
            "send -> dup -> deliver -> deliver"
        )

    def test_root_violation_renders_initial_state(self):
        violation = Violation("inv", (), state=None)
        assert "<initial state>" in violation.render()

    def test_truncation_clears_complete(self):
        result = explore(BuggyDupMachine(), max_states=2, max_violations=99)
        assert not result.complete

    def test_clean_machine_is_ok_and_complete(self):
        class Clean:
            def initial(self):
                return 0

            def events(self, state):
                return [("tick", min(state + 1, 3))]

            def invariants(self):
                return [("bounded", lambda s: s <= 3)]

        result = explore(Clean())
        assert result.ok and result.complete
        assert result.states_explored == 4


# --------------------------------------------------------------------- #
# The multiproc machine: exhaustive runs
# --------------------------------------------------------------------- #


class TestMultiprocModel:
    def test_exhaustive_under_dup_reorder_crash_respawn(self):
        """The headline proof: >=10^4 states, fully explored, no violations."""
        config = MPConfig(max_injects=4, max_dups=2, max_crashes=2)
        result = explore(MultiprocModel(config), max_states=500_000)
        assert isinstance(result, CheckResult)
        assert result.complete, "state space must be exhausted, not sampled"
        assert result.ok, "\n".join(v.render() for v in result.violations)
        assert result.states_explored >= 10_000
        assert result.transitions > result.states_explored

    def test_lint_sized_run_is_complete_and_fast(self):
        from repro.analysis.protocol_check.rule import LINT_CONFIG

        result = explore(MultiprocModel(LINT_CONFIG), max_states=100_000)
        assert result.complete and result.ok
        assert result.states_explored < 100_000

    def test_crash_free_run_accepts_everything_in_order(self):
        config = MPConfig(max_injects=3, max_dups=1, max_crashes=0)
        result = explore(MultiprocModel(config), max_states=200_000)
        assert result.complete and result.ok

    def test_wp_reorder_breaks_output_commit(self):
        """The TCP-FIFO assumption is load-bearing: reordering the
        worker->parent channel lets an output overtake a later one and be
        dropped as a duplicate — the machine must catch that."""
        config = MPConfig(
            max_injects=2,
            max_dups=0,
            max_crashes=1,
            allow_reorder=False,
            reorder_wp=True,
        )
        result = explore(
            MultiprocModel(config), max_states=200_000, max_violations=5
        )
        assert not result.ok
        assert any("reorder-wp" in v.render() for v in result.violations)


# --------------------------------------------------------------------- #
# Spec anchors against the real sources
# --------------------------------------------------------------------- #


def _scan_runtime():
    # Scan from src so relpaths keep their "runtime/" prefix — the spec's
    # module_suffixes match "runtime/multiproc.py", not a bare filename.
    return scan([REPO_ROOT / "src"])


class TestSpecExtraction:
    def test_real_multiproc_sources_match_every_anchor(self):
        project = _scan_runtime()
        spec = multiproc_spec()
        assert locate_classes(spec, project) is not None
        assert check_anchors(spec, project) == []

    def test_fixture_tree_without_protocol_is_out_of_scope(self, tmp_path):
        (tmp_path / "app.py").write_text("class Other:\n    pass\n")
        project = scan([tmp_path])
        assert locate_classes(multiproc_spec(), project) is None
        assert check_anchors(multiproc_spec(), project) == []

    def test_mutated_source_registers_as_drift(self, tmp_path):
        """Renaming ``_admit_frame`` in a copy of the real source must break
        exactly the ``inject`` transition's anchors — CHR020's drift path."""
        runtime = REPO_ROOT / "src" / "repro" / "runtime"
        root = tmp_path / "runtime"
        root.mkdir()
        mutated = (runtime / "multiproc.py").read_text().replace(
            "def _admit_frame", "def _admit_frame_renamed"
        )
        (root / "multiproc.py").write_text(mutated)
        (root / "supervisor.py").write_text(
            (runtime / "supervisor.py").read_text()
        )
        drifts = check_anchors(multiproc_spec(), scan([tmp_path]))
        assert drifts, "renamed method must surface as spec drift"
        assert {d.transition for d in drifts} == {"inject"}
        assert all("_admit_frame" in d.describe() for d in drifts)

    def test_anchor_kinds_match_and_reject(self):
        func = ast.parse(
            "def m(self):\n"
            "    self.seq += 1\n"
            "    self.acked, extra = compute()\n"
            "    self.unacked.append(f)\n"
            "    self.unacked.popleft()\n"
            "    if x <= slot.high[0]:\n"
            "        self._route(f)\n"
        ).body[0]
        assert anchor_matches(CodeAnchor("C", "m", "augassign", "seq"), func)
        assert anchor_matches(CodeAnchor("C", "m", "assign", "acked"), func)
        assert anchor_matches(CodeAnchor("C", "m", "append", "unacked"), func)
        assert anchor_matches(
            CodeAnchor("C", "m", "method_call", "unacked", "popleft"), func
        )
        assert anchor_matches(CodeAnchor("C", "m", "compare", "high"), func)
        assert anchor_matches(CodeAnchor("C", "m", "call", detail="_route"), func)
        assert not anchor_matches(CodeAnchor("C", "m", "augassign", "acked"), func)
        assert not anchor_matches(
            CodeAnchor("C", "m", "method_call", "unacked", "pop"), func
        )
        assert not anchor_matches(CodeAnchor("C", "m", "call", detail="gone"), func)


# --------------------------------------------------------------------- #
# CHR020 as a lint rule
# --------------------------------------------------------------------- #


class TestProtocolRule:
    def test_real_tree_is_clean(self):
        findings = run_rules(
            scan([REPO_ROOT / "src"]), select=["CHR020"]
        )
        assert findings == []

    def test_silent_on_trees_without_the_protocol(self, tmp_path):
        (tmp_path / "app.py").write_text("class App:\n    pass\n")
        findings = run_rules(scan([tmp_path]), select=["CHR020"])
        assert findings == []

    def test_drift_surfaces_as_finding_and_skips_verification(self, tmp_path):
        runtime = REPO_ROOT / "src" / "repro" / "runtime"
        root = tmp_path / "runtime"
        root.mkdir()
        mutated = (runtime / "multiproc.py").read_text().replace(
            "def _admit_frame", "def _admit_frame_renamed"
        )
        (root / "multiproc.py").write_text(mutated)
        (root / "supervisor.py").write_text(
            (runtime / "supervisor.py").read_text()
        )
        findings = run_rules(scan([tmp_path]), select=["CHR020"])
        assert findings
        assert all(f.code == "CHR020" for f in findings)
        assert all("spec drift" in f.message for f in findings)
