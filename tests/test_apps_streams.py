"""Tests for multi-datacenter event processing (§4.2)."""

import pytest

from repro.apps import EventPublisher, StreamJoiner, StreamProcessor, StreamReader
from repro.chariots import ChariotsDeployment
from repro.runtime import LocalRuntime


@pytest.fixture
def streams():
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=8)
    ca = deployment.blocking_client("A")
    cb = deployment.blocking_client("B")
    return runtime, deployment, ca, cb


class TestPublishAndRead:
    def test_publish_and_poll(self, streams):
        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        for i in range(5):
            publisher.publish("clicks", {"id": i})
        runtime.run_for(0.2)
        reader = StreamReader(ca, "clicks")
        events = reader.poll()
        assert [e.payload["id"] for e in events] == [0, 1, 2, 3, 4]

    def test_exactly_once_delivery(self, streams):
        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        publisher.publish("s", 1)
        runtime.run_for(0.2)
        reader = StreamReader(ca, "s")
        assert len(reader.poll()) == 1
        assert reader.poll() == []  # second poll delivers nothing
        publisher.publish("s", 2)
        runtime.run_for(0.2)
        assert [e.payload for e in reader.poll()] == [2]

    def test_streams_are_isolated(self, streams):
        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        publisher.publish("left", "l")
        publisher.publish("right", "r")
        runtime.run_for(0.2)
        assert [e.payload for e in StreamReader(ca, "left").poll()] == ["l"]

    def test_checkpoint_resume(self, streams):
        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        for i in range(4):
            publisher.publish("s", i)
        runtime.run_for(0.2)
        reader = StreamReader(ca, "s")
        reader.poll(limit=2)
        cursor = reader.checkpoint()
        # Simulated crash: a new reader resumes from the checkpoint.
        resumed = StreamReader(ca, "s", start_after_lid=cursor)
        assert [e.payload for e in resumed.poll()] == [2, 3]

    def test_cross_datacenter_consumption(self, streams):
        runtime, deployment, ca, cb = streams
        EventPublisher(ca).publish("geo", "from-A")
        assert deployment.settle(max_seconds=10)
        reader_at_b = StreamReader(cb, "geo")
        events = reader_at_b.poll()
        assert [e.payload for e in events] == ["from-A"]
        assert events[0].host == "A"

    def test_event_identity_globally_unique(self, streams):
        runtime, deployment, ca, cb = streams
        EventPublisher(ca).publish("s", 1)
        EventPublisher(cb).publish("s", 2)
        assert deployment.settle(max_seconds=10)
        events = StreamReader(ca, "s").poll()
        identities = {e.identity for e in events}
        assert len(identities) == 2


class TestStreamProcessor:
    def test_handlers_invoked_per_event(self, streams):
        runtime, deployment, ca, cb = streams
        seen = []
        processor = StreamProcessor(ca)
        processor.subscribe("s", lambda e: seen.append(e.payload))
        EventPublisher(ca).publish("s", "one")
        runtime.run_for(0.2)
        assert processor.step() == 1
        assert seen == ["one"]
        assert processor.step() == 0  # exactly once

    def test_multiple_subscriptions(self, streams):
        runtime, deployment, ca, cb = streams
        counts = {"a": 0, "b": 0}
        processor = StreamProcessor(ca)
        processor.subscribe("a", lambda e: counts.__setitem__("a", counts["a"] + 1))
        processor.subscribe("b", lambda e: counts.__setitem__("b", counts["b"] + 1))
        publisher = EventPublisher(ca)
        publisher.publish("a", 1)
        publisher.publish("a", 2)
        publisher.publish("b", 3)
        runtime.run_for(0.2)
        processor.step()
        assert counts == {"a": 2, "b": 1}


class TestPhotonStyleJoin:
    def test_join_across_datacenters(self, streams):
        """§4.2 / Photon: join click and query streams produced at
        different datacenters, exactly once."""
        runtime, deployment, ca, cb = streams
        clicks = EventPublisher(ca)
        queries = EventPublisher(cb)
        clicks.publish("clicks", {"qid": 1, "url": "u1"})
        queries.publish("queries", {"qid": 1, "text": "t1"})
        queries.publish("queries", {"qid": 2, "text": "t2"})
        assert deployment.settle(max_seconds=10)
        joiner = StreamJoiner(ca, "clicks", "queries", key_fn=lambda p: p["qid"])
        pairs = joiner.step()
        assert len(pairs) == 1
        left, right = pairs[0]
        assert left.payload["url"] == "u1"
        assert right.payload["text"] == "t1"

    def test_join_is_exactly_once(self, streams):
        runtime, deployment, ca, cb = streams
        clicks = EventPublisher(ca)
        clicks.publish("l", {"k": 1})
        clicks.publish("r", {"k": 1})
        runtime.run_for(0.2)
        joiner = StreamJoiner(ca, "l", "r", key_fn=lambda p: p["k"])
        assert len(joiner.step()) == 1
        assert joiner.step() == []

    def test_late_partner_joins_on_arrival(self, streams):
        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        publisher.publish("l", {"k": 9})
        runtime.run_for(0.2)
        joiner = StreamJoiner(ca, "l", "r", key_fn=lambda p: p["k"])
        assert joiner.step() == []
        publisher.publish("r", {"k": 9})
        runtime.run_for(0.2)
        assert len(joiner.step()) == 1

    def test_window_bounds_buffer(self, streams):
        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        for i in range(6):
            publisher.publish("l", {"k": i})
        runtime.run_for(0.2)
        joiner = StreamJoiner(ca, "l", "r", key_fn=lambda p: p["k"], window=2)
        joiner.step()
        assert joiner.buffered() <= 3


class TestWindowedAggregation:
    def test_windows_close_as_the_head_passes(self, streams):
        from repro.apps import WindowedAggregator

        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        aggregator = WindowedAggregator(ca, "s", window_lids=4, aggregate=len)
        for i in range(10):
            publisher.publish("s", i)
        runtime.run_for(0.2)
        windows = aggregator.step()
        # Head at 9 closes windows [0,3] and [4,7]; [8,9] stays open.
        assert windows == [(0, 4), (1, 4)]

    def test_windows_are_emitted_exactly_once(self, streams):
        from repro.apps import WindowedAggregator

        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        aggregator = WindowedAggregator(ca, "s", window_lids=2, aggregate=len)
        for i in range(4):
            publisher.publish("s", i)
        runtime.run_for(0.2)
        first = aggregator.step()
        second = aggregator.step()
        assert len(first) == 2
        assert second == []

    def test_empty_windows_are_emitted(self, streams):
        from repro.apps import WindowedAggregator

        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        # Other traffic moves the head without touching stream "quiet".
        aggregator = WindowedAggregator(ca, "quiet", window_lids=2, aggregate=len)
        for i in range(4):
            publisher.publish("busy", i)
        runtime.run_for(0.2)
        windows = aggregator.step()
        assert windows == [(0, 0), (1, 0)]

    def test_custom_aggregate_function(self, streams):
        from repro.apps import WindowedAggregator

        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        aggregator = WindowedAggregator(
            ca, "n", window_lids=3,
            aggregate=lambda events: sum(e.payload for e in events),
        )
        for value in (1, 2, 3):
            publisher.publish("n", value)
        runtime.run_for(0.2)
        assert aggregator.step() == [(0, 6)]

    def test_same_windows_at_every_datacenter(self, streams):
        """Windows are functions of log positions; after convergence the
        same aggregation runs identically at each datacenter's own log...
        per-DC logs may order concurrent events differently, so windows are
        per-replica deterministic (reproducible), not globally identical —
        this asserts reproducibility at one DC."""
        from repro.apps import WindowedAggregator

        runtime, deployment, ca, cb = streams
        publisher = EventPublisher(ca)
        for i in range(6):
            publisher.publish("s", i)
        assert deployment.settle(max_seconds=10)
        first = WindowedAggregator(ca, "s", window_lids=3, aggregate=len).step()
        again = WindowedAggregator(ca, "s", window_lids=3, aggregate=len).step()
        assert first == again == [(0, 3), (1, 3)]
