"""Runner lifecycle: phases, artifact persistence, determinism, failures."""

import json

import pytest

from repro.scenarios import (
    EXECUTORS,
    Invariant,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    latest_run_dir,
    next_run_id,
    run_scenario,
)

#: A seconds-scale deterministic spec used throughout (tiny FLStore run).
def _quick_spec(**overrides):
    defaults = dict(
        name="quick-flstore",
        title="quick",
        kind="flstore",
        topology=TopologySpec(maintainers=1, profile="public-cloud"),
        workload=WorkloadSpec(target_rate=50_000, duration=0.3, warmup=0.1),
        invariants=(Invariant(metric="points.0.achieved", op="gt", value=0),),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def test_multiproc_pipeline_point_runs_inline_with_zero_workers(tmp_path):
    """The multiproc executor path, sans process spawn: workers=0 routes the
    pre-encoded batch frames through the in-process fast path, so the wiring
    (spec -> executor -> perf document) is covered at tier-1 speed."""
    spec = ScenarioSpec(
        name="quick-multiproc",
        title="quick multiproc",
        kind="pipeline",
        runtime="multiproc",
        topology=TopologySpec(workers=0),
        workload=WorkloadSpec(total_records=5_000, lid_batch=500),
        invariants=(
            Invariant(metric="points.0.records_stored", op="eq", value=5_000),
            Invariant(metric="points.0.workers", op="eq", value=0),
        ),
    )
    result = ScenarioRunner(run_root=tmp_path).run(spec)
    assert result.status == "passed", result.error
    perf = json.loads((result.artifacts_dir / "perf.json").read_text())
    assert perf["base"]["records_stored"] == 5_000
    assert perf["base"]["records_per_host_sec"] > 0
    assert perf["base"]["bytes_routed"] == 0  # inline: nothing crossed a socket


def test_lifecycle_phases_and_artifacts(tmp_path):
    result = ScenarioRunner(run_root=tmp_path).run(_quick_spec())
    assert [(p.name, p.status) for p in result.phases] == [
        ("standup", "ok"), ("experiment", "ok"), ("teardown", "ok")
    ]
    assert result.status == "passed"
    run_dir = result.artifacts_dir
    assert run_dir == tmp_path / "quick-flstore" / "run-0001"
    names = {p.name for p in run_dir.iterdir()}
    assert {"spec.json", "aggregates.json", "run.json"} <= names
    # The persisted spec round-trips to the exact spec that ran.
    persisted = ScenarioSpec.from_json((run_dir / "spec.json").read_text())
    assert persisted == result.spec
    run_doc = json.loads((run_dir / "run.json").read_text())
    assert run_doc["status"] == "passed"
    assert run_doc["invariant_failures"] == []


def test_run_ids_are_sequential(tmp_path):
    runner = ScenarioRunner(run_root=tmp_path)
    first = runner.run(_quick_spec())
    second = runner.run(_quick_spec())
    assert first.run_id == "run-0001"
    assert second.run_id == "run-0002"
    scenario_dir = tmp_path / "quick-flstore"
    assert next_run_id(scenario_dir) == "run-0003"
    assert latest_run_dir(scenario_dir) == second.artifacts_dir


def test_seeded_runs_produce_byte_identical_aggregates(tmp_path):
    runner = ScenarioRunner(run_root=tmp_path)
    # Two maintainers so gossip traffic exists for the fault rule to hit.
    spec = _quick_spec(
        topology=TopologySpec(maintainers=2, profile="public-cloud"),
        faults={
            "seed": 5,
            "rules": [{"kind": "duplicate", "message_type": "GossipHL",
                       "probability": 0.3, "delay": 0.01}],
            "crashes": [], "partitions": [],
        },
    )
    first = runner.run(spec)
    second = runner.run(spec)
    a = (first.artifacts_dir / "aggregates.json").read_bytes()
    b = (second.artifacts_dir / "aggregates.json").read_bytes()
    assert a == b
    assert json.loads(a)["faults"]["duplicated"] > 0


def test_no_persist_runner_writes_nothing(tmp_path):
    result = run_scenario(_quick_spec(), run_root=None)
    assert result.artifacts_dir is None
    assert result.passed
    assert list(tmp_path.iterdir()) == []


def test_teardown_runs_when_experiment_raises(tmp_path, monkeypatch):
    def explode(self, context, label, point, plan):
        raise RuntimeError("mid-experiment crash")

    monkeypatch.setattr(type(EXECUTORS["flstore"]), "run_point", explode)
    result = ScenarioRunner(run_root=tmp_path).run(_quick_spec())
    assert result.status == "error"
    assert "mid-experiment crash" in result.error
    assert result.phase("experiment").status == "failed"
    # Teardown still ran, and artifacts were still persisted.
    assert result.phase("teardown").status == "ok"
    run_doc = json.loads((result.artifacts_dir / "run.json").read_text())
    assert run_doc["status"] == "error"
    assert any(p["name"] == "teardown" and p["status"] == "ok"
               for p in run_doc["phases"])


def test_standup_failure_skips_experiment(tmp_path):
    bad = _quick_spec(faults={"seed": 1, "rules": [{"kind": "frobnicate"}],
                              "crashes": [], "partitions": []})
    result = ScenarioRunner(run_root=tmp_path).run(bad)
    assert result.status == "error"
    assert result.phase("standup").status == "failed"
    assert result.phase("experiment").status == "skipped"
    assert result.phase("teardown").status == "skipped"


def test_invariant_failure_marks_run_failed_and_raises(tmp_path):
    spec = _quick_spec(invariants=(
        Invariant(metric="points.0.achieved", op="gt", value=10**9,
                  note="impossible claim"),
    ))
    result = ScenarioRunner(run_root=tmp_path).run(spec)
    assert result.status == "failed"
    assert "impossible claim" in result.invariant_failures[0]
    with pytest.raises(ScenarioError, match="impossible claim") as excinfo:
        ScenarioRunner(run_root=tmp_path).run(spec, raise_on_failure=True)
    # The raised error still carries the persisted result.
    assert excinfo.value.result.artifacts_dir is not None


def test_geo_scenario_requires_two_datacenters():
    spec = ScenarioSpec(
        name="bad-geo", title="t", kind="geo",
        topology=TopologySpec(datacenters=("A",)),
        workload=WorkloadSpec(total_records=100, duration=0.5, warmup=0.1),
    )
    result = run_scenario(spec, raise_on_failure=False)
    assert result.status == "error"
    assert ">= 2 datacenters" in result.error
