"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.chariots import ChariotsDeployment
from repro.core import DeploymentSpec, Record
from repro.runtime import LocalRuntime


@pytest.fixture
def runtime() -> LocalRuntime:
    return LocalRuntime()


@pytest.fixture
def two_dc_deployment(runtime: LocalRuntime) -> ChariotsDeployment:
    """A small two-datacenter Chariots deployment on the local runtime."""
    return ChariotsDeployment(runtime, ["A", "B"], batch_size=8)


@pytest.fixture
def three_dc_deployment(runtime: LocalRuntime) -> ChariotsDeployment:
    return ChariotsDeployment(
        runtime,
        ["A", "B", "C"],
        spec=DeploymentSpec(batchers=2, filters=2, queues=2, maintainers=2),
        batch_size=5,
    )


def rec(host: str, toid: int, body=None, deps: Optional[Dict[str, int]] = None, tags=None) -> Record:
    """Shorthand record constructor for tests."""
    return Record.make(host, toid, body if body is not None else f"{host}:{toid}", tags=tags, deps=deps)


def chain(host: str, n: int, start: int = 1) -> List[Record]:
    """n records from one host in total order."""
    return [rec(host, t) for t in range(start, start + n)]
