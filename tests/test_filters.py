"""Tests for the filter stage (repro.chariots.filters)."""

import pytest

from repro.chariots import FilterCore, FilterMap
from repro.chariots.messages import DraftRecord
from repro.core import ConfigurationError

from conftest import rec


def draft(client: str, seq: int) -> DraftRecord:
    return DraftRecord(client=client, seq=seq, body=f"{client}:{seq}")


class TestFilterMap:
    def test_single_filter_champions_everything(self):
        fmap = FilterMap(["f0"])
        assert fmap.filter_for("A", 1) == "f0"
        assert fmap.filter_for("B", 99) == "f0"

    def test_host_assignment(self):
        fmap = FilterMap(["f0", "f1"])
        fmap.assign_host("A", ["f0"])
        fmap.assign_host("B", ["f1"])
        assert fmap.filter_for("A", 7) == "f0"
        assert fmap.filter_for("B", 7) == "f1"

    def test_residue_slicing_when_sharing_a_host(self):
        # §6.2: filter x takes odd TOIds, filter y takes even TOIds.
        fmap = FilterMap(["x", "y"])
        fmap.assign_host("A", ["x", "y"])
        assert fmap.filter_for("A", 1) == "y"  # 1 % 2 = 1 -> index 1
        assert fmap.filter_for("A", 2) == "x"
        champions = {fmap.filter_for("A", t) for t in range(1, 10)}
        assert champions == {"x", "y"}

    def test_duplicate_host_assignment_rejected(self):
        fmap = FilterMap(["f0"])
        fmap.assign_host("A", ["f0"])
        with pytest.raises(ConfigurationError):
            fmap.assign_host("A", ["f0"])

    def test_reassignment_must_be_future(self):
        fmap = FilterMap(["f0"])
        fmap.assign_host("A", ["f0"])
        with pytest.raises(ConfigurationError):
            fmap.reassign_host("A", ["f0"], from_toid=1)

    def test_future_reassignment_splits_at_boundary(self):
        fmap = FilterMap(["f0"])
        fmap.assign_host("A", ["f0"])
        fmap.reassign_host("A", ["f0", "f1"], from_toid=100)
        assert fmap.filter_for("A", 99) == "f0"
        assert {fmap.filter_for("A", t) for t in range(100, 110)} == {"f0", "f1"}

    def test_next_toid_for_respects_slicing(self):
        fmap = FilterMap(["x", "y"])
        fmap.assign_host("A", ["x", "y"])
        # x champions even TOIds (toid % 2 == 0 -> index 0).
        assert fmap.next_toid_for("A", 0, "x") == 2
        assert fmap.next_toid_for("A", 2, "x") == 4
        assert fmap.next_toid_for("A", 0, "y") == 1

    def test_next_toid_for_crosses_epochs(self):
        fmap = FilterMap(["f0"])
        fmap.assign_host("A", ["f0"])
        fmap.reassign_host("A", ["f1"], from_toid=5)
        assert fmap.next_toid_for("A", 3, "f0") == 4
        assert fmap.next_toid_for("A", 4, "f1") == 5

    def test_draft_champion_is_sticky(self):
        fmap = FilterMap(["f0", "f1"])
        d = draft("client-1", 1)
        first = fmap.filter_for_draft(d)
        fmap.add_filter("f2")
        assert fmap.filter_for_draft(draft("client-1", 2)) == first

    def test_champions_for(self):
        fmap = FilterMap(["x", "y"])
        fmap.assign_host("A", ["x", "y"])
        assert set(fmap.champions_for("A", 1)) == {"x", "y"}


class TestExternalAdmission:
    def make(self):
        fmap = FilterMap(["f0"])
        fmap.assign_host("A", ["f0"])
        fmap.assign_host("B", ["f0"])
        return FilterCore("f0", fmap)

    def test_in_order_admission(self):
        core = self.make()
        assert [r.toid for r in core.offer_external(rec("A", 1))] == [1]
        assert [r.toid for r in core.offer_external(rec("A", 2))] == [2]

    def test_duplicate_dropped(self):
        core = self.make()
        core.offer_external(rec("A", 1))
        assert core.offer_external(rec("A", 1)) == []
        assert core.duplicates_dropped == 1

    def test_out_of_order_buffered_then_released(self):
        core = self.make()
        assert core.offer_external(rec("A", 3)) == []
        assert core.offer_external(rec("A", 2)) == []
        released = core.offer_external(rec("A", 1))
        assert [r.toid for r in released] == [1, 2, 3]
        assert core.buffered_count() == 0

    def test_duplicate_of_buffered_record_dropped(self):
        core = self.make()
        core.offer_external(rec("A", 2))
        core.offer_external(rec("A", 2))
        assert core.duplicates_dropped == 1

    def test_hosts_are_independent(self):
        core = self.make()
        assert core.offer_external(rec("A", 1)) != []
        assert core.offer_external(rec("B", 1)) != []
        assert core.offer_external(rec("B", 3)) == []  # B:2 missing

    def test_sliced_filter_expects_only_its_residues(self):
        fmap = FilterMap(["x", "y"])
        fmap.assign_host("A", ["x", "y"])
        x = FilterCore("x", fmap)
        # x champions evens: 2, 4, 6...
        assert [r.toid for r in x.offer_external(rec("A", 2))] == [2]
        assert x.offer_external(rec("A", 6)) == []  # 4 missing
        assert [r.toid for r in x.offer_external(rec("A", 4))] == [4, 6]


class TestDraftAdmission:
    def make(self):
        return FilterCore("f0", FilterMap(["f0"]))

    def test_exactly_once_per_client(self):
        core = self.make()
        assert core.offer_draft(draft("c", 1)) != []
        assert core.offer_draft(draft("c", 1)) == []
        assert core.duplicates_dropped == 1

    def test_client_fifo_restored(self):
        core = self.make()
        assert core.offer_draft(draft("c", 2)) == []
        released = core.offer_draft(draft("c", 1))
        assert [d.seq for d in released] == [1, 2]

    def test_clients_are_independent(self):
        core = self.make()
        assert core.offer_draft(draft("c1", 1)) != []
        assert core.offer_draft(draft("c2", 1)) != []

    def test_records_admitted_counter(self):
        core = self.make()
        core.offer_draft(draft("c", 1))
        core.offer_external(rec("A", 1))
        assert core.records_admitted == 2
