"""Tests for live elasticity (§6.3)."""

import pytest

from repro.chariots import ChariotsDeployment
from repro.chariots.elasticity import (
    expand_batchers,
    expand_filters,
    expand_maintainers,
    expand_queues,
)
from repro.core import ConfigurationError, causal_order_respected
from repro.runtime import LocalRuntime


@pytest.fixture
def live_deployment():
    runtime = LocalRuntime()
    deployment = ChariotsDeployment(runtime, ["A", "B"], batch_size=4)
    ca = deployment.blocking_client("A")
    cb = deployment.blocking_client("B")
    for i in range(6):
        ca.append(f"pre-a{i}")
        cb.append(f"pre-b{i}")
    assert deployment.settle(max_seconds=10)
    return runtime, deployment, ca, cb


def post_expansion_workload(deployment, ca, cb, n=10):
    for i in range(n):
        ca.append(f"post-a{i}")
        cb.append(f"post-b{i}")
    assert deployment.settle(max_seconds=20)


class TestExpandMaintainers:
    def test_expansion_preserves_old_and_new_records(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        before = {e.rid for e in deployment["A"].all_entries()}
        expand_maintainers(deployment["A"], 1)
        post_expansion_workload(deployment, ca, cb, n=30)
        after = {e.rid for e in deployment["A"].all_entries()}
        assert before <= after
        assert len(after) == 12 + 60

    def test_new_maintainer_receives_records(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        [new] = expand_maintainers(deployment["A"], 1)
        post_expansion_workload(deployment, ca, cb, n=40)
        assert new.core.stored_count() > 0

    def test_replication_covers_new_maintainer_records(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        expand_maintainers(deployment["A"], 1)
        post_expansion_workload(deployment, ca, cb, n=40)
        assert deployment.converged()

    def test_count_validation(self, live_deployment):
        _, deployment, _, _ = live_deployment
        with pytest.raises(ConfigurationError):
            expand_maintainers(deployment["A"], 0)

    def test_logs_stay_causal_after_expansion(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        expand_maintainers(deployment["A"], 2)
        post_expansion_workload(deployment, ca, cb, n=30)
        records = [e.record for e in deployment["A"].all_entries()]
        assert causal_order_respected(records)


class TestExpandFilters:
    def test_host_traffic_splits_across_filters(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        [new] = expand_filters(deployment["A"], host="B", count=1, from_toid=7)
        post_expansion_workload(deployment, ca, cb, n=30)
        # B's records past TOId 7 split between old and new champions.
        assert new.core.records_admitted > 0
        assert deployment.converged()

    def test_reassignment_boundary_respected(self, live_deployment):
        _, deployment, _, _ = live_deployment
        fmap = deployment["A"].filter_map
        before = fmap.filter_for("B", 6)
        expand_filters(deployment["A"], host="B", count=1, from_toid=50)
        assert fmap.filter_for("B", 6) == before  # old records unaffected

    def test_default_from_toid_is_in_future(self, live_deployment):
        _, deployment, _, _ = live_deployment
        seen = deployment["A"].frontier().get("B", 0)
        expand_filters(deployment["A"], host="B", count=1)
        epochs = deployment["A"].filter_map._host_epochs["B"]
        assert epochs[-1][0] > seen


class TestExpandQueues:
    def test_token_ring_grows(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        expand_queues(deployment["A"], 1)
        assert len(deployment["A"].queues) == 2
        post_expansion_workload(deployment, ca, cb, n=20)
        # Both queues hold the token over time; records keep flowing.
        assert deployment["A"].total_records() == 12 + 40

    def test_lids_stay_dense_with_two_queues(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        expand_queues(deployment["A"], 1)
        post_expansion_workload(deployment, ca, cb, n=20)
        lids = [e.lid for e in deployment["A"].all_entries()]
        assert lids == list(range(len(lids)))

    def test_filters_learn_new_queue(self, live_deployment):
        _, deployment, _, _ = live_deployment
        expand_queues(deployment["A"], 1)
        new_name = deployment["A"].queues[-1].name
        for stage in deployment["A"].filters:
            assert new_name in stage.queues


class TestExpandBatchers:
    def test_receivers_learn_new_batcher(self, live_deployment):
        _, deployment, _, _ = live_deployment
        expand_batchers(deployment["A"], 1)
        new_name = deployment["A"].batchers[-1].name
        for receiver in deployment["A"].receivers:
            assert new_name in receiver.batchers

    def test_new_clients_use_new_batcher(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        expand_batchers(deployment["A"], 1)
        fresh = deployment.blocking_client("A")
        for i in range(4):
            fresh.append(f"fresh{i}")
        assert deployment.settle(max_seconds=10)
        assert deployment.converged()


class TestCombinedExpansion:
    def test_scale_every_stage_at_once(self, live_deployment):
        runtime, deployment, ca, cb = live_deployment
        expand_maintainers(deployment["A"], 1)
        expand_filters(deployment["A"], host="A", count=1)
        expand_queues(deployment["A"], 1)
        expand_batchers(deployment["A"], 1)
        post_expansion_workload(deployment, ca, cb, n=40)
        assert deployment.converged()
        records = [e.record for e in deployment["B"].all_entries()]
        assert causal_order_respected(records)
