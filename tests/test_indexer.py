"""Tests for the tag indexers (repro.flstore.indexer)."""

from repro.flstore import IndexerCore


def make_indexed():
    core = IndexerCore("ix")
    # lids 0..9, tag "k" with value = lid % 3; tag "even" on even lids.
    for lid in range(10):
        core.add("k", lid % 3, lid)
        if lid % 2 == 0:
            core.add("even", True, lid)
    return core


class TestLookups:
    def test_lookup_by_key(self):
        core = make_indexed()
        assert core.lookup("even") == [8, 6, 4, 2, 0]

    def test_lookup_unknown_key(self):
        assert make_indexed().lookup("nope") == []

    def test_most_recent_limit(self):
        core = make_indexed()
        assert core.lookup("even", limit=2) == [8, 6]

    def test_oldest_first(self):
        core = make_indexed()
        assert core.lookup("even", most_recent=False, limit=2) == [0, 2]

    def test_value_filter(self):
        core = make_indexed()
        assert core.lookup("k", tag_value=1) == [7, 4, 1]

    def test_min_value_filter(self):
        # §5.3: "look up records with a certain tag with values greater
        # than i and return the most recent x records".
        core = make_indexed()
        assert core.lookup("k", tag_min_value=2, limit=2) == [8, 5]

    def test_max_lid_bound_supports_snapshots(self):
        core = make_indexed()
        assert core.lookup("even", max_lid=5) == [4, 2, 0]
        assert core.lookup("even", max_lid=4, limit=1) == [4]

    def test_out_of_order_insertion_stays_sorted(self):
        core = IndexerCore("ix")
        for lid in (5, 1, 9, 3):
            core.add("k", None, lid)
        assert core.lookup("k", most_recent=False) == [1, 3, 5, 9]


class TestPruning:
    def test_prune_below_drops_old_postings(self):
        core = make_indexed()
        dropped = core.prune_below(5)
        assert dropped == 5 + 3  # five "k" postings and lids 0,2,4 of "even"
        assert core.lookup("even") == [8, 6]
        assert core.lookup("k", most_recent=False)[0] == 5

    def test_prune_removes_empty_buckets(self):
        core = IndexerCore("ix")
        core.add("gone", None, 0)
        core.prune_below(10)
        assert core.keys() == []

    def test_postings_counter(self):
        core = make_indexed()
        before = core.postings_stored
        core.prune_below(2)
        assert core.postings_stored < before


class TestBulk:
    def test_add_many(self):
        core = IndexerCore("ix")
        core.add_many([("a", 1, 0), ("b", 2, 1), ("a", 3, 2)])
        assert core.keys() == ["a", "b"]
        assert core.lookup("a") == [2, 0]
