"""Cold storage (repro.flstore.archive) and time travel (repro.apps.timetravel)."""

import os

import pytest

from repro.apps import Checkpointer, Hyksos, LogAuditor
from repro.core import LidOutOfRangeError, ReadRules
from repro.flstore import ArchiveStore, MaintainerCore, OwnershipPlan, TieredReader
from repro.flstore.store import FLStore
from repro.runtime import LocalRuntime

from conftest import rec


class TestArchiveStore:
    def test_archive_receives_gc_evictions(self):
        plan = OwnershipPlan(["m0"], batch_size=10)
        archive = ArchiveStore()
        core = MaintainerCore("m0", plan, archive=archive)
        core.append([rec("A", t) for t in range(1, 6)])
        core.truncate({"A": 3})
        assert len(archive) == 3
        assert archive.get(0).record.toid == 1

    def test_archive_is_idempotent(self):
        archive = ArchiveStore()
        record = rec("A", 1)
        archive(0, record)
        archive(0, record)
        assert len(archive) == 1

    def test_read_by_rules_and_tag(self):
        archive = ArchiveStore()
        for i in range(6):
            archive(i, rec("A", i + 1, tags={"p": i % 2}))
        entries = archive.read(ReadRules(tag_key="p", tag_value=0, limit=2))
        assert [e.lid for e in entries] == [4, 2]

    def test_missing_lid_raises(self):
        with pytest.raises(LidOutOfRangeError):
            ArchiveStore().get(0)

    def test_lid_range(self):
        archive = ArchiveStore()
        assert archive.lid_range() is None
        archive(3, rec("A", 1))
        archive(7, rec("A", 2))
        assert archive.lid_range() == (3, 7)

    def test_dump_and_load(self, tmp_path):
        archive = ArchiveStore()
        for i in range(4):
            archive(i, rec("A", i + 1, tags={"k": i}))
        path = os.path.join(tmp_path, "archive.jsonl")
        assert archive.dump(path) == 4
        restored = ArchiveStore.load(path)
        assert len(restored) == 4
        assert restored.get(2).record.tag_dict() == {"k": 2}


class TestTieredReader:
    def make_world(self):
        runtime = LocalRuntime()
        store = FLStore(runtime, n_maintainers=1, n_indexers=0, batch_size=100)
        archive = ArchiveStore()
        store.maintainers[0].core._archive = archive
        client = store.blocking_client()
        return runtime, store, archive, client

    def test_fallback_to_archive(self):
        runtime, store, archive, client = self.make_world()
        results = [client.append(f"b{i}", tags={"host": "x"}) for i in range(6)]
        # GC the first three records (everything from the client stream).
        host = results[0].rid.host
        store.maintainers[0].core.truncate({host: 3})
        reader = TieredReader(client, archive)
        assert reader.read_lid(results[0].lid).record.body == "b0"  # archived
        assert reader.read_lid(results[5].lid).record.body == "b5"  # live

    def test_combined_rule_reads_cover_history(self):
        runtime, store, archive, client = self.make_world()
        results = [client.append(f"b{i}", tags={"t": 1}) for i in range(6)]
        host = results[0].rid.host
        store.maintainers[0].core.truncate({host: 3})
        reader = TieredReader(client, archive)
        runtime.run_for(0.1)
        entries = reader.read(ReadRules(tag_key="t", most_recent=False))
        assert [e.record.body for e in entries] == [f"b{i}" for i in range(6)]


class TestLogAuditor:
    def make_kv(self):
        runtime = LocalRuntime()
        store = FLStore(runtime, n_maintainers=1, n_indexers=1, batch_size=100)
        client = store.blocking_client()
        kv = Hyksos(client)
        return runtime, client, kv

    def test_state_at_reconstructs_history(self):
        runtime, client, kv = self.make_kv()
        kv.put("x", 1)          # lid 0
        kv.put("y", 2)          # lid 1
        kv.put("x", 3)          # lid 2
        runtime.run_for(0.1)
        auditor = LogAuditor(client)
        assert auditor.state_at(0) == {"x": 1}
        assert auditor.state_at(1) == {"x": 1, "y": 2}
        assert auditor.state_at() == {"x": 3, "y": 2}

    def test_history_lists_all_versions(self):
        runtime, client, kv = self.make_kv()
        for value in (1, 2, 3):
            kv.put("k", value)
        runtime.run_for(0.1)
        auditor = LogAuditor(client)
        assert [v.value for v in auditor.history("k")] == [1, 2, 3]

    def test_diff_between_positions(self):
        runtime, client, kv = self.make_kv()
        kv.put("a", 1)          # lid 0
        kv.put("b", 2)          # lid 1
        kv.put("a", 9)          # lid 2
        runtime.run_for(0.1)
        auditor = LogAuditor(client)
        assert auditor.diff(0) == {"a": (1, 9), "b": (None, 2)}

    def test_blame_reports_provenance(self):
        runtime, client, kv = self.make_kv()
        kv.put("k", "v")
        runtime.run_for(0.1)
        version = LogAuditor(client).blame("k")
        assert version is not None
        assert version.value == "v"
        assert version.toid >= 1

    def test_blame_unknown_key(self):
        runtime, client, kv = self.make_kv()
        assert LogAuditor(client).blame("ghost") is None

    def test_multi_key_record_audits_every_key(self):
        runtime, client, kv = self.make_kv()
        kv.put_many({"x": 1, "y": 2})
        runtime.run_for(0.1)
        auditor = LogAuditor(client)
        assert auditor.state_at() == {"x": 1, "y": 2}


class TestCheckpointer:
    def make_kv(self):
        runtime = LocalRuntime()
        store = FLStore(runtime, n_maintainers=1, n_indexers=1, batch_size=100)
        client = store.blocking_client()
        return runtime, client, Hyksos(client)

    def test_checkpoint_pins_head(self):
        runtime, client, kv = self.make_kv()
        kv.put("x", 1)
        runtime.run_for(0.1)
        checkpointer = Checkpointer(client)
        checkpoint = checkpointer.take()
        assert checkpoint.state == {"x": 1}
        assert checkpoint.upto_lid >= 0

    def test_state_replays_from_nearest_checkpoint(self):
        runtime, client, kv = self.make_kv()
        kv.put("x", 1)
        runtime.run_for(0.1)
        checkpointer = Checkpointer(client)
        checkpointer.take()
        kv.put("x", 2)          # after the checkpoint
        kv.put("y", 3)
        runtime.run_for(0.1)
        head = client.head()
        assert checkpointer.state_at(head) == {"x": 2, "y": 3}

    def test_latest_before(self):
        runtime, client, kv = self.make_kv()
        kv.put("x", 1)
        runtime.run_for(0.1)
        checkpointer = Checkpointer(client)
        first = checkpointer.take()
        kv.put("x", 2)
        runtime.run_for(0.1)
        second = checkpointer.take()
        assert checkpointer.latest_before(first.upto_lid) is first
        assert checkpointer.latest_before(second.upto_lid) is second
