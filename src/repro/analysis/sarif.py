"""SARIF 2.1.0 renderer (``--format sarif``).

Static Analysis Results Interchange Format output so CI can upload the
lint run to code-scanning dashboards (GitHub annotates PR diffs from it).
The emitted document is deliberately minimal but complete: one run, the
full rule table as ``tool.driver.rules`` (so dashboards can describe a
rule even when it produced no results this run), and one ``result`` per
finding carrying the same line-independent fingerprint the baseline uses,
under ``partialFingerprints`` — scanning services dedup alerts across
pushes by it, exactly as the baseline does.

Columns are converted from the linter's 0-based convention to SARIF's
1-based one.  File URIs are emitted relative to the invocation's working
directory when the scan root lies under it (``src/repro/...`` when CI runs
``python -m repro.analysis src`` from the repo root), which is what the
GitHub upload action expects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .findings import Finding
from .rules import ALL_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: ``partialFingerprints`` key; versioned so a future fingerprint scheme
#: change doesn't silently re-match old alerts.
FINGERPRINT_KEY = "chariotsFingerprint/v1"


def _uri_prefix(root: Optional[Path]) -> str:
    """Scan-root prefix to restore repo-relative URIs, when derivable."""
    if root is None:
        return ""
    try:
        rel = root.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        return ""
    posix = rel.as_posix()
    return "" if posix == "." else posix + "/"


def sarif_dict(
    findings: Sequence[Finding], *, root: Optional[Path] = None
) -> Dict[str, Any]:
    """The findings as a SARIF 2.1.0 document (JSON-ready dict)."""
    rule_index: Dict[str, int] = {}
    rules: List[Dict[str, Any]] = []
    for rule in ALL_RULES:
        rule_index[rule.code] = len(rules)
        rules.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.description},
                "defaultConfiguration": {"level": "error"},
            }
        )
    prefix = _uri_prefix(root)
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": prefix + finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint()},
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], *, root: Optional[Path] = None
) -> str:
    """The findings as pretty-printed SARIF 2.1.0 JSON."""
    return json.dumps(sarif_dict(findings, root=root), indent=2)


__all__ = ["FINGERPRINT_KEY", "SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "sarif_dict"]
