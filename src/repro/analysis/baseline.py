"""Curated baseline: known findings that don't block the gate.

The baseline is a JSON file mapping finding fingerprints (see
:meth:`repro.analysis.findings.Finding.fingerprint`) to occurrence counts.
``--baseline`` subtracts it from a fresh run, so legacy findings don't fail
CI while every *new* finding still does.  ``--write-baseline`` regenerates
the file; keeping it committed (and asserting freshness in the tests) makes
the debt explicit and monotonically shrinkable.

Fingerprints exclude line numbers on purpose: moving code around must not
invalidate the baseline, only genuinely new findings should.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into ``fingerprint -> count`` (empty if absent)."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"malformed baseline findings table in {path}")
    return {str(k): int(v) for k, v in findings.items()}


def dump_baseline(findings: List[Finding]) -> str:
    """Serialise current findings as baseline JSON (sorted, diff-friendly)."""
    counts = Counter(f.fingerprint() for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro.analysis",
        "findings": {k: counts[k] for k in sorted(counts)},
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def write_baseline(path: Path, findings: List[Finding]) -> None:
    path.write_text(dump_baseline(findings), encoding="utf-8")


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count) against the baseline.

    Multiplicity matters: a baseline entry with count 2 absorbs at most two
    identical findings; a third identical one is new.
    """
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.fingerprint()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
