"""Entry point: ``python -m repro.analysis [paths...]``."""

import sys

from .cli import main

sys.exit(main())
