"""Source-tree scanner: parse every module once, share the ASTs with rules.

Rules never read files themselves.  The scanner walks the requested roots,
parses each ``.py`` file a single time, precomputes the facts several rules
need (import alias map, noqa directives), and hands the resulting
:class:`ProjectInfo` to every rule.  Keeping this layer purely ``ast``-based
(no imports of the scanned code) is what lets the same rules run against
synthetic fixture trees in the tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .noqa import BoundedMap, NoqaMap, collect_bounded, collect_noqa

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "node_modules"}


@dataclass(slots=True)
class ModuleInfo:
    """One parsed source module plus the precomputed facts rules share."""

    path: Path  #: absolute filesystem path
    relpath: str  #: posix path relative to the scan root
    source: str
    tree: ast.Module
    noqa: NoqaMap
    #: local name -> canonical dotted name, from this module's imports:
    #: ``import time as t`` maps ``t -> time``; ``from time import
    #: perf_counter`` maps ``perf_counter -> time.perf_counter``.
    imports: Dict[str, str] = field(default_factory=dict)
    #: line number -> ``# chariots: bounded-by=<reason>`` declarations.
    bounded: BoundedMap = field(default_factory=dict)

    @property
    def dir_parts(self) -> Tuple[str, ...]:
        """Directory components of the module, e.g. ``("repro", "sim")``."""
        return Path(self.relpath).parts[:-1]

    def in_package(self, names: Sequence[str]) -> bool:
        """Whether any directory component matches one of ``names``."""
        return any(part in names for part in self.dir_parts)


@dataclass(slots=True)
class ProjectInfo:
    """Every scanned module, in deterministic (sorted-path) order."""

    root: Path
    modules: List[ModuleInfo] = field(default_factory=list)
    #: Memoised :class:`~repro.analysis.model.ProjectModel` — built once per
    #: scan by the first rule that needs the whole-project view, shared by
    #: every later rule and the ``--graph`` dump (kept ``Any`` to avoid a
    #: circular import with :mod:`repro.analysis.model`).
    model_cache: Optional[Any] = field(default=None, repr=False)
    #: Memoised :class:`~repro.analysis.actors.ActorGraph` — the cross-actor
    #: send/handle graph layered on top of the model, built once per scan by
    #: the first cross-actor rule (CHR018/CHR019/CHR021) and shared with the
    #: ``--graph`` dump (``Any`` for the same circular-import reason).
    actor_cache: Optional[Any] = field(default=None, repr=False)

    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules)

    def find(self, relpath_suffix: str) -> List[ModuleInfo]:
        """Modules whose relative path ends with ``relpath_suffix``."""
        return [m for m in self.modules if m.relpath.endswith(relpath_suffix)]


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Resolve local import aliases to canonical dotted names.

    Only top-level and nested plain imports are tracked; relative imports
    map to their trailing module path (enough to recognise stdlib modules,
    which is all the rules need).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{module}.{name.name}" if module else name.name
    return aliases


def qualified_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a ``Name``/``Attribute`` chain, if resolvable.

    ``t.monotonic()`` with ``import time as t`` resolves to
    ``time.monotonic``; unresolvable shapes (subscripts, calls) yield None.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def parse_module(path: Path, relpath: str) -> Optional[ModuleInfo]:
    """Parse one file; syntactically invalid files are skipped (not linted)."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    return ModuleInfo(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        noqa=collect_noqa(source),
        imports=_import_map(tree),
        bounded=collect_bounded(source),
    )


def scan(paths: Sequence[Path]) -> ProjectInfo:
    """Parse every ``.py`` file under ``paths`` into one :class:`ProjectInfo`.

    Relative paths are computed against the first root so fingerprints stay
    stable no matter where the tool is invoked from.
    """
    roots = [p.resolve() for p in paths]
    base = roots[0] if roots else Path.cwd()
    if base.is_file():
        base = base.parent
    files: List[Tuple[str, Path]] = []
    for root in roots:
        if root.is_file():
            files.append((root.name, root))
            continue
        for path in sorted(root.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            try:
                rel = path.relative_to(base).as_posix()
            except ValueError:
                rel = path.as_posix()
            files.append((rel, path))
    project = ProjectInfo(root=base)
    for rel, path in files:
        module = parse_module(path, rel)
        if module is not None:
            project.modules.append(module)
    return project
