"""CHR020 — verify the exactly-once protocol, and that the spec still fits.

Two failure modes, both surfaced as findings:

* **Spec drift** — a :class:`~.spec.CodeAnchor` no longer matches
  ``runtime/multiproc.py``: the code changed in a way the declarative
  machine does not describe, so whatever the checker proves is about a
  protocol the repo no longer runs.  Re-derive the transition (and its
  anchors) from the new code before trusting the green check.

* **Invariant violation** — the bounded exploration of
  :class:`~.machine.MultiprocModel` found a reachable state breaking
  exactly-once emission, the retransmit-window bound, replay-gap freedom,
  or quiescent completeness.  The finding carries the shortest
  counterexample trace (event labels from the initial state) so the bug
  reproduces by hand.

The in-lint exploration is sized to stay well under a second (the full
10⁴–10⁵-state runs live in ``tests/test_protocol_check.py``); it is still
exhaustive for its bounds — ``complete=True`` or the rule says so.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..project import ProjectInfo
from ..rules.base import Rule
from .checker import explore
from .extract import check_anchors, locate_classes
from .machine import MPConfig, MultiprocModel
from .spec import multiproc_spec

#: In-lint bounds: one crash, one dup, reorder on, three injected frames —
#: a few thousand states, milliseconds to explore, still a complete proof
#: over this adversary.
LINT_CONFIG = MPConfig(max_injects=3, max_dups=1, max_crashes=1, allow_reorder=True)


class ProtocolInvariantRule(Rule):
    """CHR020: model-check the multiproc seq/ack/output-commit machine."""

    code = "CHR020"
    name = "protocol-invariant"
    description = (
        "The declarative model of the multiproc exactly-once protocol must "
        "still anchor to runtime/multiproc.py (spec drift is a finding), "
        "and its bounded exploration under deliver/dup/reorder/crash/"
        "respawn must uphold exactly-once emissions, the retransmit-window "
        "bound, and replay-gap freedom — violations carry a counterexample "
        "trace."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        spec = multiproc_spec()
        located = locate_classes(spec, project)
        if located is None:
            return  # tree without the protocol: out of scope
        drifts = check_anchors(spec, project)
        for drift in drifts:
            yield self.finding(
                drift.module,
                drift.line,
                drift.col,
                f"protocol spec drift: {drift.describe()} — update the "
                "machine in analysis/protocol_check to match the code "
                "before trusting its verification",
            )
        if drifts:
            return  # the model no longer describes the code; don't "verify"
        module, cls = located[spec.required_classes[0]]
        result = explore(MultiprocModel(LINT_CONFIG), max_states=100_000)
        if not result.complete:
            yield self.finding(
                module,
                cls.lineno,
                cls.col_offset,
                "protocol exploration truncated before exhausting the "
                "bounded state space — shrink LINT_CONFIG or raise the "
                "state cap so the in-lint check stays a proof",
            )
        for violation in result.violations:
            yield self.finding(
                module,
                cls.lineno,
                cls.col_offset,
                f"protocol invariant violated: {violation.render()} "
                f"(explored {result.states_explored} states)",
            )


__all__ = ["LINT_CONFIG", "ProtocolInvariantRule"]
