"""Declarative protocol state-machine format, pinned to the code by anchors.

A :class:`ProtocolSpec` names the transitions of a protocol and, for each
transition, the :class:`CodeAnchor` patterns that must hold in the real
source for the model (:mod:`.machine`) to still be a faithful abstraction
of it.  Anchors are deliberately coarse AST patterns — "``_admit_frame``
bumps ``delivery_seq`` and appends to ``unacked``" — not line numbers:
they survive refactors that preserve the protocol and fail loudly on ones
that change it, which is the whole point.  When an anchor stops matching,
CHR020 reports *spec drift* instead of silently verifying a machine the
code no longer implements.

Anchor pattern kinds (all matched anywhere inside the named method):

========== ==========================================================
kind        matches when the method contains …
========== ==========================================================
augassign   ``<x>.<attr> += …`` (an AugAssign targeting the attribute)
assign      ``<x>.<attr> = …`` (plain or tuple-unpacked assignment)
append      ``<x>.<attr>.append/appendleft(…)``
method_call ``<x>.<attr>.<detail>(…)`` (e.g. ``unacked.popleft``)
compare     a comparison with ``<x>.<attr>`` (or a subscript of it) on
            either side (e.g. ``seq <= slot.emission_high``)
call        any call of a function/method named ``<detail>``
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

ANCHOR_KINDS = ("augassign", "assign", "append", "method_call", "compare", "call")


@dataclass(frozen=True, slots=True)
class CodeAnchor:
    """One AST pattern that must match inside ``cls.method``."""

    cls: str  #: class name the method lives on
    method: str  #: method name to search
    kind: str  #: one of :data:`ANCHOR_KINDS`
    attr: str = ""  #: attribute name the pattern involves (where relevant)
    detail: str = ""  #: method/callee name for ``method_call``/``call``

    def describe(self) -> str:
        target = self.attr or self.detail
        extra = f".{self.detail}()" if self.kind == "method_call" else ""
        return f"{self.cls}.{self.method}: {self.kind} {target}{extra}"


@dataclass(frozen=True, slots=True)
class Transition:
    """One named protocol transition and the anchors pinning it to code."""

    name: str
    description: str
    anchors: Tuple[CodeAnchor, ...]


@dataclass(frozen=True, slots=True)
class ProtocolSpec:
    """A protocol: where its code lives and which transitions define it."""

    name: str
    #: relpath suffixes of the modules implementing the protocol.
    module_suffixes: Tuple[str, ...]
    #: class names that must all exist for the spec to apply to a scan
    #: (fixture trees without them are simply out of scope).
    required_classes: Tuple[str, ...]
    transitions: Tuple[Transition, ...]

    def all_anchors(self) -> Tuple[Tuple[str, CodeAnchor], ...]:
        return tuple(
            (t.name, anchor) for t in self.transitions for anchor in t.anchors
        )


def multiproc_spec() -> ProtocolSpec:
    """The seq/ack/output-commit/respawn machine of ``runtime/multiproc.py``.

    Transition names match the event labels of
    :class:`~repro.analysis.protocol_check.machine.MultiprocModel`, so a
    counterexample trace reads directly against this table.
    """
    return ProtocolSpec(
        name="multiproc-exactly-once",
        module_suffixes=("runtime/multiproc.py", "runtime/supervisor.py"),
        required_classes=("MultiprocRuntime", "_WorkerNode"),
        transitions=(
            Transition(
                name="inject",
                description=(
                    "parent admits a frame: bump delivery_seq, stamp it, "
                    "append to the retransmission buffer"
                ),
                anchors=(
                    CodeAnchor("MultiprocRuntime", "_admit_frame", "augassign", "delivery_seq"),
                    CodeAnchor("MultiprocRuntime", "_admit_frame", "append", "unacked"),
                ),
            ),
            Transition(
                name="deliver",
                description=(
                    "worker dedups by delivered_seq, then dispatches; "
                    "supervised sends get the next emission id and are held"
                ),
                anchors=(
                    CodeAnchor("_WorkerNode", "_on_frame", "compare", "_delivered_seq"),
                    CodeAnchor("_WorkerNode", "_on_frame", "assign", "_delivered_seq"),
                    CodeAnchor("_WorkerNode", "send", "augassign", "_emission"),
                    CodeAnchor("_WorkerNode", "send", "append", "_held"),
                ),
            ),
            Transition(
                name="snapshot",
                description=(
                    "worker captures (ack, emission, state, held), queues the "
                    "snapshot, then releases the held outputs (output commit)"
                ),
                anchors=(
                    CodeAnchor("_WorkerNode", "_snapshot", "assign", "_held"),
                    CodeAnchor("_WorkerNode", "_snapshot", "call", detail="_reply"),
                ),
            ),
            Transition(
                name="recv",
                description=(
                    "parent trims the retransmission buffer up to the "
                    "snapshot ack and dedups outputs by emission_high"
                ),
                anchors=(
                    CodeAnchor("MultiprocRuntime", "_on_snapshot", "method_call", "unacked", "popleft"),
                    CodeAnchor("MultiprocRuntime", "_on_snapshot", "assign", "acked"),
                    CodeAnchor("MultiprocRuntime", "_route_frame", "compare", "emission_high"),
                    CodeAnchor("MultiprocRuntime", "_route_frame", "assign", "emission_high"),
                ),
            ),
            Transition(
                name="crash",
                description="a detected death closes the conn and buffers the slot",
                anchors=(
                    CodeAnchor("MultiprocRuntime", "_mark_worker_down", "assign", "buffering"),
                    CodeAnchor("MultiprocRuntime", "_mark_worker_down", "assign", "failed"),
                ),
            ),
            Transition(
                name="respawn",
                description=(
                    "restore from the last snapshot, re-route its held "
                    "outputs through the dedup, account any replay gap, "
                    "retransmit the unacked window"
                ),
                anchors=(
                    CodeAnchor("MultiprocRuntime", "_respawn_once", "call", detail="_route_frame"),
                    CodeAnchor("MultiprocRuntime", "_respawn_once", "method_call", "conn", "queue"),
                    CodeAnchor("MultiprocRuntime", "_respawn_once", "assign", "buffering"),
                ),
            ),
        ),
    )


__all__ = ["ANCHOR_KINDS", "CodeAnchor", "ProtocolSpec", "Transition", "multiproc_spec"]
