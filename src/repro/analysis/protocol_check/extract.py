"""Cross-check the declarative protocol spec against the real AST.

:func:`check_anchors` walks the scanned project for the classes a
:class:`~repro.analysis.protocol_check.spec.ProtocolSpec` names and
verifies every :class:`~repro.analysis.protocol_check.spec.CodeAnchor`
still matches.  The result is a list of :class:`Drift` records — an empty
list means the code still implements the machine the model checker
verifies, so checking the model really checks the code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dataflow import AnyFunc, class_methods
from ..model import terminal_name
from ..project import ModuleInfo, ProjectInfo
from .spec import CodeAnchor, ProtocolSpec


@dataclass(slots=True)
class Drift:
    """One anchor that no longer matches the source."""

    transition: str
    anchor: CodeAnchor
    module: ModuleInfo
    line: int
    col: int

    def describe(self) -> str:
        return (
            f"transition {self.transition!r} anchor no longer matches: "
            f"{self.anchor.describe()}"
        )


def _base_name(node: ast.expr) -> Optional[str]:
    """Terminal name of an expression, unwrapping subscripts/calls.

    ``slot.unacked[0][0]`` -> ``unacked``; ``len(x)`` -> ``len``.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    return terminal_name(node)


def _assigned_attrs(node: ast.Assign) -> List[str]:
    names: List[str] = []
    for target in node.targets:
        elements = (
            list(target.elts)
            if isinstance(target, (ast.Tuple, ast.List))
            else [target]
        )
        for element in elements:
            name = terminal_name(element)
            if name is not None:
                names.append(name)
    return names


def anchor_matches(anchor: CodeAnchor, func: AnyFunc) -> bool:
    """Whether one anchor pattern matches anywhere inside ``func``."""
    for node in ast.walk(func):
        if anchor.kind == "augassign" and isinstance(node, ast.AugAssign):
            if terminal_name(node.target) == anchor.attr:
                return True
        elif anchor.kind == "assign" and isinstance(node, ast.Assign):
            if anchor.attr in _assigned_attrs(node):
                return True
        elif anchor.kind == "append" and isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "appendleft")
                and _base_name(node.func.value) == anchor.attr
            ):
                return True
        elif anchor.kind == "method_call" and isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == anchor.detail
                and _base_name(node.func.value) == anchor.attr
            ):
                return True
        elif anchor.kind == "compare" and isinstance(node, ast.Compare):
            for operand in [node.left, *node.comparators]:
                if _base_name(operand) == anchor.attr:
                    return True
        elif anchor.kind == "call" and isinstance(node, ast.Call):
            if terminal_name(node.func) == anchor.detail:
                return True
    return False


def locate_classes(
    spec: ProtocolSpec, project: ProjectInfo
) -> Optional[Dict[str, Tuple[ModuleInfo, ast.ClassDef]]]:
    """Find the spec's classes in its modules; None when any is absent.

    A scan that lacks the protocol's modules (fixture trees, partial scans)
    is out of scope for the spec, not in violation of it.
    """
    located: Dict[str, Tuple[ModuleInfo, ast.ClassDef]] = {}
    for module in project:
        if not any(module.relpath.endswith(s) for s in spec.module_suffixes):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                located.setdefault(node.name, (module, node))
    if not all(name in located for name in spec.required_classes):
        return None
    return located


def check_anchors(spec: ProtocolSpec, project: ProjectInfo) -> List[Drift]:
    """Every anchor of ``spec`` that fails to match the scanned sources.

    Call :func:`locate_classes` first; passing a project the spec does not
    apply to reports every anchor as drifted, which is never what you want.
    """
    located = locate_classes(spec, project)
    if located is None:
        return []
    drifts: List[Drift] = []
    for transition, anchor in spec.all_anchors():
        found = located.get(anchor.cls)
        if found is None:
            # The class is optional context (not in required_classes) and
            # absent: the anchor cannot hold.
            first = next(iter(located.values()))
            drifts.append(Drift(transition, anchor, first[0], first[1].lineno, 0))
            continue
        module, cls = found
        func = class_methods(cls).get(anchor.method)
        if func is None:
            drifts.append(
                Drift(transition, anchor, module, cls.lineno, cls.col_offset)
            )
            continue
        if not anchor_matches(anchor, func):
            drifts.append(
                Drift(transition, anchor, module, func.lineno, func.col_offset)
            )
    return drifts


__all__ = ["Drift", "anchor_matches", "check_anchors", "locate_classes"]
