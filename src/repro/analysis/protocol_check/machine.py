"""The multiproc seq/ack/output-commit protocol as an explicit-state machine.

This is a faithful, bounded abstraction of the PR 7 exactly-once path in
``runtime/multiproc.py`` — one parent, one supervised worker, and the two
directions of their TCP connection as FIFO channels:

* **inject** — the parent admits a frame (``_admit_frame``): bump
  ``delivery_seq``, stamp it into the frame, append to the retransmission
  buffer, and queue it to the worker unless the slot is buffering.
* **deliver** — the worker pops the head input frame (``_on_frame``):
  duplicates (``seq <= delivered_seq``) are dropped; fresh frames advance
  ``delivered_seq`` and produce one held output with the next emission id
  (``_WorkerNode.send`` under supervision: output commit holds it).
* **snapshot** — the worker captures ``(ack, emission, held)`` and queues
  the snapshot *then* the held frames (``_snapshot``), so per TCP FIFO no
  output overtakes the snapshot that covers it.  Skipped when nothing
  changed, exactly like the ``_last_snap`` marker in the code.
* **recv** — the parent pops the head of the worker channel
  (``_route_frame``/``_on_snapshot``): a snapshot trims the unacked buffer
  up to its ack; an output is deduplicated by ``emission_high``.
* **crash** — SIGKILL: worker state and both channels vanish; the slot
  starts buffering (``_mark_worker_down``).
* **respawn** — ``_respawn_once``: restore from the last received snapshot
  (delivered/emission counters reset to it — regenerated emissions reuse
  the same ids, which is what makes the dedup sound), re-route the
  snapshot's held outputs through the dedup, take the forced baseline
  snapshot, retransmit every unacked input, stop buffering.  A retransmit
  window that no longer starts at ``ack + 1`` is a replay gap.
* **dup / reorder** — adversarial transport events: duplicate the head
  input frame at the tail, or swap the first two input frames.  The
  worker→parent direction stays FIFO by default because the output-commit
  argument *depends* on it (the snapshot must precede the frames it
  covers); ``reorder_wp=True`` lets a test demonstrate that assumption is
  load-bearing.

Invariants checked in every reachable state:

* ``exactly_once`` — the parent-accepted emission-id sequence is strictly
  increasing (no duplicate output is ever delivered twice);
* ``bounded_retransmit`` — ``len(unacked) == delivery_seq - acked`` (the
  buffer holds exactly the unacknowledged window, nothing leaks);
* ``no_replay_gap`` — a respawn always retransmits from ``ack + 1``;
* ``quiescent_complete`` — whenever the system is quiet (worker alive,
  channels empty, nothing held) every emission the worker ever produced
  has been accepted exactly once, in order.

All counters are bounded by the config, so the reachable space is finite
and :func:`~repro.analysis.protocol_check.checker.explore` terminates with
``complete=True`` — a proof over the bounded machine, not a sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, NamedTuple, Tuple

Snapshot = Tuple[int, int, Tuple[int, ...]]  #: (ack, emission, held ids)
WpItem = Tuple[object, ...]  #: ("S", ack, emission, held) | ("O", emission id)


class MPState(NamedTuple):
    """One global state: parent slot + channels + worker, all hashable."""

    delivery_seq: int
    acked: int
    unacked: Tuple[int, ...]
    snap: Snapshot  #: last snapshot the parent *received*
    emission_high: int
    buffering: bool
    accepted: Tuple[int, ...]  #: emission ids delivered to destinations
    ch_pw: Tuple[int, ...]  #: parent -> worker input seqs in flight
    ch_wp: Tuple[WpItem, ...]  #: worker -> parent snapshots/outputs in flight
    w_alive: bool
    w_delivered: int
    w_emission: int
    w_held: Tuple[int, ...]
    w_last_snap: Tuple[int, int]
    injected: int
    dups: int
    crashes: int
    replay_gap: int


@dataclass(frozen=True, slots=True)
class MPConfig:
    """Bounds on the adversary; they define the finite reachable space."""

    max_injects: int = 3
    max_dups: int = 1
    max_crashes: int = 1
    allow_reorder: bool = True
    #: reorder the worker->parent channel too — breaks the TCP-FIFO
    #: assumption output commit rests on; off everywhere except the test
    #: that proves that assumption is load-bearing.
    reorder_wp: bool = False


def _quiescent(s: MPState) -> bool:
    return (
        s.w_alive
        and not s.ch_pw
        and not s.ch_wp
        and not s.w_held
        and s.w_last_snap == (s.w_delivered, s.w_emission)
    )


class MultiprocModel:
    """Checkable model of the supervised single-worker multiproc protocol."""

    def __init__(self, config: MPConfig = MPConfig()) -> None:
        self.config = config

    def initial(self) -> MPState:
        return MPState(
            delivery_seq=0,
            acked=0,
            unacked=(),
            snap=(0, 0, ()),
            emission_high=0,
            buffering=False,
            accepted=(),
            ch_pw=(),
            ch_wp=(),
            w_alive=True,
            w_delivered=0,
            w_emission=0,
            w_held=(),
            w_last_snap=(0, 0),
            injected=0,
            dups=0,
            crashes=0,
            replay_gap=0,
        )

    # -- events ------------------------------------------------------------ #

    def events(self, s: MPState) -> Iterable[Tuple[str, MPState]]:
        cfg = self.config
        out: List[Tuple[str, MPState]] = []
        if s.injected < cfg.max_injects:
            seq = s.delivery_seq + 1
            out.append(
                (
                    f"inject({seq})",
                    s._replace(
                        delivery_seq=seq,
                        unacked=s.unacked + (seq,),
                        ch_pw=s.ch_pw if s.buffering else s.ch_pw + (seq,),
                        injected=s.injected + 1,
                    ),
                )
            )
        if s.w_alive and s.ch_pw:
            seq, rest = s.ch_pw[0], s.ch_pw[1:]
            if seq <= s.w_delivered:
                out.append((f"deliver({seq})=dup-dropped", s._replace(ch_pw=rest)))
            else:
                emission = s.w_emission + 1
                out.append(
                    (
                        f"deliver({seq})",
                        s._replace(
                            ch_pw=rest,
                            w_delivered=seq,
                            w_emission=emission,
                            w_held=s.w_held + (emission,),
                        ),
                    )
                )
        if s.w_alive and (
            s.w_held or s.w_last_snap != (s.w_delivered, s.w_emission)
        ):
            snap: Snapshot = (s.w_delivered, s.w_emission, s.w_held)
            items: Tuple[WpItem, ...] = (("S",) + snap,) + tuple(
                ("O", e) for e in s.w_held
            )
            out.append(
                (
                    f"snapshot(ack={s.w_delivered})",
                    s._replace(
                        ch_wp=s.ch_wp + items,
                        w_held=(),
                        w_last_snap=(s.w_delivered, s.w_emission),
                    ),
                )
            )
        if s.ch_wp:
            item, rest_wp = s.ch_wp[0], s.ch_wp[1:]
            if item[0] == "S":
                ack = item[1]
                assert isinstance(ack, int)
                unacked = s.unacked
                while unacked and unacked[0] <= ack:
                    unacked = unacked[1:]
                out.append(
                    (
                        f"recv-snap(ack={ack})",
                        s._replace(
                            ch_wp=rest_wp,
                            snap=(item[1], item[2], item[3]),  # type: ignore[arg-type]
                            unacked=unacked,
                            acked=ack,
                        ),
                    )
                )
            else:
                eid = item[1]
                assert isinstance(eid, int)
                if eid <= s.emission_high:
                    out.append(
                        (f"recv-out({eid})=dup-dropped", s._replace(ch_wp=rest_wp))
                    )
                else:
                    out.append(
                        (
                            f"recv-out({eid})",
                            s._replace(
                                ch_wp=rest_wp,
                                emission_high=eid,
                                accepted=s.accepted + (eid,),
                            ),
                        )
                    )
        if s.w_alive and s.ch_pw and s.dups < cfg.max_dups:
            out.append(
                (
                    f"dup({s.ch_pw[0]})",
                    s._replace(ch_pw=s.ch_pw + (s.ch_pw[0],), dups=s.dups + 1),
                )
            )
        if (
            cfg.allow_reorder
            and len(s.ch_pw) >= 2
            and s.ch_pw[0] != s.ch_pw[1]
        ):
            swapped = (s.ch_pw[1], s.ch_pw[0]) + s.ch_pw[2:]
            out.append(("reorder-pw", s._replace(ch_pw=swapped)))
        if cfg.reorder_wp and len(s.ch_wp) >= 2 and s.ch_wp[0] != s.ch_wp[1]:
            swapped_wp = (s.ch_wp[1], s.ch_wp[0]) + s.ch_wp[2:]
            out.append(("reorder-wp", s._replace(ch_wp=swapped_wp)))
        if s.w_alive and s.crashes < cfg.max_crashes:
            out.append(
                (
                    "crash",
                    s._replace(
                        w_alive=False,
                        w_held=(),
                        ch_pw=(),
                        ch_wp=(),
                        buffering=True,
                        crashes=s.crashes + 1,
                    ),
                )
            )
        if not s.w_alive:
            ack, emission, held = s.snap
            accepted = s.accepted
            high = s.emission_high
            # Re-route the snapshot's held outputs through the dedup: the
            # ones that escaped before the crash are dropped here.
            for eid in held:
                if eid > high:
                    high = eid
                    accepted = accepted + (eid,)
            gap = 0
            if s.unacked and s.unacked[0] > ack + 1:
                gap = s.unacked[0] - ack - 1
            baseline: WpItem = ("S", ack, emission, ())
            out.append(
                (
                    "respawn",
                    s._replace(
                        w_alive=True,
                        w_delivered=ack,
                        w_emission=emission,
                        w_held=(),
                        w_last_snap=(ack, emission),
                        ch_pw=s.unacked,
                        ch_wp=(baseline,),
                        emission_high=high,
                        accepted=accepted,
                        buffering=False,
                        replay_gap=s.replay_gap + gap,
                    ),
                )
            )
        return out

    # -- invariants ---------------------------------------------------------- #

    def invariants(self) -> Iterable[Tuple[str, Callable[[MPState], bool]]]:
        return [
            (
                "exactly_once",
                lambda s: all(
                    a < b for a, b in zip(s.accepted, s.accepted[1:])
                ),
            ),
            (
                "bounded_retransmit",
                lambda s: len(s.unacked) == s.delivery_seq - s.acked,
            ),
            ("no_replay_gap", lambda s: s.replay_gap == 0),
            (
                "quiescent_complete",
                lambda s: not _quiescent(s)
                or s.accepted == tuple(range(1, s.w_emission + 1)),
            ),
        ]


__all__ = ["MPConfig", "MPState", "MultiprocModel"]
