"""Explicit-state protocol model checker for the multiproc runtime.

The package has four layers, each usable on its own:

* :mod:`.checker` — a generic bounded breadth-first model checker over any
  hashable-state machine, returning shortest counterexample traces;
* :mod:`.machine` — the faithful model of the PR 7 seq/ack/output-commit/
  respawn protocol (one parent, one supervised worker, FIFO channels, a
  bounded dup/reorder/crash adversary) with its four invariants;
* :mod:`.spec` — the declarative transition table, pinned to the real
  source by coarse AST :class:`~.spec.CodeAnchor` patterns;
* :mod:`.extract` — the anchor cross-check that turns "the model is
  verified" into "the code the model describes is verified".

CHR020 (:mod:`.rule`) ties them together as a lint rule; the exhaustive
10⁴–10⁵-state runs live in ``tests/test_protocol_check.py``.  See
``docs/ANALYSIS.md`` for the state-machine format and how to read a
counterexample trace.
"""

from __future__ import annotations

from .checker import CheckResult, Model, Violation, explore
from .extract import Drift, anchor_matches, check_anchors, locate_classes
from .machine import MPConfig, MPState, MultiprocModel
from .rule import LINT_CONFIG, ProtocolInvariantRule
from .spec import ANCHOR_KINDS, CodeAnchor, ProtocolSpec, Transition, multiproc_spec

__all__ = [
    "ANCHOR_KINDS",
    "CheckResult",
    "CodeAnchor",
    "Drift",
    "LINT_CONFIG",
    "MPConfig",
    "MPState",
    "Model",
    "MultiprocModel",
    "ProtocolInvariantRule",
    "ProtocolSpec",
    "Transition",
    "Violation",
    "anchor_matches",
    "check_anchors",
    "explore",
    "locate_classes",
    "multiproc_spec",
]
