"""Generic explicit-state model checker (bounded breadth-first search).

A *model* is anything with three members:

* ``initial()`` — the start state (any hashable value);
* ``events(state)`` — ``(label, next_state)`` pairs for every event enabled
  in ``state``;
* ``invariants()`` — ``(name, predicate)`` pairs; a predicate returning
  False in any reachable state is a violation.

:func:`explore` enumerates the reachable state space breadth-first,
checking every invariant in every state, and reconstructs a shortest
counterexample trace (the event labels from the initial state) through
parent pointers when one fails.  BFS order makes traces minimal, which is
what makes them readable: the first violation found is the simplest way to
reach it.

The checker is deliberately model-agnostic — the multiproc machine
(:mod:`.machine`), the hand-built buggy fixtures in the tests, and any
future protocol all run through this one loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Protocol, Tuple

State = Hashable


class Model(Protocol):
    """Structural interface every checkable protocol model implements."""

    def initial(self) -> State: ...

    def events(self, state: State) -> Iterable[Tuple[str, State]]: ...

    def invariants(self) -> Iterable[Tuple[str, Callable[[State], bool]]]: ...


@dataclass(slots=True)
class Violation:
    """One invariant failure with its shortest counterexample trace."""

    invariant: str
    trace: Tuple[str, ...]  #: event labels from the initial state
    state: State  #: the violating state itself

    def render(self) -> str:
        steps = " -> ".join(self.trace) if self.trace else "<initial state>"
        return f"invariant {self.invariant!r} violated after: {steps}"


@dataclass(slots=True)
class CheckResult:
    """Outcome of one bounded exploration."""

    states_explored: int
    transitions: int
    violations: List[Violation] = field(default_factory=list)
    #: True when the whole reachable space fit under ``max_states`` — the
    #: invariants are *proved* over the bounded machine, not just sampled.
    complete: bool = True

    @property
    def ok(self) -> bool:
        return not self.violations


def _trace(
    parents: Dict[State, Optional[Tuple[State, str]]], state: State
) -> Tuple[str, ...]:
    labels: List[str] = []
    cursor: Optional[State] = state
    while cursor is not None:
        parent = parents[cursor]
        if parent is None:
            break
        cursor, label = parent
        labels.append(label)
    return tuple(reversed(labels))


def explore(
    model: Model,
    max_states: int = 500_000,
    max_violations: int = 1,
) -> CheckResult:
    """Breadth-first exploration of ``model`` up to ``max_states`` states.

    Stops early once ``max_violations`` invariant failures are collected
    (their traces are already shortest, by BFS order).  ``complete`` is
    False when the frontier was truncated by ``max_states`` — callers that
    claim a *proof* must assert it.
    """
    invariants = list(model.invariants())
    root = model.initial()
    parents: Dict[State, Optional[Tuple[State, str]]] = {root: None}
    queue: "deque[State]" = deque([root])
    result = CheckResult(states_explored=0, transitions=0)

    def check(state: State) -> bool:
        for name, predicate in invariants:
            if not predicate(state):
                result.violations.append(
                    Violation(name, _trace(parents, state), state)
                )
                if len(result.violations) >= max_violations:
                    return False
        return True

    if not check(root):
        result.states_explored = 1
        return result
    while queue:
        state = queue.popleft()
        result.states_explored += 1
        for label, nxt in model.events(state):
            result.transitions += 1
            if nxt in parents:
                continue
            parents[nxt] = (state, label)
            if not check(nxt):
                result.states_explored += 1
                return result
            if len(parents) >= max_states:
                result.complete = False
                return result
            queue.append(nxt)
    return result
