"""Lightweight interprocedural dataflow over actor/coroutine bodies.

Two cross-method facts power the concurrency rules:

* an **intra-class call graph** (``self.m()`` edges) plus its transitive
  closure, so CHR009 can tell whether a buffer-appending helper is reachable
  from the ``on_message`` hot path;
* an **execution-ordered event stream** per method — attribute reads/writes
  on ``self``, ``await`` points, and lock-guarded regions — with bounded
  multi-hop splicing of same-class ``self.m()`` calls (depth-limited, cycle
  safe), so CHR010 can spot the read-before-await / write-after-await race
  shape across several helper boundaries.

The event walk is deliberately lexical (no path sensitivity): branches and
loops are traversed in source order.  That over-approximates interleavings,
which is the right direction for a race detector — a read and a write that
*can* straddle an await in some path should be flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Union

AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Event kinds: ``read``/``write`` of a ``self`` attribute, an ``await``
#: point, an unresolved ``self.m(...)`` call placeholder, or a message
#: leaving the actor via ``self.send(...)``.
READ = "read"
WRITE = "write"
AWAIT = "await"
CALL = "call"
SEND = "send"


@dataclass(slots=True)
class Event:
    kind: str
    attr: str  #: attribute or callee name; empty for awaits
    line: int
    col: int
    locked: bool


def class_methods(cls: ast.ClassDef) -> Dict[str, AnyFunc]:
    """Methods defined directly on the class, by name."""
    methods: Dict[str, AnyFunc] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = stmt
    return methods


def _terminal(node: ast.AST) -> Union[str, None]:
    """``cmsg.DraftBatch`` -> ``DraftBatch``; ``DraftBatch`` -> itself."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_lock_context(node: ast.AST) -> bool:
    """``self._lock`` (or any self attribute naming a lock) as a context."""
    return isinstance(node, ast.Attribute) and _is_self_attr(node) and (
        "lock" in node.attr.lower()
    )


class _EventWalker:
    """Collect :class:`Event` objects in execution order for one method."""

    def __init__(self, method_names: Iterable[str]) -> None:
        self._methods = set(method_names)
        self.events: List[Event] = []

    def _emit(self, kind: str, attr: str, node: ast.AST, locked: bool) -> None:
        # Reads of method attributes (``await self.close()``) are call
        # plumbing, not shared-state access.
        if kind in (READ, WRITE) and attr in self._methods:
            return
        self.events.append(
            Event(kind, attr, node.lineno, node.col_offset, locked)
        )

    def walk_body(self, body: Sequence[ast.stmt], locked: bool) -> None:
        for stmt in body:
            self._stmt(stmt, locked)

    def _stmt(self, node: ast.stmt, locked: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scope: different execution context
        if isinstance(node, ast.Assign):
            self._expr(node.value, locked)
            for target in node.targets:
                self._expr(target, locked)
        elif isinstance(node, ast.AugAssign):
            self._expr(node.value, locked)
            # ``self.x += v`` both reads and writes x.
            if _is_self_attr(node.target):
                assert isinstance(node.target, ast.Attribute)
                self._emit(READ, node.target.attr, node.target, locked)
                self._emit(WRITE, node.target.attr, node.target, locked)
            else:
                self._expr(node.target, locked)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._expr(node.value, locked)
            self._expr(node.target, locked)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            body_locked = locked
            for item in node.items:
                self._expr(item.context_expr, locked)
                if _is_lock_context(item.context_expr):
                    body_locked = True
            if isinstance(node, ast.AsyncWith):
                # ``async with`` awaits ``__aenter__`` before the body runs.
                self._emit(AWAIT, "", node, locked)
            self.walk_body(node.body, body_locked)
        elif isinstance(node, ast.If):
            self._expr(node.test, locked)
            self.walk_body(node.body, locked)
            self.walk_body(node.orelse, locked)
        elif isinstance(node, ast.While):
            self._expr(node.test, locked)
            self.walk_body(node.body, locked)
            self.walk_body(node.orelse, locked)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._expr(node.iter, locked)
            self._expr(node.target, locked)
            if isinstance(node, ast.AsyncFor):
                self._emit(AWAIT, "", node, locked)
            self.walk_body(node.body, locked)
            self.walk_body(node.orelse, locked)
        elif isinstance(node, ast.Try):
            self.walk_body(node.body, locked)
            for handler in node.handlers:
                self.walk_body(handler.body, locked)
            self.walk_body(node.orelse, locked)
            self.walk_body(node.finalbody, locked)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._expr(node.value, locked)
        elif isinstance(node, (ast.Expr, ast.Await)):
            self._expr(node.value, locked)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._expr(node.exc, locked)
            if node.cause is not None:
                self._expr(node.cause, locked)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if _is_self_attr(target):
                    assert isinstance(target, ast.Attribute)
                    self._emit(WRITE, target.attr, target, locked)
                else:
                    self._expr(target, locked)
        elif isinstance(node, (ast.Assert, ast.Match)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child, locked)
                elif isinstance(child, ast.stmt):
                    self._stmt(child, locked)
        # Pass/Break/Continue/Import/Global/Nonlocal: no events.

    def _expr(self, node: ast.expr, locked: bool) -> None:
        if isinstance(node, ast.Await):
            self._expr(node.value, locked)
            self._emit(AWAIT, "", node, locked)
        elif isinstance(node, ast.Call):
            func = node.func
            is_self_call = _is_self_attr(func)
            if not is_self_call:
                self._expr(func, locked)
            for arg in node.args:
                self._expr(arg, locked)
            for keyword in node.keywords:
                self._expr(keyword.value, locked)
            if is_self_call:
                assert isinstance(func, ast.Attribute)
                if func.attr in self._methods:
                    self._emit(CALL, func.attr, node, locked)
                elif func.attr == "send":
                    # ``self.send(dst, Msg(...))`` is the actor-boundary
                    # crossing: emit a SEND event carrying the constructed
                    # message's terminal name when it is syntactically
                    # evident (empty otherwise; the cross-actor graph
                    # resolves variable-bound messages by call site).
                    kind_name = ""
                    if len(node.args) >= 2 and isinstance(node.args[1], ast.Call):
                        resolved = _terminal(node.args[1].func)
                        if resolved is not None:
                            kind_name = resolved
                    self.events.append(
                        Event(SEND, kind_name, node.lineno, node.col_offset, locked)
                    )
                else:
                    # ``self.loop.schedule(...)`` resolves through a data
                    # attribute; ``self.cb(...)`` calls a stored callable —
                    # both read the attribute.
                    self._emit(READ, func.attr, func, locked)
        elif isinstance(node, ast.Attribute):
            if _is_self_attr(node):
                kind = WRITE if isinstance(node.ctx, ast.Store) else READ
                self._emit(kind, node.attr, node, locked)
            else:
                self._expr(node.value, locked)
        elif isinstance(node, (ast.Lambda,)):
            return  # deferred execution
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            # Comprehensions run inline (generators lazily, but their reads
            # still belong to this coroutine); walk generically.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child, locked)
                elif isinstance(child, ast.comprehension):
                    self._expr(child.iter, locked)
                    self._expr(child.target, locked)
                    for cond in child.ifs:
                        self._expr(cond, locked)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child, locked)
                elif isinstance(child, ast.keyword):
                    self._expr(child.value, locked)


def method_events(func: AnyFunc, method_names: Iterable[str]) -> List[Event]:
    """Execution-ordered events for one method (unexpanded ``call``s)."""
    walker = _EventWalker(method_names)
    walker.walk_body(func.body, locked=False)
    return walker.events


#: Default splice depth: a hot path that hides shared-state access more than
#: three ``self.helper()`` hops deep is beyond what the lexical walk can
#: attribute meaningfully (and the real tree never nests deeper).
EXPAND_DEPTH = 3


def expand_events(
    events: List[Event],
    summaries: Dict[str, List[Event]],
    depth: int = EXPAND_DEPTH,
    exclude: FrozenSet[str] = frozenset(),
) -> List[Event]:
    """Splice same-class callee event lists in, up to ``depth`` levels deep.

    The callee's events are inserted verbatim at the call site (preserving
    their internal order, which matters: a helper that writes *before* its
    await must not look like it writes after).  ``call`` placeholders inside
    spliced events are expanded recursively until ``depth`` is exhausted;
    placeholders left at the frontier are dropped.  ``exclude`` carries the
    splice stack for cycle detection — a callee already being expanded on the
    current chain (direct or mutual recursion) is not re-entered, so the walk
    terminates on any call graph.  Pass ``depth=1`` for the historical
    one-level behaviour.
    """
    result: List[Event] = []
    for event in events:
        if event.kind != CALL:
            result.append(event)
            continue
        callee = event.attr
        if depth <= 0 or callee in exclude:
            continue
        inner_events = expand_events(
            summaries.get(callee, []),
            summaries,
            depth - 1,
            exclude | {callee},
        )
        for inner in inner_events:
            result.append(
                Event(
                    inner.kind,
                    inner.attr,
                    inner.line,
                    inner.col,
                    inner.locked or event.locked,
                )
            )
    return result


def self_call_graph(cls: ast.ClassDef) -> Dict[str, Set[str]]:
    """``method -> set of same-class methods it calls via self``."""
    methods = class_methods(cls)
    graph: Dict[str, Set[str]] = {name: set() for name in methods}
    for name, func in methods.items():
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and _is_self_attr(node.func)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in methods
            ):
                graph[name].add(node.func.attr)
    return graph


def reachable_from(graph: Dict[str, Set[str]], roots: Iterable[str]) -> Set[str]:
    """Transitive closure of the call graph from ``roots`` (inclusive)."""
    seen: Set[str] = set()
    stack = [root for root in roots if root in graph]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(graph.get(name, ()) - seen)
    return seen


def reachable_within(
    graph: Dict[str, Set[str]], roots: Iterable[str], depth: int = EXPAND_DEPTH
) -> Set[str]:
    """Methods reachable from ``roots`` in at most ``depth`` call edges.

    Breadth-first with an explicit hop bound (roots are depth 0 and always
    included when present in ``graph``); cycles are harmless because each
    method is visited at its first, shortest distance.
    """
    seen: Set[str] = {root for root in roots if root in graph}
    frontier: List[str] = sorted(seen)
    for _hop in range(depth):
        next_frontier: List[str] = []
        for name in frontier:
            for callee in sorted(graph.get(name, ())):
                if callee not in seen:
                    seen.add(callee)
                    next_frontier.append(callee)
        if not next_frontier:
            break
        frontier = next_frontier
    return seen
