"""Command-line driver: ``python -m repro.analysis [paths...]``.

Pipeline: scan → run rules → drop noqa-suppressed findings → subtract the
baseline → report.  Exit codes: 0 clean (or everything baselined), 1 new
findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .actors import actor_graph_dict, build_actor_graph
from .baseline import apply_baseline, load_baseline, write_baseline
from .findings import Finding
from .model import build_model
from .noqa import is_suppressed
from .project import ProjectInfo, scan
from .rules import ALL_RULES, rules_by_code
from .rules.noqa_audit import DeadNoqaRule
from .sarif import render_sarif


def run_rules(
    project: ProjectInfo, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """All findings for the project, noqa applied, deterministically ordered."""
    table = rules_by_code()
    if select:
        unknown = sorted(set(select) - set(table))
        if unknown:
            raise ValueError(f"unknown rule codes: {', '.join(unknown)}")
        codes = list(select)
    else:
        codes = sorted(table)
    noqa_by_path = {m.relpath: m.noqa for m in project}
    # relpath -> noqa lines that suppressed at least one finding; feeds the
    # CHR017 dead-directive audit below.
    matched: Dict[str, Set[int]] = {}
    findings: List[Finding] = []
    for code in codes:
        rule = table[code]()
        for finding in rule.check(project):
            noqa = noqa_by_path.get(finding.path, {})
            if is_suppressed(noqa, finding.line, finding.code):
                matched.setdefault(finding.path, set()).add(finding.line)
                continue
            findings.append(finding)
    if select is None:
        # Only a full run can tell a dead directive from an out-of-scope one.
        # CHR017 findings deliberately bypass noqa filtering: a dead directive
        # must not be able to suppress its own report.
        findings.extend(DeadNoqaRule().audit_directives(project, matched))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))
    return findings


def _render_text(findings: List[Finding], suppressed: int) -> str:
    lines = [f.render() for f in findings]
    summary = f"{len(findings)} finding(s)"
    if suppressed:
        summary += f", {suppressed} baselined"
    lines.append(summary)
    return "\n".join(lines)


def _render_json(findings: List[Finding], suppressed: int) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "baselined": suppressed,
        },
        indent=2,
    )


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project-specific static analysis for the Chariots reproduction: "
            "protocol exhaustiveness, determinism, async safety, hot-path "
            "slots, and typed-API completeness."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text); sarif emits a SARIF 2.1.0 "
        "document for code-scanning uploads",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        type=Path,
        help="baseline file to subtract from (and target of --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule and exit"
    )
    parser.add_argument(
        "--graph",
        choices=("json", "dot"),
        metavar="{json,dot}",
        help="dump the message-flow graph (messages + request types, with "
        "construction/dispatch/send/handle sites; json adds the cross-actor "
        "send/handle graph) instead of linting",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline PATH")

    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    project = scan(paths)

    if args.graph:
        model = build_model(project)
        if args.graph == "json":
            payload = model.graph_dict()
            payload["actors"] = actor_graph_dict(build_actor_graph(project))
            payload["version"] = 2  # 2 = message-flow graph + actors section
            output = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        else:
            output = model.graph_dot()
        print(output, end="")
        return 0

    try:
        findings = run_rules(project, select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline written: {args.baseline} ({len(findings)} finding(s))")
        return 0

    suppressed = 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, baseline)

    if args.format == "json":
        output = _render_json(findings, suppressed)
    elif args.format == "sarif":
        output = render_sarif(findings, root=project.root)
    else:
        output = _render_text(findings, suppressed)
    print(output)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
