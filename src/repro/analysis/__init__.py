"""Project-specific static analysis (``python -m repro.analysis``).

AST-based lint rules enforcing the invariants the test suite can't see:

========  ===========================  =====================================
Code      Name                         Invariant
========  ===========================  =====================================
CHR001    protocol-unregistered        every message dataclass is codec-
                                       registered (JSON + binary index)
CHR002    protocol-unhandled           registry ↔ handlers agree (no stale
                                       or unroutable registrations)
CHR003    determinism-wallclock        no OS clock in sim-reachable code
CHR004    determinism-randomness       randomness flows from explicit seeds
CHR005    determinism-iteration-order  no set/listdir iteration-order leaks
CHR006    async-blocking               no blocking calls in net/ async defs
CHR007    missing-slots                hot-path dataclasses are slotted
CHR008    untyped-public-api           typed packages stay fully annotated
CHR009    unbounded-stage-buffer       on_message-reachable buffers carry an
                                       enforced or declared high-water mark
CHR010    await-atomicity              no read-await-write races on instance
                                       state in net/ coroutines
CHR011    request-dispatch-gap         dict-request types sent ↔ handled by
                                       the net/ servers, both directions
CHR012    orphan-message               no unroutable constructions, no dead
                                       codec registrations
CHR013    swallowed-exception          pipeline stages never silently drop a
                                       broad exception
CHR014    socket-no-timeout            socket recv/accept in runtime/ and
                                       net/ always run under a deadline
CHR015    reply-shape                  RPC reply keys emitted ↔ read agree
                                       per request type, both directions
CHR016    supervisor-protocol          sequenced emissions get ack/trimmed;
                                       detected worker deaths reach a
                                       respawn-or-park terminal
CHR017    dead-noqa                    every noqa directive still suppresses
                                       something (full runs only)
CHR018    cross-actor-lost-update      no field read before a send is
                                       blindly rewritten by the reply
                                       handler (stale across the round trip)
CHR019    handler-silent-drop          no state guard silently swallows
                                       message kinds that provably arrive
CHR020    protocol-invariant           the multiproc exactly-once machine
                                       model-checks clean (and still anchors
                                       to the code — drift is a finding)
CHR021    backpressure-deadlock        no actor cycle where every edge's
                                       bounded intake can refuse at once
========  ===========================  =====================================

CHR001/CHR002 and CHR009–CHR016 read a shared, memoised whole-project model
(message-flow graph + bounded multi-hop interprocedural dataflow; see
:mod:`repro.analysis.model` and :mod:`repro.analysis.dataflow`), which
``--graph {json,dot}`` dumps for docs and debugging.  CHR018/CHR019/CHR021
layer a memoised cross-actor send/handle graph on top
(:mod:`repro.analysis.actors`; merged into ``--graph json`` as the
``actors`` section), and CHR020 runs the explicit-state model checker in
:mod:`repro.analysis.protocol_check` against the multiproc runtime's
seq/ack/output-commit protocol.  ``--format sarif`` renders any run as
SARIF 2.1.0 for code-scanning uploads.

Suppression: ``# chariots: noqa=CHR003`` on the offending line (comma list
or bare ``noqa`` for all codes); CHR009 additionally accepts a structured
``# chariots: bounded-by=<invariant>`` declaration.  Directives only count
inside real comments (tokenized, not regex-over-lines), and CHR017 flags any
directive that no longer suppresses a finding.  Legacy debt lives in a
committed baseline file (``--baseline``) — currently empty, and CI fails if
it grows; see docs/ANALYSIS.md for the workflow.

The package is pure stdlib and never imports the code it scans, so it runs
identically on the real tree and on synthetic fixtures in the tests.
"""

from __future__ import annotations

from .baseline import apply_baseline, dump_baseline, load_baseline, write_baseline
from .cli import main, run_rules
from .findings import Finding
from .model import ProjectModel, build_model
from .project import ModuleInfo, ProjectInfo, scan
from .rules import ALL_RULES, Rule, rules_by_code

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleInfo",
    "ProjectInfo",
    "ProjectModel",
    "Rule",
    "apply_baseline",
    "build_model",
    "dump_baseline",
    "load_baseline",
    "main",
    "run_rules",
    "rules_by_code",
    "scan",
    "write_baseline",
]
