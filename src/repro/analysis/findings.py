"""Finding model for the project linter.

A finding pins one rule violation to one source location.  Its *fingerprint*
deliberately excludes the line number: baselines must survive unrelated edits
that shift code up or down, so two findings with the same rule code, file,
and message are the same finding for baseline accounting (multiplicity is
tracked by counting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    code: str  #: stable rule code, e.g. ``CHR003``
    path: str  #: posix-style path relative to the scan root
    line: int  #: 1-based line of the offending node
    col: int  #: 0-based column of the offending node
    message: str  #: human-readable description of the violation

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.code}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: CODE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
