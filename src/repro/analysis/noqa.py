"""Per-line suppression comments.

A finding on a line carrying ``# chariots: noqa=CHR003`` (or a comma list of
codes, or a bare ``# chariots: noqa`` to suppress every rule) is dropped
before baseline filtering.  The directive is project-specific on purpose —
plain ``# noqa`` keeps its usual meaning for ruff/flake8 and never silences
these rules, so suppressions of protocol/determinism invariants stay
greppable and auditable.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Optional

#: ``line number (1-based) -> suppressed codes`` (``None`` = all codes).
NoqaMap = Dict[int, Optional[FrozenSet[str]]]

#: ``line number (1-based) -> declared bound`` for CHR009's
#: ``# chariots: bounded-by=<reason>`` directive.
BoundedMap = Dict[int, str]

_NOQA_RE = re.compile(
    r"#\s*chariots:\s*noqa(?:\s*=\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
)

_BOUNDED_RE = re.compile(r"#\s*chariots:\s*bounded-by\s*=\s*(?P<reason>[\w.\-]+)")


def collect_noqa(source: str) -> NoqaMap:
    """Map suppression directives in ``source`` by line number."""
    result: NoqaMap = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "chariots" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            result[lineno] = None
        else:
            result[lineno] = frozenset(c.strip() for c in codes.split(","))
    return result


def collect_bounded(source: str) -> BoundedMap:
    """Map ``# chariots: bounded-by=<reason>`` declarations by line number.

    The directive is CHR009's structured escape hatch: it asserts that a
    buffer which *looks* unbounded is in fact bounded by an external
    invariant (named by ``<reason>``), and is accepted on either the
    buffer's initialising assignment or the appending line.  Unlike a bare
    ``noqa`` it forces the author to name the invariant, which keeps
    declared bounds greppable (``grep -rn "bounded-by" src/``).
    """
    result: BoundedMap = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "bounded-by" not in line:
            continue
        match = _BOUNDED_RE.search(line)
        if match is not None:
            result[lineno] = match.group("reason")
    return result


def is_suppressed(noqa: NoqaMap, line: int, code: str) -> bool:
    """Whether ``code`` is suppressed on ``line`` by a noqa directive."""
    if line not in noqa:
        return False
    codes = noqa[line]
    return codes is None or code in codes
