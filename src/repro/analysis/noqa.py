"""Per-line suppression comments.

A finding on a line carrying ``# chariots: noqa=CHR003`` (or a comma list of
codes, or a bare ``# chariots: noqa`` to suppress every rule) is dropped
before baseline filtering.  The directive is project-specific on purpose —
plain ``# noqa`` keeps its usual meaning for ruff/flake8 and never silences
these rules, so suppressions of protocol/determinism invariants stay
greppable and auditable.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

#: ``line number (1-based) -> suppressed codes`` (``None`` = all codes).
NoqaMap = Dict[int, Optional[FrozenSet[str]]]

#: ``line number (1-based) -> declared bound`` for CHR009's
#: ``# chariots: bounded-by=<reason>`` directive.
BoundedMap = Dict[int, str]

_NOQA_RE = re.compile(
    r"#\s*chariots:\s*noqa(?:\s*=\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
)

_BOUNDED_RE = re.compile(r"#\s*chariots:\s*bounded-by\s*=\s*(?P<reason>[\w.\-]+)")


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """``(line, text)`` for every real comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps directives
    quoted inside docstrings and string literals — this module's own docs,
    for one — from registering as live suppressions.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return  # unparseable tail; the scanner already requires valid AST


def collect_noqa(source: str) -> NoqaMap:
    """Map suppression directives in ``source`` by line number."""
    result: NoqaMap = {}
    for lineno, comment in _comment_tokens(source):
        match = _NOQA_RE.search(comment)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            result[lineno] = None
        else:
            result[lineno] = frozenset(c.strip() for c in codes.split(","))
    return result


def collect_bounded(source: str) -> BoundedMap:
    """Map ``# chariots: bounded-by=<reason>`` declarations by line number.

    The directive is CHR009's structured escape hatch: it asserts that a
    buffer which *looks* unbounded is in fact bounded by an external
    invariant (named by ``<reason>``), and is accepted on either the
    buffer's initialising assignment or the appending line.  Unlike a bare
    ``noqa`` it forces the author to name the invariant, which keeps
    declared bounds greppable (``grep -rn "bounded-by" src/``).
    """
    result: BoundedMap = {}
    for lineno, comment in _comment_tokens(source):
        match = _BOUNDED_RE.search(comment)
        if match is not None:
            result[lineno] = match.group("reason")
    return result


def is_suppressed(noqa: NoqaMap, line: int, code: str) -> bool:
    """Whether ``code`` is suppressed on ``line`` by a noqa directive."""
    if line not in noqa:
        return False
    codes = noqa[line]
    return codes is None or code in codes
