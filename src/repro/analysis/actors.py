"""Cross-actor message-flow graph: who sends what to whom, and how.

The :class:`~repro.analysis.model.ProjectModel` knows message *kinds* —
which dataclasses exist, where they are constructed, which ``on_message``
bodies ``isinstance``-dispatch them.  What it cannot answer is the
*actor-level* question the cross-actor rules need: from a ``self.send(...)``
site in class A, which classes can receive the message, which dispatch
branch handles it there, and what that branch does (replies sent, state
overwritten, intake refused under a buffer limit).

This module extracts exactly that, once per scan:

* **actor classes** — every class defining ``on_message``;
* **handler branches** — per actor, per message kind, the ``isinstance``
  branch body that handles it (first match wins, mirroring dispatch order);
* **send sites** — every ``self.send(dst, msg)`` with the message kind
  resolved through direct construction *or* a same-function variable
  binding (``m = Ack(...); self.send(src, m)``);
* **branch facts** — reply kinds sent from inside a branch, plain
  ``self.attr = ...`` overwrites (split by whether the old value feeds the
  new one), and whether the branch can *refuse* its input under a
  limit/high-water guard without consuming it.

The graph is memoised on :attr:`ProjectInfo.actor_cache` alongside the
model cache, so CHR018/CHR019/CHR021 and the ``--graph`` dump share one
extraction pass.  Everything is pure ``ast``; the scanned code is never
imported.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .dataflow import AnyFunc, class_methods
from .model import terminal_name
from .project import ModuleInfo, ProjectInfo

#: Self-attribute names that look like an intake bound: a branch guarded by
#: one of these and refusing the message is a backpressure edge.
_LIMIT_ATTR_RE = re.compile(r"limit|max|high_water|capacity|bound")


@dataclass(slots=True)
class SendSite:
    """One ``self.send(dst, msg)`` call with its resolved message kind."""

    kind: str  #: message class name, or "" when unresolvable
    method: str  #: enclosing method name
    line: int
    col: int


@dataclass(slots=True)
class AttrWrite:
    """A plain ``self.attr = value`` inside a handler branch."""

    attr: str
    line: int
    col: int
    #: whether ``value`` mentions ``self.attr`` itself — a read-modify-write
    #: (merge) keeps the current value alive; a blind overwrite does not.
    reads_old: bool


@dataclass(slots=True)
class HandlerBranch:
    """The dispatch branch of one actor class for one message kind."""

    kinds: Tuple[str, ...]  #: every kind the isinstance test matches
    line: int
    col: int
    #: message kinds sent from inside this branch (replies/forwards).
    sends: List[SendSite] = field(default_factory=list)
    #: plain self-attribute overwrites inside this branch.
    writes: List[AttrWrite] = field(default_factory=list)
    #: the branch contains a limit-guarded path that returns or forwards
    #: without consuming the message (bounded intake that can refuse).
    refusable: bool = False


@dataclass(slots=True)
class ActorClass:
    """One class defining ``on_message``, with its extracted flow facts."""

    name: str
    module: ModuleInfo
    line: int
    col: int
    node: ast.ClassDef
    #: message kind -> the dispatch branch handling it (first match).
    handles: Dict[str, HandlerBranch] = field(default_factory=dict)
    #: every resolved ``self.send`` site in the class, any method.
    sends: List[SendSite] = field(default_factory=list)


@dataclass(slots=True)
class ActorGraph:
    """The whole-project cross-actor view shared by CHR018/CHR019/CHR021."""

    actors: Dict[str, ActorClass] = field(default_factory=dict)
    #: message kind -> actor class names whose on_message dispatches it.
    receivers: Dict[str, List[str]] = field(default_factory=dict)
    #: message kind -> actor class names with a send site for it.
    senders: Dict[str, List[str]] = field(default_factory=dict)

    def edges(self) -> List[Tuple[str, str, str]]:
        """``(sender class, receiver class, kind)`` for every flow edge."""
        result: List[Tuple[str, str, str]] = []
        for kind, sender_names in sorted(self.senders.items()):
            for receiver in self.receivers.get(kind, ()):
                for sender in sender_names:
                    result.append((sender, receiver, kind))
        return result


def _var_kinds(func: AnyFunc) -> Dict[str, str]:
    """``m = Ack(...)`` bindings: variable name -> constructed class name."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        kind = terminal_name(node.value.func)
        if kind is None or not kind[:1].isupper():
            continue  # lowercase callees are helpers, not message classes
        for target in node.targets:
            if isinstance(target, ast.Name):
                bindings[target.id] = kind
    return bindings


def _send_calls(
    root: ast.AST, var_kinds: Dict[str, str], method: str
) -> List[SendSite]:
    """Every ``self.send(dst, msg)`` under ``root`` with its resolved kind."""
    sites: List[SendSite] = []
    for node in ast.walk(root):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and len(node.args) >= 2
        ):
            continue
        arg = node.args[1]
        kind = ""
        if isinstance(arg, ast.Call):
            kind = terminal_name(arg.func) or ""
        elif isinstance(arg, ast.Name):
            kind = var_kinds.get(arg.id, "")
        sites.append(SendSite(kind, method, node.lineno, node.col_offset))
    return sites


def _isinstance_kinds(test: ast.expr, message_param: str) -> Tuple[str, ...]:
    """Kinds an ``isinstance(message, ...)`` test matches (empty: not one)."""
    kinds: List[str] = []
    for node in ast.walk(test):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == message_param
        ):
            continue
        spec = node.args[1]
        elements = spec.elts if isinstance(spec, (ast.Tuple, ast.List)) else [spec]
        for element in elements:
            name = terminal_name(element)
            if name:
                kinds.append(name)
    return tuple(kinds)


def _attr_writes(body: Sequence[ast.stmt]) -> List[AttrWrite]:
    """Plain ``self.attr = value`` statements anywhere under ``body``."""
    writes: List[AttrWrite] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                reads_old = any(
                    isinstance(sub, ast.Attribute)
                    and sub.attr == target.attr
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    for sub in ast.walk(node.value)
                )
                writes.append(
                    AttrWrite(target.attr, node.lineno, node.col_offset, reads_old)
                )
    return writes


def _reads_limit_attr(test: ast.expr) -> bool:
    """Whether a guard expression consults an intake bound.

    Either a ``self.<x>`` attribute whose name says limit/max/high-water, or
    a ``len(...) >= ...`` style occupancy comparison.
    """
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and _LIMIT_ATTR_RE.search(node.attr)
        ):
            return True
        if (
            isinstance(node, ast.Compare)
            and any(
                isinstance(side, ast.Call)
                and isinstance(side.func, ast.Name)
                and side.func.id == "len"
                for side in [node.left, *node.comparators]
            )
        ):
            return True
    return False


def _consumes(body: Sequence[ast.stmt]) -> bool:
    """Whether a guard body stores the message (append/extend/subscript)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "appendleft", "extend", "add", "put")
            ):
                return True
            if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
                return True
    return False


def _branch_refusable(body: Sequence[ast.stmt]) -> bool:
    """A limit-guarded path in ``body`` that refuses instead of consuming.

    Shape: ``if <test consulting a limit attr or len(...) comparison>:``
    whose taken branch returns, or forwards via ``self.send``, without
    storing the message locally.  That is the backpressure-refusal idiom —
    legitimate alone, deadlock-prone when every edge of a cycle has one.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.If) or not _reads_limit_attr(node.test):
                continue
            guarded = node.body
            if _consumes(guarded):
                continue
            has_exit = any(
                isinstance(sub, (ast.Return, ast.Continue))
                for inner in guarded
                for sub in ast.walk(inner)
            )
            has_forward = bool(_send_calls(ast.Module(body=list(guarded), type_ignores=[]), {}, ""))
            if has_exit or has_forward:
                return True
    return False


def _handler_branches(
    func: AnyFunc, var_kinds: Dict[str, str]
) -> List[HandlerBranch]:
    """Every ``isinstance`` dispatch branch of one ``on_message`` body."""
    args = func.args.args
    message_param = args[2].arg if len(args) >= 3 else "message"
    branches: List[HandlerBranch] = []

    def visit(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                kinds = _isinstance_kinds(stmt.test, message_param)
                if kinds:
                    branch = HandlerBranch(
                        kinds=kinds, line=stmt.lineno, col=stmt.col_offset
                    )
                    branch.sends = _send_calls(
                        ast.Module(body=list(stmt.body), type_ignores=[]),
                        var_kinds,
                        func.name,
                    )
                    branch.writes = _attr_writes(stmt.body)
                    branch.refusable = _branch_refusable(stmt.body)
                    branches.append(branch)
                    visit(stmt.orelse)
                else:
                    visit(stmt.body)
                    visit(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.Try)):
                visit(stmt.body)
                if isinstance(stmt, ast.Try):
                    for handler in stmt.handlers:
                        visit(handler.body)
                    visit(stmt.orelse)
                    visit(stmt.finalbody)
            elif isinstance(stmt, (ast.For, ast.While)):
                visit(stmt.body)
                visit(stmt.orelse)

    visit(func.body)
    return branches


def build_actor_graph(project: ProjectInfo) -> ActorGraph:
    """Build (or return the memoised) :class:`ActorGraph` for a scan."""
    cached = project.actor_cache
    if isinstance(cached, ActorGraph):
        return cached
    graph = ActorGraph()
    for module in project:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = class_methods(node)
            handler = methods.get("on_message")
            if handler is None:
                continue
            actor = ActorClass(
                name=node.name,
                module=module,
                line=node.lineno,
                col=node.col_offset,
                node=node,
            )
            for method_name, func in sorted(methods.items()):
                bindings = _var_kinds(func)
                actor.sends.extend(_send_calls(func, bindings, method_name))
                if func is handler:
                    for branch in _handler_branches(func, bindings):
                        for kind in branch.kinds:
                            actor.handles.setdefault(kind, branch)
            # A class name can repeat across modules (fixtures); keep the
            # first occurrence, which matches sorted-scan determinism.
            graph.actors.setdefault(node.name, actor)
    for name in sorted(graph.actors):
        actor = graph.actors[name]
        for kind in actor.handles:
            graph.receivers.setdefault(kind, []).append(name)
        for site in actor.sends:
            if site.kind:
                existing = graph.senders.setdefault(site.kind, [])
                if name not in existing:
                    existing.append(name)
    project.actor_cache = graph
    return graph


def actor_graph_dict(graph: ActorGraph) -> Dict[str, object]:
    """The actor graph as a JSON-ready dict (merged into ``--graph json``)."""
    actors: Dict[str, object] = {}
    for name in sorted(graph.actors):
        actor = graph.actors[name]
        actors[name] = {
            "module": actor.module.relpath,
            "handles": {
                kind: {
                    "line": branch.line,
                    "replies": sorted({s.kind for s in branch.sends if s.kind}),
                    "refusable": branch.refusable,
                }
                for kind, branch in sorted(actor.handles.items())
            },
            "sends": sorted({s.kind for s in actor.sends if s.kind}),
        }
    edges = [
        {"from": sender, "to": receiver, "kind": kind}
        for sender, receiver, kind in graph.edges()
    ]
    return {"actors": actors, "edges": edges}


__all__ = [
    "ActorClass",
    "ActorGraph",
    "AttrWrite",
    "HandlerBranch",
    "SendSite",
    "actor_graph_dict",
    "build_actor_graph",
]
