"""Rule registry.

Rules self-describe (code, name, description) and are discovered from this
registry; adding a rule is: write a :class:`~repro.analysis.rules.base.Rule`
subclass in a module here, then list it in :data:`ALL_RULES`.  Codes must be
unique and are never reused once retired (suppression comments and baselines
reference them).
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..protocol_check.rule import ProtocolInvariantRule
from .async_safety import BlockingAsyncRule
from .atomicity import AwaitAtomicityRule
from .base import ModuleRule, Rule
from .buffers import UnboundedBufferRule
from .cross_actor import BackpressureCycleRule, CrossActorRaceRule, SilentDropRule
from .deadcode import OrphanMessageRule
from .determinism import IterationOrderRule, UnseededRandomRule, WallClockRule
from .dispatch import RequestDispatchRule
from .exceptions import SwallowedExceptionRule
from .noqa_audit import DeadNoqaRule
from .protocol import ProtocolDispatchRule, ProtocolRegistrationRule
from .replies import ReplyShapeRule
from .slots import SlotsRule
from .sockets import BlockingSocketRule
from .supervision import SupervisorProtocolRule
from .typed_api import TypedApiRule

#: Every shipped rule, in code order.
ALL_RULES: List[Type[Rule]] = [
    ProtocolRegistrationRule,  # CHR001
    ProtocolDispatchRule,  # CHR002
    WallClockRule,  # CHR003
    UnseededRandomRule,  # CHR004
    IterationOrderRule,  # CHR005
    BlockingAsyncRule,  # CHR006
    SlotsRule,  # CHR007
    TypedApiRule,  # CHR008
    UnboundedBufferRule,  # CHR009
    AwaitAtomicityRule,  # CHR010
    RequestDispatchRule,  # CHR011
    OrphanMessageRule,  # CHR012
    SwallowedExceptionRule,  # CHR013
    BlockingSocketRule,  # CHR014
    ReplyShapeRule,  # CHR015
    SupervisorProtocolRule,  # CHR016
    DeadNoqaRule,  # CHR017
    CrossActorRaceRule,  # CHR018
    SilentDropRule,  # CHR019
    ProtocolInvariantRule,  # CHR020
    BackpressureCycleRule,  # CHR021
]


def rules_by_code() -> Dict[str, Type[Rule]]:
    table: Dict[str, Type[Rule]] = {}
    for rule in ALL_RULES:
        if rule.code in table:
            raise ValueError(f"duplicate rule code {rule.code}")
        table[rule.code] = rule
    return table


__all__ = [
    "ALL_RULES",
    "ModuleRule",
    "Rule",
    "rules_by_code",
    "AwaitAtomicityRule",
    "BackpressureCycleRule",
    "BlockingAsyncRule",
    "BlockingSocketRule",
    "CrossActorRaceRule",
    "DeadNoqaRule",
    "IterationOrderRule",
    "OrphanMessageRule",
    "ProtocolDispatchRule",
    "ProtocolInvariantRule",
    "ProtocolRegistrationRule",
    "ReplyShapeRule",
    "RequestDispatchRule",
    "SilentDropRule",
    "SlotsRule",
    "SupervisorProtocolRule",
    "SwallowedExceptionRule",
    "TypedApiRule",
    "UnboundedBufferRule",
    "UnseededRandomRule",
    "WallClockRule",
]
