"""CHR007 — ``__slots__`` on record/message types in batch fast paths.

The batch fast paths allocate one message/record object per wire item; a
dict-backed dataclass costs an extra allocation and ~3x the memory per
instance, which shows directly in the micro benchmarks (BENCH_micro.json).
Every public dataclass in the ``*/messages.py`` modules and the core record
model (``core/record.py``) must therefore be declared ``@dataclass(...,
slots=True)`` — or, for field-less base classes like ``Payload``, carry an
explicit ``__slots__ = ()`` so subclasses' slots actually bite (a dict-ful
base silently re-adds ``__dict__`` to every subclass instance).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..findings import Finding
from ..project import ModuleInfo
from .base import ModuleRule

#: Module path suffixes whose dataclasses are hot-path record/message types.
HOT_MODULE_SUFFIXES: Tuple[str, ...] = ("messages.py", "core/record.py")


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return decorator
    return None


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    return False


class SlotsRule(ModuleRule):
    """CHR007: hot-path dataclasses must be slotted."""

    code = "CHR007"
    name = "missing-slots"
    description = (
        "Public dataclasses in */messages.py and core/record.py are "
        "allocated per wire item on the batch fast paths and must declare "
        "slots=True in their @dataclass decorator (or an explicit "
        "__slots__ assignment for field-less bases)."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not any(module.relpath.endswith(s) for s in HOT_MODULE_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if isinstance(decorator, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in decorator.keywords
            ):
                continue
            if _declares_slots(node):
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"hot-path dataclass {node.name} lacks __slots__; declare "
                "@dataclass(slots=True) or __slots__ = () on field-less bases",
            )
