"""CHR012 — dead/orphan message kinds, via the construction graph.

CHR001/CHR002 check *registered* messages against handlers.  The remaining
drift the model's construction sites expose:

* a message dataclass that is **constructed but unregistered and
  undispatched** — it works in-process (objects pass by reference, duck
  typing finds a handler) and is invisible to both codecs and every
  ``isinstance`` dispatch, so it dies at the first TCP hop;
* a **registered type nothing constructs** — dead codec surface that still
  occupies a binary type index (and silently shadows any future type that
  reuses the name).

Messages constructed only by external drivers (tests, benchmark harnesses)
are a legitimate pattern — suppress at the registration site with
``# chariots: noqa=CHR012`` and a justification.  CHR017 will flag the
directive the day it stops suppressing anything, so stale escapes don't
outlive the pattern they excuse.
"""

from __future__ import annotations

from typing import Iterator, Set

from ..findings import Finding
from ..model import build_model
from ..project import ProjectInfo
from .base import Rule


class OrphanMessageRule(Rule):
    """CHR012: constructed-but-unroutable and registered-but-unconstructed."""

    code = "CHR012"
    name = "orphan-message"
    description = (
        "A message dataclass that is constructed but neither codec-registered "
        "nor isinstance-dispatched nor embedded in another message is "
        "unroutable drift; a codec registration whose type is never "
        "constructed anywhere in src/ is dead protocol surface."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        model = build_model(project)
        if not model.registry or not model.message_classes:
            return
        registered = model.registered_names
        embedded = model.embedded_annotation_names
        for cls in model.message_classes.values():
            if cls.fields == 0 or cls.name in registered:
                continue  # bases are abstract; registered ones are CHR002's job
            if cls.name not in model.constructions:
                continue  # never constructed either: plain dead code, not drift
            if cls.name in model.dispatched or cls.name in embedded:
                continue
            yield self.finding(
                cls.module,
                cls.line,
                cls.col,
                f"message dataclass {cls.name} is constructed but never "
                "codec-registered, dispatched, or embedded — it cannot cross "
                "a TCP boundary",
            )
        seen: Set[str] = set()
        for entry in model.registry:
            if entry.name in seen:
                continue  # duplicate registrations are CHR002's finding
            seen.add(entry.name)
            if entry.name not in model.all_class_names:
                continue  # stale registration: CHR002 already fires
            constructions = model.constructions.get(entry.name, [])
            # The registry itself references the class; only *call* sites
            # outside the codec module count as real constructions.
            real = [
                s
                for s in constructions
                if s.module.relpath != entry.module.relpath
            ]
            if not real:
                yield self.finding(
                    entry.module,
                    entry.line,
                    entry.col,
                    f"registered message type {entry.name} is never "
                    "constructed anywhere in the scanned tree (dead codec "
                    "surface)",
                )
