"""CHR001/CHR002 — protocol exhaustiveness.

The pipeline ≡ abstract equivalence argument (PAPER.md §6.1) silently breaks
if a message type can be constructed but not shipped (missing codec
registration) or shipped but not understood (no handler dispatches it).
These rules keep three artefacts in lockstep, purely from the AST:

* the **message modules** (``*/messages.py``): every public dataclass with
  at least one field is a protocol message;
* the **codec registry** (the module assigning ``_MESSAGE_TYPES``; the
  binary codec derives its type index from the same registry, so one check
  covers both codecs);
* the **handlers**: ``isinstance`` dispatch inside ``on_message`` methods.

CHR001 fires for a message dataclass missing from the registry.  CHR002
fires both ways: a registry entry whose class no longer exists (stale
registration), and a registered message that no handler dispatches and no
other message embeds as a field (dead protocol surface).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..project import ModuleInfo, ProjectInfo
from .base import Rule

_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _terminal_name(node: ast.AST) -> Optional[str]:
    """``cmsg.DraftBatch`` -> ``DraftBatch``; ``DraftBatch`` -> itself."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _terminal_name(target)
        if name == "dataclass":
            return True
    return False


def _field_count(node: ast.ClassDef) -> int:
    """Number of public dataclass fields declared directly on the class."""
    count = 0
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if isinstance(target, ast.Name) and not target.id.startswith("_"):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" not in annotation:
                count += 1
    return count


def _annotation_names(node: ast.ClassDef) -> Set[str]:
    """Every identifier appearing in the class's field annotations."""
    names: Set[str] = set()
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        for sub in ast.walk(stmt.annotation):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                # Forward references: "Record" inside a string annotation.
                if sub.value and set(sub.value) <= _IDENT_CHARS:
                    names.add(sub.value)
    return names


@dataclass(slots=True)
class _MessageClass:
    name: str
    module: ModuleInfo
    line: int
    col: int
    fields: int
    annotation_names: Set[str]


def _registry_entries(module: ModuleInfo) -> List[Tuple[str, int, int]]:
    """(name, line, col) for every type registered in a codec module.

    Recognises the three registration shapes used by the tagged-JSON codec:
    the ``_MESSAGE_TYPES`` tuple, ``_BY_NAME[...] = Cls`` additions, and
    ``_register("Name", Cls, ...)`` calls for bespoke value types.
    """
    entries: List[Tuple[str, int, int]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "_MESSAGE_TYPES"
                    and isinstance(node.value, (ast.Tuple, ast.List))
                ):
                    for element in node.value.elts:
                        name = _terminal_name(element)
                        if name:
                            entries.append(
                                (name, element.lineno, element.col_offset)
                            )
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "_BY_NAME"
                ):
                    name = _terminal_name(node.value)
                    if name:
                        entries.append((name, node.lineno, node.col_offset))
        elif isinstance(node, ast.Call):
            callee = _terminal_name(node.func)
            if callee == "_register" and len(node.args) >= 2:
                name = _terminal_name(node.args[1])
                if name:
                    entries.append((name, node.lineno, node.col_offset))
    return entries


def _dispatched_names(project: ProjectInfo) -> Set[str]:
    """Class names appearing in ``isinstance`` checks inside ``on_message``."""
    dispatched: Set[str] = set()
    for module in project:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name != "on_message":
                continue
            for call in ast.walk(node):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id == "isinstance"
                    and len(call.args) == 2
                ):
                    spec = call.args[1]
                    elements = (
                        spec.elts if isinstance(spec, (ast.Tuple, ast.List)) else [spec]
                    )
                    for element in elements:
                        name = _terminal_name(element)
                        if name:
                            dispatched.add(name)
    return dispatched


def _collect(project: ProjectInfo) -> Tuple[
    Dict[str, _MessageClass],
    List[Tuple[ModuleInfo, str, int, int]],
    Set[str],
    Set[str],
]:
    """Shared extraction for both protocol rules."""
    message_classes: Dict[str, _MessageClass] = {}
    registry: List[Tuple[ModuleInfo, str, int, int]] = []
    all_class_names: Set[str] = set()
    for module in project:
        is_messages = module.relpath.endswith("messages.py")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                all_class_names.add(node.name)
                if (
                    is_messages
                    and not node.name.startswith("_")
                    and _is_dataclass_decorated(node)
                ):
                    message_classes[node.name] = _MessageClass(
                        name=node.name,
                        module=module,
                        line=node.lineno,
                        col=node.col_offset,
                        fields=_field_count(node),
                        annotation_names=_annotation_names(node),
                    )
        for name, line, col in _registry_entries(module):
            registry.append((module, name, line, col))
    dispatched = _dispatched_names(project)
    return message_classes, registry, all_class_names, dispatched


class ProtocolRegistrationRule(Rule):
    """CHR001: every message dataclass is codec-registered."""

    code = "CHR001"
    name = "protocol-unregistered"
    description = (
        "Every public dataclass with fields defined in a */messages.py module "
        "must appear in the codec message-type registry (_MESSAGE_TYPES / "
        "_BY_NAME / _register), so both the tagged-JSON and binary codecs can "
        "ship it.  Zero-field classes are treated as abstract bases."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        message_classes, registry, _all_names, _dispatched = _collect(project)
        if not registry:
            # No codec registry in the scanned tree (e.g. a partial scan):
            # the cross-check is meaningless, stay silent.
            return
        registered = {name for _m, name, _l, _c in registry}
        for cls in message_classes.values():
            if cls.fields == 0:
                continue
            if cls.name not in registered:
                yield self.finding(
                    cls.module,
                    cls.line,
                    cls.col,
                    f"message dataclass {cls.name} is not registered in the "
                    "codec message-type registry",
                )


class ProtocolDispatchRule(Rule):
    """CHR002: registry ↔ handler agreement, both directions."""

    code = "CHR002"
    name = "protocol-unhandled"
    description = (
        "Every codec-registered message must correspond to a real class "
        "(stale registrations rot the binary codec's type index) and must be "
        "either dispatched by an on_message isinstance check somewhere or "
        "embedded as a field of another registered message (pure value "
        "types).  A registered-but-unroutable message is dead protocol "
        "surface that silently drifts."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        message_classes, registry, all_names, dispatched = _collect(project)
        if not registry or not message_classes:
            return
        embedded: Set[str] = set()
        for cls in message_classes.values():
            embedded |= cls.annotation_names
        seen: Set[str] = set()
        for module, name, line, col in registry:
            if name not in all_names:
                yield self.finding(
                    module,
                    line,
                    col,
                    f"registered message type {name} has no class definition "
                    "in the scanned tree (stale registration)",
                )
                continue
            if name in seen:
                yield self.finding(
                    module,
                    line,
                    col,
                    f"message type {name} is registered more than once",
                )
            seen.add(name)
        for cls in message_classes.values():
            if cls.fields == 0 or cls.name not in seen:
                continue
            if cls.name in dispatched or cls.name in embedded:
                continue
            yield self.finding(
                cls.module,
                cls.line,
                cls.col,
                f"registered message {cls.name} is never dispatched by any "
                "on_message handler nor embedded in another message",
            )
