"""CHR001/CHR002 — protocol exhaustiveness.

The pipeline ≡ abstract equivalence argument (PAPER.md §6.1) silently breaks
if a message type can be constructed but not shipped (missing codec
registration) or shipped but not understood (no handler dispatches it).
These rules keep three artefacts in lockstep, reading the shared
:class:`~repro.analysis.model.ProjectModel` (built once per scan):

* the **message modules** (``*/messages.py``): every public dataclass with
  at least one field is a protocol message;
* the **codec registry** (the module assigning ``_MESSAGE_TYPES``; the
  binary codec derives its type index from the same registry, so one check
  covers both codecs);
* the **handlers**: ``isinstance`` dispatch inside ``on_message`` methods.

CHR001 fires for a message dataclass missing from the registry.  CHR002
fires both ways: a registry entry whose class no longer exists (stale
registration), and a registered message that no handler dispatches and no
other message embeds as a field (dead protocol surface).
"""

from __future__ import annotations

from typing import Iterator, Set

from ..findings import Finding
from ..model import build_model
from ..project import ProjectInfo
from .base import Rule


class ProtocolRegistrationRule(Rule):
    """CHR001: every message dataclass is codec-registered."""

    code = "CHR001"
    name = "protocol-unregistered"
    description = (
        "Every public dataclass with fields defined in a */messages.py module "
        "must appear in the codec message-type registry (_MESSAGE_TYPES / "
        "_BY_NAME / _register), so both the tagged-JSON and binary codecs can "
        "ship it.  Zero-field classes are treated as abstract bases."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        model = build_model(project)
        if not model.registry:
            # No codec registry in the scanned tree (e.g. a partial scan):
            # the cross-check is meaningless, stay silent.
            return
        registered = model.registered_names
        for cls in model.message_classes.values():
            if cls.fields == 0:
                continue
            if cls.name not in registered:
                yield self.finding(
                    cls.module,
                    cls.line,
                    cls.col,
                    f"message dataclass {cls.name} is not registered in the "
                    "codec message-type registry",
                )


class ProtocolDispatchRule(Rule):
    """CHR002: registry ↔ handler agreement, both directions."""

    code = "CHR002"
    name = "protocol-unhandled"
    description = (
        "Every codec-registered message must correspond to a real class "
        "(stale registrations rot the binary codec's type index) and must be "
        "either dispatched by an on_message isinstance check somewhere or "
        "embedded as a field of another registered message (pure value "
        "types).  A registered-but-unroutable message is dead protocol "
        "surface that silently drifts."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        model = build_model(project)
        if not model.registry or not model.message_classes:
            return
        embedded = model.embedded_annotation_names
        seen: Set[str] = set()
        for entry in model.registry:
            if entry.name not in model.all_class_names:
                yield self.finding(
                    entry.module,
                    entry.line,
                    entry.col,
                    f"registered message type {entry.name} has no class "
                    "definition in the scanned tree (stale registration)",
                )
                continue
            if entry.name in seen:
                yield self.finding(
                    entry.module,
                    entry.line,
                    entry.col,
                    f"message type {entry.name} is registered more than once",
                )
            seen.add(entry.name)
        for cls in model.message_classes.values():
            if cls.fields == 0 or cls.name not in seen:
                continue
            if cls.name in model.dispatched or cls.name in embedded:
                continue
            yield self.finding(
                cls.module,
                cls.line,
                cls.col,
                f"registered message {cls.name} is never dispatched by any "
                "on_message handler nor embedded in another message",
            )
