"""CHR006 — no blocking calls inside ``async def`` in the network layer.

The asyncio deployment multiplexes every actor, server, and client over one
event loop.  A single synchronous sleep, socket operation, or file read in
an ``async def`` stalls the whole datacenter: heartbeats miss, retransmit
timers fire spuriously, and the chaos suites turn into false alarms.  The
rule flags the well-known blocking stdlib calls lexically inside any
``async def`` in ``net/`` (nested synchronous helpers included — they run
on the loop too).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..findings import Finding
from ..project import ModuleInfo, qualified_name
from .base import ModuleRule

#: Packages whose async defs are checked.
ASYNC_SCOPED_PACKAGES: Tuple[str, ...] = ("net",)

_BLOCKING_CALLS = {
    "time.sleep": "use await asyncio.sleep(...)",
    "socket.socket": "use asyncio streams (open_connection/start_server)",
    "socket.create_connection": "use asyncio.open_connection(...)",
    "socket.getaddrinfo": "use loop.getaddrinfo(...)",
    "subprocess.run": "use asyncio.create_subprocess_exec(...)",
    "subprocess.call": "use asyncio.create_subprocess_exec(...)",
    "subprocess.check_call": "use asyncio.create_subprocess_exec(...)",
    "subprocess.check_output": "use asyncio.create_subprocess_exec(...)",
    "subprocess.Popen": "use asyncio.create_subprocess_exec(...)",
    "urllib.request.urlopen": "use an async HTTP client or run_in_executor",
    "open": "read the file before entering the async path or use run_in_executor",
    "input": "never block the event loop on stdin",
}


class BlockingAsyncRule(ModuleRule):
    """CHR006: async handlers in net/ must not block the event loop."""

    code = "CHR006"
    name = "async-blocking"
    description = (
        "async def bodies in net/ must not call blocking primitives "
        "(time.sleep, socket.*, subprocess.*, open, urllib): one blocked "
        "coroutine stalls every actor sharing the event loop."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(ASYNC_SCOPED_PACKAGES):
            return
        seen = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                name = qualified_name(call.func, module.imports)
                if name in _BLOCKING_CALLS:
                    site = (call.lineno, call.col_offset)
                    if site in seen:  # nested async def already reported it
                        continue
                    seen.add(site)
                    yield self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"blocking call {name}() inside async def "
                        f"{node.name}; {_BLOCKING_CALLS[name]}",
                    )
