"""CHR008 — fully annotated public API in the typed packages.

Every ``repro.*`` package is on the mypy strict profile (pyproject
``[tool.mypy]`` overrides — the lenient repo-wide default is gone); strict
mode fails on any unannotated def, but mypy isn't installable in every
environment this repo runs in.  This rule enforces the load-bearing subset
locally and offline: every public function/method in those packages must
annotate its return type and every parameter (``self``/``cls`` excepted),
so the typed surface can't silently erode between CI runs.

``TYPED_PACKAGES`` must stay identical to the pyproject override module
list and the actual ``src/repro/*`` package set —
``tests/test_analysis.py`` asserts all three agree, so a new package
cannot land untyped silently.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..findings import Finding
from ..project import ModuleInfo
from .base import ModuleRule

#: Packages whose public defs must be fully annotated (the mypy-strict set).
TYPED_PACKAGES: Tuple[str, ...] = (
    "core",
    "flstore",
    "chariots",
    "runtime",
    "net",
    "bench",
    "sim",
    "chaos",
    "apps",
    "baseline",
    "scenarios",
    "analysis",
)

#: Dunder methods with fixed, inferable signatures that strict mypy accepts
#: without annotations are still annotated in this codebase; but __init__
#: subclass hooks etc. must carry annotations like everything else.
_IMPLICIT_OK = {"__init_subclass__", "__class_getitem__"}


class TypedApiRule(ModuleRule):
    """CHR008: public defs in typed packages carry full annotations."""

    code = "CHR008"
    name = "untyped-public-api"
    description = (
        "Every public function and method in every repro.* package must "
        "annotate its return type and all parameters (self/cls excepted); "
        "this is the offline-checkable core of the mypy strict gate, which "
        "now covers the whole tree."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(TYPED_PACKAGES):
            return
        # (function node, enclosing class or None), skipping nested defs:
        # closures are implementation detail, not API surface.
        stack = [(node, None) for node in module.tree.body]
        while stack:
            node, owner = stack.pop()
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    stack.extend((child, node) for child in node.body)
                continue
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = node.name
            private = name.startswith("_") and not (
                name.startswith("__") and name.endswith("__")
            )
            if private or name in _IMPLICIT_OK:
                continue
            where = f"{owner.name}.{name}" if owner is not None else name
            if node.returns is None:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"public def {where} has no return annotation",
                )
            args = node.args
            positional = list(args.posonlyargs) + list(args.args)
            is_method = owner is not None and not any(
                isinstance(d, ast.Name) and d.id == "staticmethod"
                for d in node.decorator_list
            )
            if is_method and positional:
                positional = positional[1:]  # self / cls
            for arg in positional + list(args.kwonlyargs):
                if arg.annotation is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"public def {where} has unannotated parameter "
                        f"{arg.arg!r}",
                    )
            for star in (args.vararg, args.kwarg):
                if star is not None and star.annotation is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"public def {where} has unannotated parameter "
                        f"*{star.arg!r}",
                    )
