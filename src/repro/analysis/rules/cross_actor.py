"""CHR018/CHR019 — races and liveness across the actor boundary.

The intra-class dataflow walk (CHR010) stops at ``self.send``: whatever the
receiving actor does to the sender's world happens in a later activation it
never sees.  These two rules follow the edge, using the cross-actor graph
(:mod:`repro.analysis.actors`) to resolve who can receive each kind.

* **CHR018 cross-actor lost update.**  A method on the hot path reads
  ``self.x`` and then sends message ``M``.  Some receiver's handler branch
  for ``M`` replies with ``R``; the sender's own handler branch for ``R``
  *blindly overwrites* ``self.x`` (a plain ``self.x = value`` whose value
  does not mention ``self.x``).  The read and the overwrite straddle a full
  round trip — any write to ``x`` between them is silently lost, and the
  decision taken from the read is stale by the time the reply lands.
  Merging handlers (``self.x = merge(self.x, reply.y)``) incorporate the
  current value and are exempt; so is the degenerate case where the reply
  branch itself is the only reader.

* **CHR019 state-guarded silent drop.**  An ``on_message`` body (or one of
  its dispatch branches) bails out on a pure state guard — ``if
  self._parked: return`` — with no send, no raise, no self-state write, no
  call.  Every message kind the flow graph routes to this actor can arrive
  while that state holds (parked, draining, pre-start) and vanishes without
  a trace: no counter, no dead-letter, no log.  The fix is to account for
  the drop (bump a counter, forward, raise), which also satisfies the rule.

Both rules only consider classes that define ``on_message`` (actors), so
ordinary classes and partial fixture trees stay out of scope.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..actors import ActorClass, ActorGraph, build_actor_graph
from ..dataflow import (
    EXPAND_DEPTH,
    READ,
    SEND,
    class_methods,
    expand_events,
    method_events,
    reachable_within,
    self_call_graph,
)
from ..findings import Finding
from ..project import ProjectInfo
from .base import Rule

#: Hot-path roots: activations the runtime invokes directly.
_ROOTS = ("on_message", "on_start")


def _reads_before_sends(actor: ActorClass) -> Dict[str, Set[str]]:
    """``message kind -> self attributes read before some send of it``.

    Events are taken per hot-path method (reachable from ``on_message`` /
    ``on_start`` within the standard hop bound), expanded through same-class
    helpers, so a read in ``on_message`` that funnels into a send inside a
    depth-3 helper still counts.
    """
    methods = class_methods(actor.node)
    graph = self_call_graph(actor.node)
    hot = reachable_within(graph, _ROOTS, EXPAND_DEPTH)
    summaries = {
        name: method_events(func, methods) for name, func in methods.items()
    }
    result: Dict[str, Set[str]] = {}
    for name in sorted(hot):
        events = expand_events(summaries.get(name, []), summaries)
        seen_reads: Set[str] = set()
        for event in events:
            if event.kind == READ:
                seen_reads.add(event.attr)
            elif event.kind == SEND and seen_reads:
                kind = event.attr or _kind_at(actor, event.line, event.col)
                if kind:
                    result.setdefault(kind, set()).update(seen_reads)
    return result


def _kind_at(actor: ActorClass, line: int, col: int) -> str:
    """Resolve a variable-bound send's kind via the actor's send-site table."""
    for site in actor.sends:
        if site.line == line and site.col == col:
            return site.kind
    return ""


class CrossActorRaceRule(Rule):
    """CHR018: field read before a send, blindly rewritten by the reply path."""

    code = "CHR018"
    name = "cross-actor-lost-update"
    description = (
        "An actor reads a field, sends a message, and its own handler for "
        "the receiver's reply plainly overwrites that same field without "
        "reading the current value — the read is stale by the time the "
        "reply lands and intervening writes are lost across the round trip."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        graph = build_actor_graph(project)
        reported: Set[Tuple[str, str, str, str]] = set()
        for sender_name in sorted(graph.actors):
            sender = graph.actors[sender_name]
            pre_send_reads = _reads_before_sends(sender)
            if not pre_send_reads:
                continue
            for kind in sorted(pre_send_reads):
                reads = pre_send_reads[kind]
                for receiver_name in graph.receivers.get(kind, ()):
                    receiver = graph.actors[receiver_name]
                    branch = receiver.handles.get(kind)
                    if branch is None:
                        continue
                    reply_kinds = sorted({s.kind for s in branch.sends if s.kind})
                    for reply in reply_kinds:
                        reply_branch = sender.handles.get(reply)
                        if reply_branch is None:
                            continue
                        for write in reply_branch.writes:
                            if write.attr not in reads or write.reads_old:
                                continue
                            key = (sender_name, write.attr, kind, reply)
                            if key in reported:
                                continue
                            reported.add(key)
                            yield self.finding(
                                sender.module,
                                write.line,
                                write.col,
                                f"{sender_name} reads self.{write.attr} "
                                f"before sending {kind}, and its handler "
                                f"for the {receiver_name} reply {reply} "
                                f"blindly overwrites self.{write.attr} — "
                                "the pre-send read is stale across the "
                                "round trip and concurrent writes are lost",
                            )


def _is_silent_return(body: List[ast.stmt]) -> bool:
    """``return`` / ``return None`` and nothing else: a trace-free drop."""
    if len(body) != 1 or not isinstance(body[0], ast.Return):
        return False
    value = body[0].value
    return value is None or (
        isinstance(value, ast.Constant) and value.value is None
    )


def _pure_state_guard(test: ast.expr, message_param: str, sender_param: str) -> bool:
    """Whether a guard reads actor state and nothing message-dependent."""
    saw_self_attr = False
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id in (message_param, sender_param):
            return False  # content/sender-dependent: a semantic filter
        if isinstance(node, ast.Call):
            func_name = node.func
            if isinstance(func_name, ast.Name) and func_name.id == "isinstance":
                return False  # dispatch, not state
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            saw_self_attr = True
    return saw_self_attr


class SilentDropRule(Rule):
    """CHR019: state guards in on_message that drop messages without a trace."""

    code = "CHR019"
    name = "handler-silent-drop"
    description = (
        "An on_message dispatch path bails out on a pure actor-state guard "
        "(parked/draining/pre-start) with a bare return — every message "
        "kind routed to this actor can arrive in that state and is dropped "
        "with no counter, forward, or log; account for the drop instead."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        graph = build_actor_graph(project)
        for name in sorted(graph.actors):
            actor = graph.actors[name]
            arriving = sorted(
                kind
                for kind in actor.handles
                if name in graph.receivers.get(kind, ())
                and graph.senders.get(kind)
            )
            if not arriving:
                continue  # nothing provably routed here: partial tree
            handler = class_methods(actor.node).get("on_message")
            if handler is None:
                continue
            args = handler.args.args
            sender_param = args[1].arg if len(args) >= 2 else "sender"
            message_param = args[2].arg if len(args) >= 3 else "message"
            for node in ast.walk(handler):
                if not isinstance(node, ast.If):
                    continue
                if not _is_silent_return(node.body):
                    continue
                if not _pure_state_guard(node.test, message_param, sender_param):
                    continue
                shown = ", ".join(arriving[:4])
                if len(arriving) > 4:
                    shown += ", …"
                yield self.finding(
                    actor.module,
                    node.lineno,
                    node.col_offset,
                    f"{name}.on_message drops messages on a state guard "
                    f"with a bare return — {shown} can arrive in this "
                    "state and vanish untraced; count, forward, or log "
                    "the drop",
                )


def _simple_cycles(
    edges: Dict[str, Set[str]], max_len: int = 6
) -> List[Tuple[str, ...]]:
    """Bounded simple-cycle enumeration (canonicalised, deterministic)."""
    cycles: Set[Tuple[str, ...]] = set()

    def canonical(path: Tuple[str, ...]) -> Tuple[str, ...]:
        pivot = min(range(len(path)), key=lambda i: path[i])
        return path[pivot:] + path[:pivot]

    def walk(start: str, node: str, path: Tuple[str, ...]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt == start:
                cycles.add(canonical(path))
            elif nxt not in path and len(path) < max_len:
                walk(start, nxt, path + (nxt,))

    for start in sorted(edges):
        walk(start, start, (start,))
    return sorted(cycles)


class BackpressureCycleRule(Rule):
    """CHR021: stage-graph cycles where every edge's intake can refuse."""

    code = "CHR021"
    name = "backpressure-deadlock"
    description = (
        "A cycle in the actor stage graph where every edge's handler is "
        "limit-guarded and refuses (returns/forwards) instead of consuming "
        "when full — all the bounded buffers can fill simultaneously and "
        "every stage then waits on the next, a backpressure deadlock; at "
        "least one edge of a cycle must always consume (an always-accepted "
        "control kind, like the queue token, breaks the cycle)."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        graph = build_actor_graph(project)
        # adjacency restricted to refusable edges: A -> B when *every* kind
        # A sends to B is handled by a refusable branch (one always-accepted
        # kind on the edge lets the receiver drain and breaks the cycle).
        edge_kinds: Dict[Tuple[str, str], List[str]] = {}
        for sender, receiver, kind in graph.edges():
            edge_kinds.setdefault((sender, receiver), []).append(kind)
        refusable_adj: Dict[str, Set[str]] = {}
        for (sender, receiver), kinds in edge_kinds.items():
            receiver_actor = graph.actors[receiver]
            if all(
                receiver_actor.handles[k].refusable
                for k in kinds
                if k in receiver_actor.handles
            ):
                refusable_adj.setdefault(sender, set()).add(receiver)
        for cycle in _simple_cycles(refusable_adj):
            first = graph.actors[cycle[0]]
            second = cycle[1 % len(cycle)]
            kinds = edge_kinds.get((cycle[0], second), [])
            branch = graph.actors[second].handles.get(kinds[0]) if kinds else None
            site_module = graph.actors[second].module
            line = branch.line if branch else first.line
            col = branch.col if branch else first.col
            ring = " -> ".join(cycle + (cycle[0],))
            yield self.finding(
                site_module,
                line,
                col,
                f"backpressure cycle {ring}: every edge's intake is "
                "limit-guarded and can refuse without consuming — all "
                "buffers full deadlocks the ring; make at least one edge "
                "always consume its control kind",
            )
