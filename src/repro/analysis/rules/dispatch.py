"""CHR011 — dict-request dispatch exhaustiveness for the ``net/`` servers.

CHR002 keeps the *object* protocol (codec registry vs ``on_message``)
honest; the TCP layer speaks a second, stringly-typed protocol of
``{"type": ...}`` request dicts.  This rule closes the gap the ROADMAP
named: using the project model's request-flow graph it cross-checks the
type strings clients **send** (``conn.request({...})``, ``write_frame``,
``_send_oneway``) against the ones server ``handle()``/``_serve()`` methods
**dispatch** (``request["type"] == ...`` comparisons, through module-level
string constants such as ``HELLO_TYPE``), in both directions:

* a request type sent but never dispatched is dropped on the server floor
  (the client hangs until timeout);
* a dispatch branch for a type nothing sends is dead server surface.

Responses are CHR015's job (:mod:`repro.analysis.rules.replies`): this rule
balances *which types* flow, the reply-shape rule balances *what each
reply contains*.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..model import build_model
from ..project import ProjectInfo
from .base import Rule


class RequestDispatchRule(Rule):
    """CHR011: sent request types and handled request types must agree."""

    code = "CHR011"
    name = "request-dispatch-gap"
    description = (
        "Every {'type': ...} request dict a net/ client sends must have a "
        "matching request['type'] dispatch branch in a server handle()/"
        "_serve() method, and every dispatch branch must correspond to a "
        "type some client actually sends.  Both gaps are silent protocol "
        "drift on the TCP surface."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        model = build_model(project)
        if not model.has_request_handlers:
            return  # partial scan without servers: the cross-check is moot
        for kind in sorted(set(model.request_sent) - set(model.request_handled)):
            for site in model.request_sent[kind]:
                yield self.finding(
                    site.module,
                    site.line,
                    site.col,
                    f'request type "{kind}" is sent here but no server '
                    "handle()/_serve() method dispatches it",
                )
        for kind in sorted(set(model.request_handled) - set(model.request_sent)):
            for site in model.request_handled[kind]:
                yield self.finding(
                    site.module,
                    site.line,
                    site.col,
                    f'request type "{kind}" is dispatched here but no client '
                    "ever sends it (dead server surface)",
                )
