"""Rule plugin protocol.

A rule is a class with a stable ``code`` (``CHR001``…), a short ``name``,
and a ``check(project)`` generator yielding :class:`Finding` objects.  Rules
that only need one module at a time override :meth:`check_module`; rules
needing a whole-project view (the protocol-exhaustiveness cross-check)
override :meth:`check` directly.  noqa and baseline filtering happen in the
driver, so rules always report everything they see.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Iterator

from ..findings import Finding
from ..project import ModuleInfo, ProjectInfo


class Rule(ABC):
    """Base class for pluggable lint rules."""

    #: Stable, unique rule code (``CHR`` + three digits).  Codes are part of
    #: the suppression/baseline contract: never reuse a retired code.
    code: ClassVar[str]
    #: Short kebab-case name shown in ``--list-rules``.
    name: ClassVar[str]
    #: One-paragraph description of the invariant the rule enforces.
    description: ClassVar[str]

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        """Yield every violation in the project (pre-noqa, pre-baseline)."""
        for module in project:
            yield from self.check_module(module)

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        """Per-module hook for rules without cross-module state."""
        return iter(())

    def finding(
        self, module: ModuleInfo, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            code=self.code, path=module.relpath, line=line, col=col, message=message
        )


class ModuleRule(Rule, ABC):
    """Convenience base for rules that inspect one module at a time."""

    @abstractmethod
    def check_module(self, module: ModuleInfo) -> Iterator[Finding]: ...
