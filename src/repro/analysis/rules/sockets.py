"""CHR014 — blocking socket reads in runtime/ and net/ must carry a timeout.

The multi-process runtime and the network layer both sit on real kernel
sockets.  A bare ``sock.recv()`` / ``listener.accept()`` with no deadline
hangs forever when the peer is SIGKILLed mid-frame — exactly the situation
the process-chaos suites create on purpose.  Every blocking receive or
accept must therefore run under a deadline: either the enclosing function
sets one (``settimeout``) or the owning class switches the socket to
non-blocking mode at construction (``setblocking(False)`` + selector).

The rule flags attribute calls named ``recv``/``recv_into``/``recvfrom``/
``accept`` in ``runtime/`` and ``net/`` unless the innermost enclosing
function *or* the innermost enclosing class contains a ``settimeout`` or
``setblocking`` call.  Deliberately indefinite waits are annotated with
``# chariots: noqa=CHR014`` naming the invariant that makes them safe.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..findings import Finding
from ..project import ModuleInfo
from .base import ModuleRule

#: Packages whose socket calls are checked.
SOCKET_SCOPED_PACKAGES: Tuple[str, ...] = ("runtime", "net")

#: Attribute calls that block until the peer sends (or connects).
_BLOCKING_READS = frozenset({"recv", "recv_into", "recvfrom", "accept"})

#: Attribute calls that bound (or remove) the wait.
_DEADLINE_CALLS = frozenset({"settimeout", "setblocking"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _contains_deadline(scope: ast.AST) -> bool:
    for call in ast.walk(scope):
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in _DEADLINE_CALLS
        ):
            return True
    return False


class BlockingSocketRule(ModuleRule):
    """CHR014: socket recv/accept in runtime/ and net/ need a deadline."""

    code = "CHR014"
    name = "socket-no-timeout"
    description = (
        "socket recv/recv_into/recvfrom/accept calls in runtime/ and net/ "
        "must run under a deadline (settimeout in the enclosing function, "
        "or setblocking on the owning class): an indefinite wait on a "
        "SIGKILLed peer wedges the whole runtime."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(SOCKET_SCOPED_PACKAGES):
            return
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(module.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        deadline_cache: Dict[ast.AST, bool] = {}
        for call in ast.walk(module.tree):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _BLOCKING_READS
            ):
                continue
            scopes: List[ast.AST] = []
            cursor: ast.AST = call
            func_seen = False
            while cursor in parents:
                cursor = parents[cursor]
                if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not func_seen:  # only the innermost function counts
                        scopes.append(cursor)
                        func_seen = True
                elif isinstance(cursor, ast.ClassDef):
                    scopes.append(cursor)
                    break  # methods of nested classes stop at their class
            guarded = False
            for scope in scopes:
                if scope not in deadline_cache:
                    deadline_cache[scope] = _contains_deadline(scope)
                if deadline_cache[scope]:
                    guarded = True
                    break
            if guarded:
                continue
            yield self.finding(
                module,
                call.lineno,
                call.col_offset,
                f"blocking socket call .{call.func.attr}() without a "
                "deadline; call settimeout() in this function or "
                "setblocking(False) on the owning class",
            )
