"""CHR017 — dead ``# chariots: noqa`` directives.

A suppression that suppresses nothing is worse than noise: it documents an
invariant violation that no longer exists, and it will silently swallow the
*next* finding of that code on that line.  The driver flags every noqa
directive that matched no pre-noqa finding during a full run.

This rule is driver-implemented: deciding whether a directive is dead
requires the findings of *every other rule* before noqa filtering, which a
rule's ``check()`` cannot see.  The class exists so the code participates in
``--list-rules``, ``--select`` validation, and baselines; its own
``check()`` yields nothing, and the check only runs on full (unselected)
runs — under ``--select`` a directive for an unselected rule would look
dead.  A directive that explicitly lists ``CHR017`` is never reported
(that is the intentional opt-out for a directive kept for documentation).
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Set

from ..findings import Finding
from ..project import ProjectInfo
from .base import Rule


class DeadNoqaRule(Rule):
    """CHR017: every noqa directive must suppress at least one finding."""

    code = "CHR017"
    name = "dead-noqa"
    description = (
        "A '# chariots: noqa' directive that suppresses no current finding "
        "is dead: drop it, or it will silently swallow the next real "
        "finding on that line.  Checked by the driver on full runs only "
        "(a --select subset can't tell dead from out-of-scope); a "
        "directive listing CHR017 itself is exempt."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        return iter(())  # driver-implemented; see audit_directives()

    def audit_directives(
        self, project: ProjectInfo, matched: Mapping[str, Set[int]]
    ) -> List[Finding]:
        """Findings for directives that suppressed nothing.

        ``matched`` maps module relpath to the 1-based lines whose noqa
        directive suppressed at least one finding this run.
        """
        findings: List[Finding] = []
        for module in project:
            used = matched.get(module.relpath, set())
            for line, codes in sorted(module.noqa.items()):
                if line in used:
                    continue
                if codes is not None and self.code in codes:
                    continue
                label = "all rules" if codes is None else ", ".join(sorted(codes))
                findings.append(
                    self.finding(
                        module,
                        line,
                        0,
                        f"noqa directive ({label}) suppresses nothing — "
                        "drop it before it hides the next real finding",
                    )
                )
        return findings
