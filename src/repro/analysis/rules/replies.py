"""CHR015 — reply-shape exhaustiveness for the ``net/`` RPC surface.

CHR011 balances the *request* direction of the dict protocol; this rule
closes the loop on the *reply* direction, per LogPlayer's request/response
framing: every exchange is a balanced pair, and the reply's shape is part of
the contract.  Using the project model's reply-shape extraction it checks
both ends of every request type:

* a client subscript read (``response["results"]``) of a key **no** handler
  branch for that type emits is a latent ``KeyError`` — the misspelled or
  dropped key only surfaces when that branch is actually exercised;
* a key a handler branch emits that **no** client call site reads (neither
  subscript nor tolerant ``.get``) is dead reply surface — bytes shipped on
  every response that nothing consumes, and shape drift nothing would catch.

``type`` and ``error`` are framing: ``type`` names the reply, ``error``
rides the generic error fallback, and both are consumed by connection-level
plumbing rather than per-call-site code.  Branches whose reply is not a dict
literal are opaque and skipped (the shape can't be known statically), as are
types never sent by a scanned client (partial scans must stay silent).
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..model import build_model
from ..project import ProjectInfo
from .base import Rule

#: Keys owned by the framing layer, not by individual call sites.
FRAMING_KEYS = frozenset({"type", "error"})


class ReplyShapeRule(Rule):
    """CHR015: emitted reply keys and client-read reply keys must agree."""

    code = "CHR015"
    name = "reply-shape"
    description = (
        "For every {'type': ...} request the net/ layer exchanges, the reply "
        "keys each client call site reads must be emitted by some server "
        "branch for that type (a missing key is a latent KeyError), and "
        "every non-framing key a branch emits must be read by some client "
        "(unread keys are dead reply surface).  'type'/'error' are framing "
        "and exempt; non-literal replies are opaque and skipped."
    )

    def check(self, project: ProjectInfo) -> Iterator[Finding]:
        model = build_model(project)
        if not model.has_request_handlers:
            return  # partial scan without servers: no shapes to check
        for kind in sorted(set(model.reply_reads) & set(model.reply_keys)):
            if kind in model.reply_opaque:
                continue
            emitted = set(model.reply_keys[kind]) | model.reply_generic
            for key in sorted(set(model.reply_reads[kind]) - emitted):
                for site in model.reply_reads[kind][key]:
                    yield self.finding(
                        site.module,
                        site.line,
                        site.col,
                        f'reply key "{key}" of request "{kind}" is read here '
                        "but no server branch for that type emits it — a "
                        "KeyError once this path runs",
                    )
        for kind in sorted(model.reply_keys):
            if kind in model.reply_opaque or kind not in model.request_sent:
                continue
            read = set(model.reply_reads.get(kind, {})) | model.reply_soft_reads.get(
                kind, set()
            )
            for key in sorted(set(model.reply_keys[kind]) - read - FRAMING_KEYS):
                site = model.reply_keys[kind][key][0]
                yield self.finding(
                    site.module,
                    site.line,
                    site.col,
                    f'reply key "{key}" of request "{kind}" is emitted here '
                    "but no client call site reads it (dead reply surface)",
                )
