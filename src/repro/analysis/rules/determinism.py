"""CHR003/CHR004/CHR005 — determinism in sim-reachable code.

The deterministic runtimes replay identical histories from a seed; the
pipeline ≡ abstract equivalence tests and the seeded chaos soaks depend on
it.  One ``time.time()`` or bare ``random.random()`` inside an actor, a
stage, or the chaos layer silently turns every such test flaky.  These
rules scan the packages reachable from ``SimRuntime`` (``sim``,
``chariots``, ``flstore``, ``chaos``, ``core``, ``runtime``) for the three
ways nondeterminism sneaks in:

* **CHR003** — wall-clock reads (``time.time``, ``datetime.now``, …).
  Simulated time comes from ``Actor.now`` / the event loop, never the OS.
* **CHR004** — unseeded randomness: module-level ``random.*`` functions
  (shared global RNG), ``random.Random()`` with no seed, ``os.urandom``,
  ``uuid.uuid1/uuid4``, ``secrets``.  ``random.Random(seed)`` is the
  sanctioned pattern.
* **CHR005** — iteration-order hazards: iterating a set expression
  directly, or ``os.listdir`` outside ``sorted(...)``.  Set iteration order
  depends on insertion history and hash seeding; replay needs sorted order.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..findings import Finding
from ..project import ModuleInfo, qualified_name
from .base import ModuleRule

#: Packages reachable from the deterministic runtimes.  ``net`` (wall-clock
#: asyncio deployment), ``bench`` (measures real time), ``apps``/``baseline``
#: and the CLI are intentionally out of scope.
SIM_SCOPED_PACKAGES: Tuple[str, ...] = (
    "sim",
    "chariots",
    "flstore",
    "chaos",
    "core",
    "runtime",
)

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Module-level random functions sharing the process-global RNG.
_GLOBAL_RANDOM_CALLS = {
    f"random.{fn}"
    for fn in (
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "getrandbits",
        "gauss",
        "expovariate",
        "betavariate",
        "normalvariate",
        "seed",
    )
}

_ENTROPY_CALLS = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.SystemRandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
}


def _in_scope(module: ModuleInfo) -> bool:
    return module.in_package(SIM_SCOPED_PACKAGES)


class WallClockRule(ModuleRule):
    """CHR003: no wall-clock reads in sim-reachable code."""

    code = "CHR003"
    name = "determinism-wallclock"
    description = (
        "Code reachable from the deterministic runtimes (sim/, chariots/, "
        "flstore/, chaos/, core/, runtime/) must not read the OS clock "
        "(time.time, time.monotonic, perf_counter, datetime.now, ...); "
        "simulated time comes from Actor.now / the event loop."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, module.imports)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {name}() in sim-reachable code; use "
                    "the runtime clock (Actor.now) instead",
                )


class UnseededRandomRule(ModuleRule):
    """CHR004: randomness must flow from an explicit seed."""

    code = "CHR004"
    name = "determinism-randomness"
    description = (
        "Sim-reachable code must not use the process-global random module "
        "functions, an unseeded random.Random(), os.urandom, uuid.uuid1/4, "
        "or secrets; derive a random.Random(seed) from configuration so "
        "replays are exact."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, module.imports)
            if name is None:
                continue
            if name in _GLOBAL_RANDOM_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"process-global {name}() in sim-reachable code; use an "
                    "explicitly seeded random.Random instance",
                )
            elif name in _ENTROPY_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"OS-entropy call {name}() in sim-reachable code; "
                    "derive values from the configured seed",
                )
            elif name == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "random.Random() constructed without a seed in "
                    "sim-reachable code; pass an explicit seed",
                )


def _is_set_expression(node: ast.AST, module: ModuleInfo) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = qualified_name(node.func, module.imports)
        if name == "set" or name == "frozenset":
            return True
        if name in ("set.union", "set.intersection", "set.difference"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # ``seen | new`` etc. — only flag when an operand is itself a
        # visible set expression; plain names stay out (too noisy).
        return _is_set_expression(node.left, module) or _is_set_expression(
            node.right, module
        )
    return False


class IterationOrderRule(ModuleRule):
    """CHR005: no order-unstable iteration in sim-reachable code."""

    code = "CHR005"
    name = "determinism-iteration-order"
    description = (
        "Sim-reachable code must not iterate directly over a set expression "
        "or an unsorted os.listdir(): iteration order then depends on hash "
        "seeding / filesystem order and replays diverge.  Wrap the iterable "
        "in sorted(...)."
    )

    def _sorted_wrapped(self, parents: Dict[ast.AST, ast.AST], node: ast.AST) -> bool:
        parent = parents.get(node)
        if isinstance(parent, ast.Call):
            name: Optional[str] = None
            if isinstance(parent.func, ast.Name):
                name = parent.func.id
            return name in ("sorted", "len", "set", "frozenset", "min", "max", "sum")
        return False

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(module.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        iter_sites: Set[Tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            iterables = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if _is_set_expression(iterable, module):
                    site = (iterable.lineno, iterable.col_offset)
                    if site not in iter_sites:
                        iter_sites.add(site)
                        yield self.finding(
                            module,
                            iterable.lineno,
                            iterable.col_offset,
                            "iteration over a set expression in sim-reachable "
                            "code; wrap in sorted(...) for stable order",
                        )
            if isinstance(node, ast.Call):
                name = qualified_name(node.func, module.imports)
                if name == "os.listdir" and not self._sorted_wrapped(parents, node):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "os.listdir() without sorted(...) in sim-reachable "
                        "code; directory order is filesystem-dependent",
                    )
