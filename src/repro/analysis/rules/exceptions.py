"""CHR013 — exception swallowing in pipeline stages.

A stage that catches a broad exception and drops it on the floor turns a
record loss into silence: the pipeline keeps running, the abstract solution
diverges, and nothing in the log explains why.  In the pipeline packages
(``chariots/``, ``flstore/``, ``runtime/``) the rule flags any bare
``except:`` or ``except Exception/BaseException:`` whose body neither

* re-raises (``raise`` anywhere in the handler), nor
* uses the bound exception (``except Exception as exc:`` followed by any
  reference to ``exc`` — returning it in an error reply, attaching it to a
  journal entry), nor
* calls something that records it (a callee whose name contains ``log``,
  ``journal``, ``warn``, ``debug``, ``error``, ``exception``, ``record`` or
  ``print``), nor
* calls a same-class helper that transitively (within
  :data:`~repro.analysis.dataflow.EXPAND_DEPTH` hops of the intra-class call
  graph, cycle-safe) re-raises or records — an innocuously named
  ``self._teardown()`` counts as handling when ``_teardown`` journals two
  helpers down.

Narrow excepts (``except KeyError:``) are out of scope — catching a
specific, anticipated error is handling, not swallowing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..dataflow import (
    EXPAND_DEPTH,
    AnyFunc,
    class_methods,
    reachable_within,
    self_call_graph,
)
from ..findings import Finding
from ..project import ModuleInfo
from .base import ModuleRule

PIPELINE_PACKAGES: Tuple[str, ...] = ("chariots", "flstore", "runtime")

_BROAD = frozenset({"Exception", "BaseException"})
_RECORDING_HINTS = (
    "log",
    "journal",
    "warn",
    "debug",
    "error",
    "exception",
    "record",
    "print",
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None
        )
        if name in _BROAD:
            return True
    return False


def _records_locally(func: AnyFunc) -> bool:
    """Whether a method body re-raises or calls a recording-named function."""
    for sub in ast.walk(func):
        if isinstance(sub, ast.Raise):
            return True
        if isinstance(sub, ast.Call):
            callee = sub.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else ""
            )
            if any(hint in name.lower() for hint in _RECORDING_HINTS):
                return True
    return False


def _recording_helpers(cls: ast.ClassDef) -> Set[str]:
    """Same-class methods that re-raise or record within EXPAND_DEPTH hops.

    A handler may delegate cleanup to ``self._teardown()``; if anything on
    ``_teardown``'s bounded call chain raises or records, calling it counts
    as handling the exception.
    """
    methods = class_methods(cls)
    graph = self_call_graph(cls)
    local = {name: _records_locally(func) for name, func in methods.items()}
    return {
        name
        for name in methods
        if any(local[m] for m in reachable_within(graph, [name], EXPAND_DEPTH))
    }


def _handles(handler: ast.ExceptHandler, helpers: Set[str]) -> bool:
    """Whether the handler body does something with the exception."""
    for node in handler.body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(sub, ast.Name)
                and sub.id == handler.name
            ):
                return True
            if isinstance(sub, ast.Call):
                callee = sub.func
                name = callee.attr if isinstance(callee, ast.Attribute) else (
                    callee.id if isinstance(callee, ast.Name) else ""
                )
                if any(hint in name.lower() for hint in _RECORDING_HINTS):
                    return True
                if (
                    isinstance(callee, ast.Attribute)
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id == "self"
                    and name in helpers
                ):
                    return True
    return False


class SwallowedExceptionRule(ModuleRule):
    """CHR013: broad excepts in pipeline stages must not drop the error."""

    code = "CHR013"
    name = "swallowed-exception"
    description = (
        "A bare or Exception/BaseException handler in chariots/, flstore/ or "
        "runtime/ must re-raise, use the bound exception (error reply, "
        "journal entry), or call a logging/journaling function — directly or "
        "through a same-class helper chain; silently dropping a record's "
        "failure breaks pipeline-abstract equivalence with no trace."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(PIPELINE_PACKAGES):
            return
        # Nearest enclosing class per node, so handlers can count same-class
        # helper chains (computed lazily, once per class) as recording.
        owners: Dict[ast.ExceptHandler, Optional[ast.ClassDef]] = {}
        helper_cache: Dict[ast.ClassDef, Set[str]] = {}

        def collect(node: ast.AST, owner: Optional[ast.ClassDef]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    collect(child, child)
                    continue
                if isinstance(child, ast.ExceptHandler):
                    owners[child] = owner
                collect(child, owner)

        collect(module.tree, None)
        for node, owner in owners.items():
            if not _is_broad(node):
                continue
            helpers: Set[str] = set()
            if owner is not None:
                if owner not in helper_cache:
                    helper_cache[owner] = _recording_helpers(owner)
                helpers = helper_cache[owner]
            if _handles(node, helpers):
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                "broad exception handler silently swallows the error — "
                "re-raise, return/journal the exception, or log it",
            )
