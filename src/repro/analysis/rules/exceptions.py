"""CHR013 — exception swallowing in pipeline stages.

A stage that catches a broad exception and drops it on the floor turns a
record loss into silence: the pipeline keeps running, the abstract solution
diverges, and nothing in the log explains why.  In the pipeline packages
(``chariots/``, ``flstore/``, ``runtime/``) the rule flags any bare
``except:`` or ``except Exception/BaseException:`` whose body neither

* re-raises (``raise`` anywhere in the handler), nor
* uses the bound exception (``except Exception as exc:`` followed by any
  reference to ``exc`` — returning it in an error reply, attaching it to a
  journal entry), nor
* calls something that records it (a callee whose name contains ``log``,
  ``journal``, ``warn``, ``debug``, ``error``, ``exception``, ``record`` or
  ``print``).

Narrow excepts (``except KeyError:``) are out of scope — catching a
specific, anticipated error is handling, not swallowing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..findings import Finding
from ..project import ModuleInfo
from .base import ModuleRule

PIPELINE_PACKAGES: Tuple[str, ...] = ("chariots", "flstore", "runtime")

_BROAD = frozenset({"Exception", "BaseException"})
_RECORDING_HINTS = (
    "log",
    "journal",
    "warn",
    "debug",
    "error",
    "exception",
    "record",
    "print",
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None
        )
        if name in _BROAD:
            return True
    return False


def _handles(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does something with the exception."""
    for node in handler.body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(sub, ast.Name)
                and sub.id == handler.name
            ):
                return True
            if isinstance(sub, ast.Call):
                callee = sub.func
                name = callee.attr if isinstance(callee, ast.Attribute) else (
                    callee.id if isinstance(callee, ast.Name) else ""
                )
                if any(hint in name.lower() for hint in _RECORDING_HINTS):
                    return True
    return False


class SwallowedExceptionRule(ModuleRule):
    """CHR013: broad excepts in pipeline stages must not drop the error."""

    code = "CHR013"
    name = "swallowed-exception"
    description = (
        "A bare or Exception/BaseException handler in chariots/, flstore/ or "
        "runtime/ must re-raise, use the bound exception (error reply, "
        "journal entry), or call a logging/journaling function — silently "
        "dropping a record's failure breaks pipeline-abstract equivalence "
        "with no trace."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(PIPELINE_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _handles(node):
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                "broad exception handler silently swallows the error — "
                "re-raise, return/journal the exception, or log it",
            )
