"""CHR010 — await-point atomicity in the asyncio layer.

The in-process runtimes are single-threaded per actor turn, but the ``net/``
deployment interleaves coroutines at every ``await``.  A coroutine that
reads an instance attribute, awaits, and then writes the same attribute has
published a stale-read window: a concurrent coroutine can observe or mutate
the attribute mid-sequence, which silently breaks the pipeline ≡ abstract
equivalence the paper's correctness argument rests on (§6.1).

The rule walks each ``async def`` in ``net/`` in execution order (splicing
same-class ``self.m()`` helpers up to :data:`~repro.analysis.dataflow.
EXPAND_DEPTH` levels deep, cycle-safe) and fires when an unlocked read of
``self.<attr>`` is followed by an ``await`` and then an unlocked write of
the same attribute — even when the read, the await, and the write live in
three different helpers.  Escapes, in preference order:

* restructure to write-before-await (capture-and-null:
  ``obj, self.obj = self.obj, None`` then await on the local);
* hold a lock — events inside ``async with self.<...lock...>`` are exempt;
* name the method ``*_locked`` to document a caller-holds-the-lock
  contract (the convention ``net/client.py`` already uses).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..dataflow import (
    AWAIT,
    EXPAND_DEPTH,
    READ,
    WRITE,
    Event,
    class_methods,
    expand_events,
    method_events,
)
from ..findings import Finding
from ..project import ModuleInfo
from .base import ModuleRule

#: Only the real-asyncio layer interleaves at awaits; the deterministic
#: runtimes deliver one message per actor turn.
ASYNC_PACKAGES: Tuple[str, ...] = ("net",)


class AwaitAtomicityRule(ModuleRule):
    """CHR010: no read-await-write of the same attribute without a lock."""

    code = "CHR010"
    name = "await-atomicity"
    description = (
        "An async method in net/ must not read an instance attribute, await, "
        "and then write the same attribute outside a lock: the await opens a "
        "stale-read window for every other coroutine on the loop.  Write "
        "before awaiting (capture-and-null), hold a lock (async with "
        "self._lock), or name the method *_locked to document the contract."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(ASYNC_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = class_methods(cls)
        if not methods:
            return
        summaries: Dict[str, List[Event]] = {
            name: method_events(func, methods) for name, func in methods.items()
        }
        for name, func in sorted(methods.items()):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            if name.endswith("_locked"):
                continue  # caller-holds-the-lock contract
            events = expand_events(
                summaries[name],
                summaries,
                depth=EXPAND_DEPTH,
                exclude=frozenset({name}),
            )
            yield from self._scan(module, cls.name, name, events)

    def _scan(
        self,
        module: ModuleInfo,
        cls_name: str,
        method: str,
        events: List[Event],
    ) -> Iterator[Finding]:
        # First unlocked read position per attr, await positions, and the
        # first unlocked write after a (read, await) prefix.
        first_read: Dict[str, int] = {}
        await_positions: List[int] = []
        reported: Set[str] = set()
        for pos, event in enumerate(events):
            if event.kind == AWAIT:
                await_positions.append(pos)
            elif event.kind == READ and not event.locked:
                first_read.setdefault(event.attr, pos)
            elif event.kind == WRITE and not event.locked:
                read_pos = first_read.get(event.attr)
                if read_pos is None or event.attr in reported:
                    continue
                if any(read_pos < a < pos for a in await_positions):
                    reported.add(event.attr)
                    yield self.finding(
                        module,
                        event.line,
                        event.col,
                        f"self.{event.attr} is read before and written after "
                        f"an await in {cls_name}.{method}() without a lock — "
                        "concurrent coroutines can interleave in the window; "
                        "write before awaiting or guard with a lock",
                    )
