"""CHR016 — supervisor-protocol safety in the multi-process runtime.

PR 7's output-commit protocol has two invariants the type system cannot
see, mined from ``runtime/multiproc.py``:

* **Sequenced emissions must be ackable.**  A method that bumps a sequence
  counter (``slot.delivery_seq += 1``, ``self._emission += 1``) and appends
  the frame to a retransmission buffer (an attribute named ``*unacked*``,
  ``*retransmit*`` or ``*held*``) is the 0xC6 sequenced-emission path.  The
  class must also trim that buffer somewhere — a ``popleft``/``pop``/
  ``remove``/``clear`` call or a reset assignment outside ``__init__``
  (``held, self._held = self._held, []``) — or every acked frame is retained
  forever and replay-after-respawn re-delivers the whole history.
* **Detected deaths must reach a respawn-or-park terminal.**  A method that
  reads ``proc.exitcode`` is a SIGKILL-detection branch.  Within
  :data:`~repro.analysis.dataflow.EXPAND_DEPTH` hops of the intra-class
  call graph it must reach a terminal: one of the supervision API's own
  recovery entry points (:data:`TERMINAL_METHODS` — ``drain_worker``,
  ``restart_worker``, matched by exact name), a call whose name says
  respawn/restart/replace/spawn/park (``_mark_worker_down`` counts), or a
  write to a ``*failed*``/``*parked*`` flag.  A detection branch that reaches
  neither observes the corpse and does nothing — the worker is dead, its
  frames buffer forever, and no supervisor sweep will ever revive it.

Scope is ``runtime/`` only: the invariants are properties of the supervised
process runtime, not of the in-process substrates.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..dataflow import EXPAND_DEPTH, AnyFunc, class_methods, reachable_within, self_call_graph
from ..findings import Finding
from ..model import terminal_name
from ..project import ModuleInfo
from .base import ModuleRule

SUPERVISED_PACKAGES: Tuple[str, ...] = ("runtime",)

_BUFFER_RE = re.compile(r"unacked|retransmit|held")
_SEQ_RE = re.compile(r"seq|emission")
_TERMINAL_CALL_RE = re.compile(r"respawn|restart|replace|spawn|park|mark\w*down")
_TERMINAL_FLAG_RE = re.compile(r"failed|parked")
_TRIM_CALLS = frozenset({"popleft", "pop", "remove", "clear"})

#: The supervision API's own recovery entry points, recognised as terminals
#: by exact name rather than via :data:`_TERMINAL_CALL_RE`.  These are the
#: public drain/restart operations of ``runtime/multiproc.py``; pinning them
#: here means renaming one surfaces as a lint-fixture failure instead of the
#: heuristic silently ceasing to recognise the call.
TERMINAL_METHODS = frozenset({"drain_worker", "restart_worker"})


def _assign_target_names(stmt: ast.stmt) -> List[str]:
    """Terminal names of everything a statement assigns to (tuples unpacked)."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    names: List[str] = []
    for target in targets:
        elements = (
            list(target.elts)
            if isinstance(target, (ast.Tuple, ast.List))
            else [target]
        )
        for element in elements:
            name = terminal_name(element)
            if name is not None:
                names.append(name)
    return names


def _sequenced_buffers(func: AnyFunc) -> Dict[str, Tuple[int, int]]:
    """Buffer attrs this method appends to alongside a sequence bump."""
    bumps_seq = any(
        isinstance(node, ast.AugAssign)
        and isinstance(node.target, ast.Attribute)
        and _SEQ_RE.search(node.target.attr)
        for node in ast.walk(func)
    )
    if not bumps_seq:
        return {}
    buffers: Dict[str, Tuple[int, int]] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "appendleft")
        ):
            name = terminal_name(node.func.value)
            if name is not None and _BUFFER_RE.search(name):
                buffers.setdefault(name, (node.lineno, node.col_offset))
    return buffers


def _trimmed_buffers(cls: ast.ClassDef) -> Set[str]:
    """Buffer names the class trims or resets (``__init__`` init excluded)."""
    trimmed: Set[str] = set()
    for method in class_methods(cls).values():
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TRIM_CALLS
            ):
                name = terminal_name(node.func.value)
                if name is not None and _BUFFER_RE.search(name):
                    trimmed.add(name)
            elif method.name != "__init__" and isinstance(
                node, (ast.Assign, ast.AnnAssign)
            ):
                for name in _assign_target_names(node):
                    if _BUFFER_RE.search(name):
                        trimmed.add(name)
    return trimmed


def _reads_exitcode(func: AnyFunc) -> Optional[ast.Attribute]:
    """The first ``<x>.exitcode`` read in a method body, if any."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "exitcode"
            and isinstance(node.ctx, ast.Load)
        ):
            return node
    return None


def _has_terminal(func: AnyFunc) -> bool:
    """Whether a method body respawns, parks, or flags a failure."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name is not None and (
                name in TERMINAL_METHODS
                or _TERMINAL_CALL_RE.search(name.lower())
            ):
                return True
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            if _TERMINAL_FLAG_RE.search(node.attr):
                return True
    return False


class SupervisorProtocolRule(ModuleRule):
    """CHR016: sequenced emissions get trimmed; detected deaths get handled."""

    code = "CHR016"
    name = "supervisor-protocol"
    description = (
        "In runtime/, a method that bumps a sequence counter and appends to "
        "a retransmission buffer (*unacked*/*retransmit*/*held*) requires an "
        "ack/trim path in the same class (pop/clear or a reset outside "
        "__init__), and a method that reads proc.exitcode (SIGKILL "
        "detection) must reach a respawn-or-park terminal within the "
        "bounded intra-class call graph — otherwise dead workers are "
        "observed but never recovered."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(SUPERVISED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = class_methods(cls)
        if not methods:
            return
        trimmed: Optional[Set[str]] = None  # computed lazily, once per class
        graph = None
        terminal_methods: Optional[Set[str]] = None
        for name, func in sorted(methods.items()):
            for buffer, (line, col) in sorted(_sequenced_buffers(func).items()):
                if trimmed is None:
                    trimmed = _trimmed_buffers(cls)
                if buffer not in trimmed:
                    yield self.finding(
                        module,
                        line,
                        col,
                        f"{cls.name}.{name}() appends sequenced frames to "
                        f"{buffer!r} but no method of {cls.name} ever trims "
                        "or resets it — acked frames are retained forever "
                        "and every respawn replays the full history",
                    )
            exit_read = _reads_exitcode(func)
            if exit_read is None:
                continue
            if graph is None:
                graph = self_call_graph(cls)
                terminal_methods = {
                    m for m, f in methods.items() if _has_terminal(f)
                }
            assert terminal_methods is not None
            reachable = reachable_within(graph, [name], EXPAND_DEPTH)
            if not (reachable & terminal_methods):
                yield self.finding(
                    module,
                    exit_read.lineno,
                    exit_read.col_offset,
                    f"{cls.name}.{name}() detects a dead worker via "
                    ".exitcode but reaches no respawn-or-park terminal "
                    f"within {EXPAND_DEPTH} call hops — the corpse is "
                    "observed and then ignored",
                )
