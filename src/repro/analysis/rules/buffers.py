"""CHR009 — unbounded inter-stage buffers.

Every pipeline stage keeps pending work in ``list``/``deque`` instance
buffers (batcher drafts, sender retransmission windows, queue deferrals).
A buffer appended to on the ``on_message`` hot path with no high-water mark
grows without bound the moment a downstream stage slows — the failure mode
log-structured stores guard with explicit watermarks.  The rule flags any
append/extend on such a buffer in a method transitively reachable from
``on_message`` unless the class enforces a bound or declares one:

* a ``len(self.<buffer>...)`` comparison anywhere in the class counts as an
  enforced high-water check;
* ``deque(maxlen=...)`` buffers are bounded by construction;
* ``# chariots: bounded-by=<invariant>`` on the initialising assignment or
  the appending line declares an external bound by name (e.g. a buffer
  drained on every token visit is bounded by token circulation).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..dataflow import class_methods, reachable_from, self_call_graph
from ..findings import Finding
from ..project import ModuleInfo
from .base import ModuleRule

#: Packages whose actor classes are pipeline stages.
STAGE_PACKAGES: Tuple[str, ...] = ("chariots", "flstore", "runtime")

_GROW_METHODS = frozenset({"append", "extend", "appendleft", "insert"})


def _unbounded_list_value(node: ast.expr) -> bool:
    """``[]`` / ``list()`` / ``deque()`` without maxlen — an unbounded buffer."""
    if isinstance(node, ast.List) and not node.elts:
        return True
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        if name == "list" and not node.args:
            return True
        if name == "deque":
            return not any(kw.arg == "maxlen" for kw in node.keywords)
    return False


def _dict_of_lists_value(node: ast.expr) -> bool:
    """``{k: [] for ...}`` or ``{...: []}`` — per-peer unbounded buffers."""
    if isinstance(node, ast.DictComp):
        return _unbounded_list_value(node.value)
    if isinstance(node, ast.Dict):
        return any(_unbounded_list_value(v) for v in node.values)
    return False


def _buffer_attrs(init: ast.AST) -> Dict[str, int]:
    """``self.<attr>`` buffers initialised in ``__init__`` -> init line."""
    buffers: Dict[str, int] = {}
    for node in ast.walk(init):
        value: ast.expr
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        if not (_unbounded_list_value(value) or _dict_of_lists_value(value)):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                buffers[target.attr] = node.lineno
    return buffers


def _self_buffer_of(node: ast.expr) -> str:
    """The buffer attr behind ``self.X`` or ``self.X[...]``, else ``""``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _guarded_attrs(cls: ast.ClassDef) -> Set[str]:
    """Buffer attrs appearing under ``len(...)`` inside any comparison."""
    guarded: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Compare):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "len"
                and sub.args
            ):
                attr = _self_buffer_of(sub.args[0])
                if attr:
                    guarded.add(attr)
    return guarded


class UnboundedBufferRule(ModuleRule):
    """CHR009: stage buffers need an enforced or declared high-water mark."""

    code = "CHR009"
    name = "unbounded-stage-buffer"
    description = (
        "A list/deque instance buffer appended to in a method reachable from "
        "on_message must have an enforced high-water mark (a len() comparison "
        "in the class), a deque maxlen, or a '# chariots: bounded-by=...' "
        "declaration naming the external invariant that bounds it."
    )

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(STAGE_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = class_methods(cls)
        if "on_message" not in methods or "__init__" not in methods:
            return
        buffers = _buffer_attrs(methods["__init__"])
        if not buffers:
            return
        guarded = _guarded_attrs(cls)
        hot_methods = reachable_from(self_call_graph(cls), ["on_message"])
        seen: Set[Tuple[str, int]] = set()
        for method_name in sorted(hot_methods):
            func = methods[method_name]
            for call in ast.walk(func):
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _GROW_METHODS
                ):
                    continue
                attr = _self_buffer_of(call.func.value)
                if not attr or attr not in buffers:
                    continue
                if attr in guarded:
                    continue
                if call.lineno in module.bounded or buffers[attr] in module.bounded:
                    continue
                key = (attr, call.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    module,
                    call.lineno,
                    call.col_offset,
                    f"buffer self.{attr} of {cls.name} grows in "
                    f"{method_name}() (reachable from on_message) without a "
                    "high-water mark; enforce a len() bound or declare "
                    "'# chariots: bounded-by=<invariant>'",
                )
