"""Whole-project model: the message-flow graph every cross-file rule shares.

PR 3's rules each re-walked the ASTs they needed.  This module centralises
the expensive whole-project extraction into one memoised
:class:`ProjectModel` so the protocol rules (CHR001/CHR002), the new
concurrency/flow rules (CHR009–CHR013) and the ``--graph`` dump all read the
same facts:

* **message classes** — public dataclasses in ``*/messages.py`` modules;
* **codec registry** — the ``_MESSAGE_TYPES`` / ``_BY_NAME`` / ``_register``
  entries in the codec module;
* **dispatch sites** — ``isinstance`` checks inside ``on_message`` handlers;
* **construction sites** — every ``SomeMessage(...)`` call in the tree;
* **dict-request flow** — the ``{"type": ...}`` request surface of the
  ``net/`` layer: which type strings clients send and which ones server
  ``handle()``/``_serve()`` methods dispatch on;
* **reply shapes** — per request-type branch in a handler, the keys of every
  reply dict literal it returns (or ships via ``write_frame``), and per
  client call site, the reply keys the caller actually reads — subscripts
  (``response["results"]``, a ``KeyError`` if the server drops the key) kept
  separate from tolerant ``response.get(...)`` reads.  CHR015 checks the two
  ends against each other.

The model is built once per scan and cached on
:attr:`ProjectInfo.model_cache`; rules obtain it via :func:`build_model`.
Everything here is pure ``ast`` — the scanned code is never imported.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from .project import ModuleInfo, ProjectInfo

_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")

#: Terminal callee names treated as "this call ships a request dict".
#: ``conn.request({...})`` / ``self._request(conn, {...})`` are the client
#: RPC entry points; ``write_frame`` / ``_send_oneway`` are the fire-and-
#: forget paths (gossip, index pump).
SEND_FUNCS = frozenset({"request", "_request", "write_frame", "_send_oneway"})

#: Method names whose bodies dispatch incoming request dicts.
HANDLER_METHODS = frozenset({"handle", "_serve"})

#: Callees that read one reply frame off a connection; an assignment from
#: one of these inside a function that sends exactly one request type is
#: that type's reply (the manual send-then-read pattern hello uses).
READ_FUNCS = frozenset({"read_frame", "read_frame_fmt"})


def terminal_name(node: ast.AST) -> Optional[str]:
    """``cmsg.DraftBatch`` -> ``DraftBatch``; ``DraftBatch`` -> itself."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_dataclass_decorated(node: ast.ClassDef) -> bool:
    """Whether the class carries a ``@dataclass`` decorator (any spelling)."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if terminal_name(target) == "dataclass":
            return True
    return False


def field_count(node: ast.ClassDef) -> int:
    """Number of public dataclass fields declared directly on the class."""
    count = 0
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if isinstance(target, ast.Name) and not target.id.startswith("_"):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" not in annotation:
                count += 1
    return count


def annotation_names(node: ast.ClassDef) -> Set[str]:
    """Every identifier appearing in the class's field annotations."""
    names: Set[str] = set()
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        for sub in ast.walk(stmt.annotation):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                # Forward references: "Record" inside a string annotation.
                if sub.value and set(sub.value) <= _IDENT_CHARS:
                    names.add(sub.value)
    return names


@dataclass(slots=True)
class Site:
    """One source location contributing an edge to the flow graph."""

    module: ModuleInfo
    line: int
    col: int


@dataclass(slots=True)
class MessageClass:
    """A public dataclass found in a ``*/messages.py`` module."""

    name: str
    module: ModuleInfo
    line: int
    col: int
    fields: int
    annotation_names: Set[str]


@dataclass(slots=True)
class RegistryEntry:
    """One codec registration (``_MESSAGE_TYPES`` / ``_BY_NAME`` / ``_register``)."""

    module: ModuleInfo
    name: str
    line: int
    col: int


@dataclass(slots=True)
class ProjectModel:
    """The shared cross-module view rules and ``--graph`` consume."""

    message_classes: Dict[str, MessageClass] = field(default_factory=dict)
    registry: List[RegistryEntry] = field(default_factory=list)
    all_class_names: Set[str] = field(default_factory=set)
    #: message name -> ``isinstance`` dispatch sites inside ``on_message``.
    dispatched: Dict[str, List[Site]] = field(default_factory=dict)
    #: class name -> call sites constructing it (message/registered names only).
    constructions: Dict[str, List[Site]] = field(default_factory=dict)
    #: request ``"type"`` string -> compare sites in ``handle()``/``_serve()``.
    request_handled: Dict[str, List[Site]] = field(default_factory=dict)
    #: request ``"type"`` string -> client send sites.
    request_sent: Dict[str, List[Site]] = field(default_factory=dict)
    #: whether the scanned tree contains any request-handler method at all
    #: (partial scans without servers must not trip the flow rules).
    has_request_handlers: bool = False
    #: request type -> reply key -> handler emit sites (dict literals only).
    reply_keys: Dict[str, Dict[str, List[Site]]] = field(default_factory=dict)
    #: reply keys emitted outside any request-type branch (error fallbacks);
    #: these apply to every request type.
    reply_generic: Set[str] = field(default_factory=set)
    #: request types whose reply shape can't be known statically (a handler
    #: branch returns something other than a dict literal).
    reply_opaque: Set[str] = field(default_factory=set)
    #: request type -> reply key -> client subscript-read sites (KeyError on
    #: a missing key).
    reply_reads: Dict[str, Dict[str, List[Site]]] = field(default_factory=dict)
    #: request type -> reply keys read tolerantly via ``.get(...)``.
    reply_soft_reads: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def registered_names(self) -> Set[str]:
        return {entry.name for entry in self.registry}

    @property
    def embedded_annotation_names(self) -> Set[str]:
        """Union of all identifiers used in message field annotations."""
        names: Set[str] = set()
        for cls in self.message_classes.values():
            names |= cls.annotation_names
        return names

    def embedded_in(self) -> Dict[str, Set[str]]:
        """message name -> names of the messages that embed it as a field."""
        result: Dict[str, Set[str]] = {}
        for cls in self.message_classes.values():
            for name in cls.annotation_names:
                if name in self.message_classes:
                    result.setdefault(name, set()).add(cls.name)
        return result

    # -- graph export -----------------------------------------------------

    def graph_dict(self) -> Dict[str, object]:
        """The message-flow graph as a plain JSON-ready dict."""

        def sites(items: List[Site]) -> List[Dict[str, object]]:
            return [
                {"module": s.module.relpath, "line": s.line}
                for s in sorted(items, key=lambda s: (s.module.relpath, s.line))
            ]

        registered = self.registered_names
        embedded = self.embedded_in()
        messages = {}
        for name in sorted(self.message_classes):
            cls = self.message_classes[name]
            messages[name] = {
                "module": cls.module.relpath,
                "fields": cls.fields,
                "registered": name in registered,
                "constructed_in": sites(self.constructions.get(name, [])),
                "dispatched_in": sites(self.dispatched.get(name, [])),
                "embedded_in": sorted(embedded.get(name, ())),
            }
        requests = {}
        for kind in sorted(set(self.request_sent) | set(self.request_handled)):
            read = set(self.reply_reads.get(kind, {})) | self.reply_soft_reads.get(
                kind, set()
            )
            requests[kind] = {
                "sent_from": sites(self.request_sent.get(kind, [])),
                "handled_in": sites(self.request_handled.get(kind, [])),
                "reply_keys": sorted(self.reply_keys.get(kind, {})),
                "reply_reads": sorted(read),
                "reply_opaque": kind in self.reply_opaque,
            }
        return {"version": 1, "messages": messages, "requests": requests}

    def graph_json(self) -> str:
        return json.dumps(self.graph_dict(), indent=2, sort_keys=True) + "\n"

    def graph_dot(self) -> str:
        """The same graph in GraphViz DOT form, for docs and eyeballs."""
        graph = self.graph_dict()
        out: List[str] = [
            "digraph message_flow {",
            "  rankdir=LR;",
            '  node [fontsize=10, fontname="Helvetica"];',
        ]
        modules: Set[str] = set()
        messages = graph["messages"]
        requests = graph["requests"]
        assert isinstance(messages, dict) and isinstance(requests, dict)
        for name, info in messages.items():
            shape = "box" if info["registered"] else "box, style=dashed"
            out.append(f'  "msg:{name}" [label="{name}", shape={shape}];')
            for site in info["constructed_in"]:
                modules.add(site["module"])
                out.append(
                    f'  "mod:{site["module"]}" -> "msg:{name}" [label="constructs"];'
                )
            for site in info["dispatched_in"]:
                modules.add(site["module"])
                out.append(
                    f'  "msg:{name}" -> "mod:{site["module"]}" [label="dispatched"];'
                )
            for outer in info["embedded_in"]:
                out.append(
                    f'  "msg:{name}" -> "msg:{outer}" [label="embedded", style=dotted];'
                )
        for kind, info in requests.items():
            out.append(f'  "req:{kind}" [label="{kind}", shape=diamond];')
            for site in info["sent_from"]:
                modules.add(site["module"])
                out.append(
                    f'  "mod:{site["module"]}" -> "req:{kind}" [label="sends"];'
                )
            for site in info["handled_in"]:
                modules.add(site["module"])
                out.append(
                    f'  "req:{kind}" -> "mod:{site["module"]}" [label="handled"];'
                )
        for module in sorted(modules):
            out.append(f'  "mod:{module}" [label="{module}", shape=ellipse];')
        out.append("}")
        return "\n".join(out) + "\n"


# -- extraction -----------------------------------------------------------


def _registry_entries(module: ModuleInfo) -> List[Tuple[str, int, int]]:
    """(name, line, col) for every type registered in a codec module.

    Recognises the three registration shapes used by the tagged-JSON codec:
    the ``_MESSAGE_TYPES`` tuple, ``_BY_NAME[...] = Cls`` additions, and
    ``_register("Name", Cls, ...)`` calls for bespoke value types.
    """
    entries: List[Tuple[str, int, int]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "_MESSAGE_TYPES"
                    and isinstance(node.value, (ast.Tuple, ast.List))
                ):
                    for element in node.value.elts:
                        name = terminal_name(element)
                        if name:
                            entries.append((name, element.lineno, element.col_offset))
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "_BY_NAME"
                ):
                    name = terminal_name(node.value)
                    if name:
                        entries.append((name, node.lineno, node.col_offset))
        elif isinstance(node, ast.Call):
            if terminal_name(node.func) == "_register" and len(node.args) >= 2:
                name = terminal_name(node.args[1])
                if name:
                    entries.append((name, node.lineno, node.col_offset))
    return entries


def _collect_dispatch(model: ProjectModel, project: ProjectInfo) -> None:
    """``isinstance`` checks inside ``on_message`` methods, with sites."""
    for module in project:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name != "on_message":
                continue
            for call in ast.walk(node):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id == "isinstance"
                    and len(call.args) == 2
                ):
                    spec = call.args[1]
                    elements = (
                        spec.elts if isinstance(spec, (ast.Tuple, ast.List)) else [spec]
                    )
                    for element in elements:
                        name = terminal_name(element)
                        if name:
                            model.dispatched.setdefault(name, []).append(
                                Site(module, call.lineno, call.col_offset)
                            )


def _collect_constructions(model: ProjectModel, project: ProjectInfo) -> None:
    """Call sites whose callee is a message class or registered name."""
    tracked = set(model.message_classes) | model.registered_names
    if not tracked:
        return
    for module in project:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = terminal_name(node.func)
            if name in tracked:
                model.constructions.setdefault(name, []).append(
                    Site(module, node.lineno, node.col_offset)
                )


def _module_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` string constants."""
    consts: Dict[str, str] = {}
    for stmt in tree.body:
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        if not isinstance(value, ast.Constant) or not isinstance(value.value, str):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                consts[target.id] = value.value
    return consts


def _resolve_string(
    node: ast.AST, local: Dict[str, str], global_consts: Dict[str, str]
) -> Optional[str]:
    """Resolve a string literal or a (possibly imported) string constant."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name = terminal_name(node)
    if name is None:
        return None
    if name in local:
        return local[name]
    return global_consts.get(name)


def _is_type_key_expr(node: ast.AST, aliases: Set[str]) -> bool:
    """``request["type"]`` / ``request.get("type")`` / an alias var of one."""
    if isinstance(node, ast.Name):
        return node.id in aliases
    if isinstance(node, ast.Subscript):
        key = node.slice
        return (
            isinstance(key, ast.Constant)
            and key.value == "type"
            and isinstance(node.value, ast.Name)
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return (
            node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and len(node.args) >= 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "type"
        )
    return False


def _type_aliases(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Set[str]:
    """Names bound from the type key: ``kind = request["type"]``."""
    aliases: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _is_type_key_expr(node.value, set()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
    return aliases


def _compare_types(
    node: ast.Compare,
    aliases: Set[str],
    local_consts: Dict[str, str],
    global_consts: Dict[str, str],
) -> List[str]:
    """Type strings one comparison tests the request type against."""
    operands = [node.left, *node.comparators]
    if not any(_is_type_key_expr(op, aliases) for op in operands):
        return []
    results: List[str] = []
    for op, comparator in zip(node.ops, node.comparators):
        if isinstance(op, (ast.Eq, ast.NotEq)):
            for side in (node.left, comparator):
                value = _resolve_string(side, local_consts, global_consts)
                if value is not None:
                    results.append(value)
        elif isinstance(op, ast.In) and isinstance(
            comparator, (ast.Tuple, ast.List, ast.Set)
        ):
            for element in comparator.elts:
                value = _resolve_string(element, local_consts, global_consts)
                if value is not None:
                    results.append(value)
    return results


def _handler_compares(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    local_consts: Dict[str, str],
    global_consts: Dict[str, str],
) -> List[Tuple[str, int, int]]:
    """(type string, line, col) for every request-type comparison in a handler."""
    # Aliases: ``kind = request["type"]`` makes later ``kind == "x"`` count.
    aliases = _type_aliases(func)
    results: List[Tuple[str, int, int]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Compare):
            continue
        for value in _compare_types(node, aliases, local_consts, global_consts):
            results.append((value, node.lineno, node.col_offset))
    return results


def _dict_type(
    node: ast.AST,
    local_consts: Dict[str, str],
    global_consts: Dict[str, str],
) -> Optional[str]:
    """The resolved ``"type"`` value of a request dict literal, if any."""
    if not isinstance(node, ast.Dict):
        return None
    for key, value in zip(node.keys, node.values):
        if isinstance(key, ast.Constant) and key.value == "type":
            return _resolve_string(value, local_consts, global_consts)
    return None


def _send_var_types(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    local_consts: Dict[str, str],
    global_consts: Dict[str, str],
) -> Dict[str, str]:
    """``message = {"type": "gossip", ...}`` bindings, by variable name."""
    var_types: Dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            kind = _dict_type(node.value, local_consts, global_consts)
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        var_types[target.id] = kind
    return var_types


def _send_sites(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    local_consts: Dict[str, str],
    global_consts: Dict[str, str],
) -> List[Tuple[str, int, int]]:
    """(type string, line, col) for request dicts shipped via a send call."""
    var_types = _send_var_types(func, local_consts, global_consts)
    results: List[Tuple[str, int, int]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if terminal_name(node.func) not in SEND_FUNCS:
            continue
        for arg in node.args:
            kind = _dict_type(arg, local_consts, global_consts)
            if kind is None and isinstance(arg, ast.Name):
                kind = var_types.get(arg.id)
            if kind is not None:
                results.append((kind, node.lineno, node.col_offset))
    return results


#: Sentinel for "a reply was emitted here but its keys are unknowable".
_OPAQUE = frozenset({"\x00opaque"})


def _reply_shapes(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    local_consts: Dict[str, str],
    global_consts: Dict[str, str],
) -> List[Tuple[Optional[Tuple[str, ...]], FrozenSet[str], int, int]]:
    """Reply emissions in a handler: (branch types, keys, line, col).

    ``types`` is the request-type strings of the innermost enclosing
    ``if``-branch that tests the type key (``None`` for emissions outside
    any branch — error fallbacks that apply to every type).  ``keys`` is the
    reply dict literal's key set, or the ``_OPAQUE`` sentinel when the reply
    isn't a dict literal with constant string keys.  ``return None`` and bare
    ``return`` are one-way paths and produce no entry.
    """
    aliases = _type_aliases(func)
    out: List[Tuple[Optional[Tuple[str, ...]], FrozenSet[str], int, int]] = []

    def emit(value: ast.expr, types: Optional[Tuple[str, ...]], node: ast.AST) -> None:
        if isinstance(value, ast.Constant) and value.value is None:
            return  # one-way: no reply frame
        if isinstance(value, ast.Dict) and all(
            isinstance(k, ast.Constant) and isinstance(k.value, str)
            for k in value.keys
        ):
            keys = frozenset(k.value for k in value.keys if isinstance(k, ast.Constant))
        else:
            keys = _OPAQUE
        out.append((types, keys, node.lineno, node.col_offset))

    def test_types(test: ast.expr) -> List[str]:
        found: List[str] = []
        for node in ast.walk(test):
            if isinstance(node, ast.Compare):
                found.extend(
                    _compare_types(node, aliases, local_consts, global_consts)
                )
        return found

    def scan_calls(stmt: ast.stmt, types: Optional[Tuple[str, ...]]) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and terminal_name(node.func) == "write_frame":
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        emit(arg, types, node)

    def visit(body: List[ast.stmt], types: Optional[Tuple[str, ...]]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                scan_calls(stmt.test, types)  # write_frame in a test: unlikely
                branch = test_types(stmt.test)
                visit(stmt.body, tuple(branch) if branch else types)
                visit(stmt.orelse, types)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    emit(stmt.value, types, stmt)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                visit(stmt.body, types)
                visit(stmt.orelse, types)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body, types)
                for handler in stmt.handlers:
                    visit(handler.body, types)
                visit(stmt.orelse, types)
                visit(stmt.finalbody, types)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                visit(stmt.body, types)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scope: not this handler's replies
            else:
                scan_calls(stmt, types)

    visit(func.body, None)
    return out


def _reply_read_sites(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    local_consts: Dict[str, str],
    global_consts: Dict[str, str],
) -> List[Tuple[str, str, bool, int, int]]:
    """Reply-key reads at client call sites: (type, key, hard, line, col).

    A variable assigned from a send call whose request dict carries a
    literal ``"type"`` is that type's reply (``response = await
    self._request(conn, {"type": "head"})``).  When a function sends exactly
    one literal type and reads replies manually (``resp = await
    read_frame(reader)``), those variables are that type's reply too.
    Subscript reads are *hard* (a dropped key is a ``KeyError``);
    ``.get(...)`` reads are tolerant.
    """
    var_types = _send_var_types(func, local_consts, global_consts)

    def call_send_type(value: ast.expr) -> Optional[str]:
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            if terminal_name(node.func) not in SEND_FUNCS:
                continue
            for arg in node.args:
                kind = _dict_type(arg, local_consts, global_consts)
                if kind is None and isinstance(arg, ast.Name):
                    kind = var_types.get(arg.id)
                if kind is not None:
                    return kind
        return None

    def is_read_call(value: ast.expr) -> bool:
        return any(
            isinstance(node, ast.Call) and terminal_name(node.func) in READ_FUNCS
            for node in ast.walk(value)
        )

    sent_types = {kind for kind, _l, _c in _send_sites(func, local_consts, global_consts)}
    sole_type = next(iter(sent_types)) if len(sent_types) == 1 else None

    reply_vars: Dict[str, str] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        kind = call_send_type(node.value)
        if kind is None and sole_type is not None and is_read_call(node.value):
            kind = sole_type
        if kind is not None:
            reply_vars[target.id] = kind

    reads: List[Tuple[str, str, bool, int, int]] = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in reply_vars
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            reads.append(
                (
                    reply_vars[node.value.id],
                    node.slice.value,
                    True,
                    node.lineno,
                    node.col_offset,
                )
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in reply_vars
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.append(
                (
                    reply_vars[node.func.value.id],
                    node.args[0].value,
                    False,
                    node.lineno,
                    node.col_offset,
                )
            )
    return reads


def _collect_request_flow(model: ProjectModel, project: ProjectInfo) -> None:
    """The dict-request surface of the ``net/`` layer, both directions."""
    net_modules = [m for m in project if m.in_package(("net",))]
    global_consts: Dict[str, str] = {}
    for module in net_modules:
        global_consts.update(_module_constants(module.tree))
    for module in net_modules:
        local_consts = _module_constants(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in HANDLER_METHODS:
                model.has_request_handlers = True
                for kind, line, col in _handler_compares(
                    node, local_consts, global_consts
                ):
                    model.request_handled.setdefault(kind, []).append(
                        Site(module, line, col)
                    )
                for types, keys, line, col in _reply_shapes(
                    node, local_consts, global_consts
                ):
                    if types is None:
                        if keys is not _OPAQUE:
                            model.reply_generic |= keys
                        continue
                    for kind in types:
                        if keys is _OPAQUE:
                            model.reply_opaque.add(kind)
                            continue
                        per_kind = model.reply_keys.setdefault(kind, {})
                        for key in keys:
                            per_kind.setdefault(key, []).append(
                                Site(module, line, col)
                            )
            else:
                for kind, line, col in _send_sites(node, local_consts, global_consts):
                    model.request_sent.setdefault(kind, []).append(
                        Site(module, line, col)
                    )
                for kind, key, hard, line, col in _reply_read_sites(
                    node, local_consts, global_consts
                ):
                    if hard:
                        model.reply_reads.setdefault(kind, {}).setdefault(
                            key, []
                        ).append(Site(module, line, col))
                    else:
                        model.reply_soft_reads.setdefault(kind, set()).add(key)


def build_model(project: ProjectInfo) -> ProjectModel:
    """Build (or return the cached) :class:`ProjectModel` for a scan."""
    cached = project.model_cache
    if isinstance(cached, ProjectModel):
        return cached
    model = ProjectModel()
    for module in project:
        is_messages = module.relpath.endswith("messages.py")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                model.all_class_names.add(node.name)
                if (
                    is_messages
                    and not node.name.startswith("_")
                    and is_dataclass_decorated(node)
                ):
                    model.message_classes[node.name] = MessageClass(
                        name=node.name,
                        module=module,
                        line=node.lineno,
                        col=node.col_offset,
                        fields=field_count(node),
                        annotation_names=annotation_names(node),
                    )
        for name, line, col in _registry_entries(module):
            model.registry.append(RegistryEntry(module, name, line, col))
    _collect_dispatch(model, project)
    _collect_constructions(model, project)
    _collect_request_flow(model, project)
    project.model_cache = model
    return model
