"""Command-line interface: demos, experiment runs, and log inspection.

Usage (also available as ``chariots-repro`` when installed with pip):

    python -m repro.cli demo                     # two-datacenter walkthrough
    python -m repro.cli table1                   # the systems comparison
    python -m repro.cli bench fig7               # one evaluation experiment
    python -m repro.cli bench table3
    python -m repro.cli inspect-journal m0.journal
    python -m repro.cli inspect-archive archive.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_demo(args: argparse.Namespace) -> int:
    from .chariots import ChariotsDeployment
    from .runtime import LocalRuntime

    runtime = LocalRuntime()
    dcs = args.datacenters.split(",")
    deployment = ChariotsDeployment(runtime, dcs, batch_size=100)
    clients = {dc: deployment.blocking_client(dc) for dc in dcs}
    print(f"Chariots demo: {len(dcs)} datacenters ({', '.join(dcs)})")
    for i in range(args.records):
        for dc, client in clients.items():
            client.append(f"record-{i}-from-{dc}", tags={"round": i})
    converged = deployment.settle(max_seconds=30)
    print(f"appended {args.records} records per datacenter; converged: {converged}")
    for dc in dcs:
        pipe = deployment[dc]
        print(f"  {dc}: {pipe.total_records()} records, head of log {pipe.head_of_log()}, "
              f"frontier {pipe.frontier()}")
    show = min(6, args.records * len(dcs))
    print(f"first {show} log positions at {dcs[0]}:")
    for entry in deployment[dcs[0]].all_entries()[:show]:
        print(f"  [{entry.lid}] {entry.rid} {entry.record.body!r}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .bench.comparison import render

    print(render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import run_corfu_sim, run_flstore_sim, run_pipeline_sim
    from .core import PRIVATE_CLOUD

    name = args.experiment
    duration, warmup = args.duration, min(0.4, args.duration / 3)
    if name == "fig7":
        print("Figure 7: one public-cloud maintainer, achieved vs target")
        for target in (50_000, 100_000, 150_000, 200_000, 250_000):
            result = run_flstore_sim(1, target, duration=duration, warmup=warmup)
            print(f"  target {target/1000:6.0f}K -> achieved {result.achieved_total/1000:6.1f}K")
    elif name == "fig8":
        print("Figure 8: FLStore scaling (private cloud, 131K/maintainer)")
        for n in (1, 2, 4, 8):
            result = run_flstore_sim(
                n, 131_000, maintainer_profile=PRIVATE_CLOUD,
                duration=duration, warmup=warmup,
            )
            print(f"  {n:2d} maintainers -> {result.achieved_total/1000:7.1f}K "
                  f"({result.perfect_scaling_fraction:.1%} of perfect)")
    elif name in ("table2", "table3", "table4", "table5"):
        spec = {
            "table2": dict(clients=1),
            "table3": dict(clients=2),
            "table4": dict(clients=2, batchers=2),
            "table5": dict(clients=2, batchers=2, filters=2, queues=2,
                           maintainers=2, senders=2, receivers=2),
        }[name]
        result = run_pipeline_sim(duration=duration, warmup=warmup, **spec)
        print(f"{name.capitalize()}: per-machine throughput (K records/s)")
        for stage, machine, rate in result.rows():
            print(f"  {stage:<8} {machine:<18} {rate/1000:7.1f}K")
        print(f"  bottleneck: {result.bottleneck()}")
    elif name == "corfu":
        print("Ablation: FLStore vs CORFU-style sequencer")
        for n in (1, 2, 4, 8):
            flstore = run_flstore_sim(n, 125_000, duration=duration, warmup=warmup)
            corfu = run_corfu_sim(
                n, 125_000, sequencer_capacity=30_000.0, grant_batch=16,
                duration=duration, warmup=warmup,
            )
            print(f"  {n:2d} units: FLStore {flstore.achieved_total/1000:7.1f}K"
                  f"   CORFU {corfu.achieved_total/1000:7.1f}K")
    else:  # pragma: no cover - argparse choices prevent this
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_inspect_journal(args: argparse.Namespace) -> int:
    from .flstore.journal import FileJournal

    journal = FileJournal(args.path)
    entries = list(journal.replay())
    journal.close()
    if not entries:
        print(f"{args.path}: empty journal")
        return 0
    lids = [lid for lid, _ in entries]
    hosts = sorted({record.host for _, record in entries})
    print(f"{args.path}: {len(entries)} placements")
    print(f"  LId range: {min(lids)}..{max(lids)}")
    print(f"  host datacenters: {', '.join(hosts)}")
    if args.verbose:
        for lid, record in entries[: args.limit]:
            print(f"  [{lid}] {record.rid} tags={record.tag_dict()}")
    return 0


def _cmd_inspect_archive(args: argparse.Namespace) -> int:
    from .core import ReadRules
    from .flstore.archive import ArchiveStore

    archive = ArchiveStore.load(args.path)
    print(f"{args.path}: {len(archive)} archived records")
    lid_range = archive.lid_range()
    if lid_range:
        print(f"  LId range: {lid_range[0]}..{lid_range[1]}")
    if args.verbose:
        for entry in archive.read(ReadRules(most_recent=False, limit=args.limit,
                                            include_internal=True)):
            print(f"  [{entry.lid}] {entry.rid} tags={entry.record.tag_dict()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chariots-repro",
        description="Chariots shared-log reproduction: demos, experiments, inspection.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a multi-datacenter demo")
    demo.add_argument("--datacenters", default="A,B", help="comma-separated ids")
    demo.add_argument("--records", type=int, default=5, help="appends per datacenter")
    demo.set_defaults(func=_cmd_demo)

    table1 = sub.add_parser("table1", help="print the systems comparison (Table 1)")
    table1.set_defaults(func=_cmd_table1)

    bench = sub.add_parser("bench", help="run one evaluation experiment")
    bench.add_argument(
        "experiment",
        choices=["fig7", "fig8", "table2", "table3", "table4", "table5", "corfu"],
    )
    bench.add_argument("--duration", type=float, default=1.0,
                       help="simulated seconds per data point")
    bench.set_defaults(func=_cmd_bench)

    journal = sub.add_parser("inspect-journal", help="summarise a maintainer journal")
    journal.add_argument("path")
    journal.add_argument("-v", "--verbose", action="store_true")
    journal.add_argument("--limit", type=int, default=20)
    journal.set_defaults(func=_cmd_inspect_journal)

    archive = sub.add_parser("inspect-archive", help="summarise a cold-storage dump")
    archive.add_argument("path")
    archive.add_argument("-v", "--verbose", action="store_true")
    archive.add_argument("--limit", type=int, default=20)
    archive.set_defaults(func=_cmd_inspect_archive)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
