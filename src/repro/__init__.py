"""Chariots reproduction: a scalable shared log for multi-datacenter clouds.

Reproduction of Nawab, Arora, Agrawal, El Abbadi,
"Chariots: A Scalable Shared Log for Data Management in Multi-Datacenter
Cloud Environments", EDBT 2015.

Package layout
--------------

``repro.core``
    Records, logs, causality, awareness tables, configuration.
``repro.runtime``
    Actor model and the deterministic local runtime.
``repro.sim``
    Discrete-event capacity simulator (machines, NICs, metrics).
``repro.flstore``
    FLStore: the sequencer-free distributed log within a datacenter (§5).
``repro.chariots``
    The geo-replicated causal pipeline, abstract solution, elasticity (§6).
``repro.baseline``
    CORFU-style sequencer baseline (§2.1).
``repro.apps``
    Hyksos KV store, stream processing, Message Futures, Helios (§4).
``repro.net``
    asyncio TCP deployment of FLStore.
``repro.bench``
    Benchmark harness for every table and figure of §7.

Quickstart
----------

>>> from repro import LocalRuntime, ChariotsDeployment
>>> runtime = LocalRuntime()
>>> deployment = ChariotsDeployment(runtime, ["A", "B"])
>>> client = deployment.blocking_client("A")
>>> result = client.append("hello", tags={"topic": "greetings"})
>>> result.lid
0
"""

from .apps import (
    Checkpointer,
    EventPublisher,
    HeliosManager,
    Hyksos,
    LogAuditor,
    MessageFuturesManager,
    ReplicatedCounter,
    ReplicatedDict,
    ReplicatedQueue,
    ReplicatedSet,
    StreamJoiner,
    StreamProcessor,
    StreamReader,
)
from .baseline import CorfuLog
from .chariots import (
    AbstractChariots,
    AbstractDeployment,
    BlockingChariotsClient,
    ChariotsClient,
    ChariotsDeployment,
    DatacenterPipeline,
    DirectDeployment,
)
from .core import (
    PRIVATE_CLOUD,
    PUBLIC_CLOUD,
    AppendResult,
    AwarenessTable,
    CausalFrontier,
    ChariotsError,
    DeploymentSpec,
    FLStoreConfig,
    LogEntry,
    MachineProfile,
    PipelineConfig,
    ReadRules,
    Record,
    RecordId,
    TransactionAborted,
    causal_order_respected,
)
from .flstore import (
    ArchiveStore,
    BlockingFLStoreClient,
    FLStore,
    FLStoreClient,
    FileJournal,
    MemoryJournal,
    OwnershipPlan,
)
from .runtime import Actor, LocalRuntime
from .sim import LoadClient, MetricsRegistry, SimRuntime

__version__ = "1.0.0"

__all__ = [
    "AbstractChariots",
    "AbstractDeployment",
    "Actor",
    "AppendResult",
    "AwarenessTable",
    "BlockingChariotsClient",
    "ArchiveStore",
    "BlockingFLStoreClient",
    "Checkpointer",
    "CausalFrontier",
    "ChariotsClient",
    "ChariotsDeployment",
    "ChariotsError",
    "CorfuLog",
    "DatacenterPipeline",
    "DeploymentSpec",
    "DirectDeployment",
    "FileJournal",
    "EventPublisher",
    "FLStore",
    "FLStoreClient",
    "FLStoreConfig",
    "HeliosManager",
    "Hyksos",
    "LoadClient",
    "LocalRuntime",
    "LogAuditor",
    "LogEntry",
    "MachineProfile",
    "MemoryJournal",
    "MessageFuturesManager",
    "MetricsRegistry",
    "OwnershipPlan",
    "PRIVATE_CLOUD",
    "PUBLIC_CLOUD",
    "PipelineConfig",
    "ReadRules",
    "Record",
    "RecordId",
    "ReplicatedCounter",
    "ReplicatedDict",
    "ReplicatedQueue",
    "ReplicatedSet",
    "SimRuntime",
    "StreamJoiner",
    "StreamProcessor",
    "StreamReader",
    "TransactionAborted",
    "causal_order_respected",
    "__version__",
]
