"""Capacity-modelling runtime: the same actors, under simulated resources.

:class:`SimRuntime` extends the deterministic runtime with machine placement.
A message between actors on different machines passes through

    sender CPU (implicit: sends happen during the sender's service time)
    → sender TX NIC → link latency → receiver RX NIC → receiver CPU queue
    → ``on_message``

Each hop is serialised by the owning :class:`~repro.sim.machine.Machine`, so
queueing, bottlenecks, and overload degradation emerge mechanistically —
they are not scripted.  Actors without a placement (test harness helpers)
communicate instantly at zero cost.

The runtime also feeds a :class:`~repro.sim.metrics.MetricsRegistry`: every
delivery counts ``in_records`` at the receiver and every send counts
``out_records`` at the sender, which is exactly the per-machine
records/second the paper's Tables 2–5 report.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from ..core.config import MachineProfile, NetworkProfile, PRIVATE_CLOUD
from ..core.errors import ConfigurationError
from ..runtime.actor import Actor
from ..runtime.local import BaseRuntime
from ..runtime.messages import record_count_of, wire_size_of
from .machine import Machine
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chaos.plan import FaultPlan


class SimRuntime(BaseRuntime):
    """Discrete-event runtime with per-machine CPU and NIC capacity."""

    def __init__(
        self,
        network: Optional[NetworkProfile] = None,
        record_size: int = 512,
        metrics: Optional[MetricsRegistry] = None,
        chaos: Optional["FaultPlan"] = None,
    ) -> None:
        super().__init__()
        self.network = network or NetworkProfile()
        self.record_size = record_size
        self.metrics = metrics or MetricsRegistry()
        self.chaos = chaos
        self.messages_dropped = 0
        self._machines: Dict[str, Machine] = {}
        self._placement: Dict[str, Machine] = {}
        self._latency_overrides: Dict[Tuple[str, str], float] = {}

    def start(self) -> "BaseRuntime":
        if not self._started and self.chaos is not None:
            for crash in self.chaos.crashes:
                self.loop.schedule(
                    crash.at,
                    lambda name=crash.actor: self.crash(name)
                    if name in self._actors
                    else None,
                )
        return super().start()

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def add_machine(
        self,
        name: str,
        profile: MachineProfile = PRIVATE_CLOUD,
        datacenter: str = "A",
        shared_nic: bool = False,
    ) -> Machine:
        if name in self._machines:
            raise ConfigurationError(f"machine {name!r} already exists")
        machine = Machine(name, profile, datacenter=datacenter, shared_nic=shared_nic)
        self._machines[name] = machine
        return machine

    def machine(self, name: str) -> Machine:
        return self._machines[name]

    def machines(self) -> Dict[str, Machine]:
        return dict(self._machines)

    def place(self, actor: Actor, machine_name: str) -> Actor:
        """Register ``actor`` and pin it to a machine."""
        if machine_name not in self._machines:
            raise ConfigurationError(f"unknown machine {machine_name!r}")
        self.register(actor)
        self._placement[actor.name] = self._machines[machine_name]
        return actor

    def place_on_new_machine(
        self,
        actor: Actor,
        profile: MachineProfile = PRIVATE_CLOUD,
        datacenter: str = "A",
        shared_nic: bool = False,
    ) -> Actor:
        """Convenience: one fresh machine per actor (the paper's deployments)."""
        machine = self.add_machine(
            f"m/{actor.name}", profile, datacenter=datacenter, shared_nic=shared_nic
        )
        return self.place(actor, machine.name)

    def machine_of(self, actor_name: str) -> Optional[Machine]:
        return self._placement.get(actor_name)

    def set_latency(self, dc_a: str, dc_b: str, one_way_seconds: float) -> None:
        """Override the one-way latency between two datacenters."""
        self._latency_overrides[(dc_a, dc_b)] = one_way_seconds
        self._latency_overrides[(dc_b, dc_a)] = one_way_seconds

    def latency_between(self, src: Machine, dst: Machine) -> float:
        if src.datacenter == dst.datacenter:
            return self.network.lan_latency
        override = self._latency_overrides.get((src.datacenter, dst.datacenter))
        if override is not None:
            return override
        return self.network.wan_latency

    # ------------------------------------------------------------------ #
    # Message transport
    # ------------------------------------------------------------------ #

    def send(self, src: str, dst: str, message: Any) -> None:
        if self._crashed and src in self._crashed:
            self.messages_dropped += 1  # a dead process sends nothing
            return
        if self.chaos is not None:
            copies = self.chaos.intercept(src, dst, message, self.now)
            if copies is None:
                self.messages_dropped += 1
                return
            if len(copies) > 1 or copies[0] > 0.0:
                for extra in copies:
                    self.loop.schedule(
                        extra, lambda: self._transmit(src, dst, message)
                    )
                return
        self._transmit(src, dst, message)

    def _transmit(self, src: str, dst: str, message: Any) -> None:
        target = self._actors.get(dst)
        if target is None:
            raise ConfigurationError(f"message from {src!r} to unknown actor {dst!r}")
        n_records = record_count_of(message)
        if src != dst:
            # Self-sends model internal work (e.g. record generation); they
            # cost CPU but are not stage throughput.
            if n_records:
                self.metrics.add(src, "out_records", n_records, self.now)
            self.metrics.add(src, "out_messages", 1, self.now)

        src_machine = self._placement.get(src)
        dst_machine = self._placement.get(dst)

        if src_machine is None or dst_machine is None:
            # Control-plane / harness actors: instant, costless delivery.
            self.loop.schedule(0.0, lambda: self._deliver(src, target, message, n_records))
            return

        if src_machine is dst_machine:
            # Same machine: no NIC, but the work still occupies the CPU.
            self._enqueue_cpu(src, target, dst_machine, message, n_records, self.now)
            return

        size = wire_size_of(message, self.record_size) + self.network.message_overhead_bytes
        tx_done = src_machine.transmit(self.now, size)
        arrival = tx_done + self.latency_between(src_machine, dst_machine)

        def on_arrival() -> None:
            rx_done = dst_machine.receive(self.now, size)
            self.loop.schedule_at(
                rx_done,
                lambda: self._enqueue_cpu(
                    src, target, dst_machine, message, n_records, self.now
                ),
            )

        self.loop.schedule_at(arrival, on_arrival)

    def _enqueue_cpu(
        self,
        src: str,
        target: Actor,
        machine: Machine,
        message: Any,
        n_records: int,
        ready_at: float,
    ) -> None:
        cost = target.service_cost(message)
        if cost is None:
            cost = machine.record_cost(n_records)
        done = machine.submit_cpu(ready_at, cost)

        def complete() -> None:
            machine.complete_cpu()
            self._deliver(src, target, message, n_records)

        self.loop.schedule_at(done, complete)

    def _deliver(self, src: str, target: Actor, message: Any, n_records: int) -> None:
        if self._crashed and target.name in self._crashed:
            self._park(src, target.name, message)
            return
        if src != target.name:
            if n_records:
                self.metrics.add(target.name, "in_records", n_records, self.now)
            self.metrics.add(target.name, "in_messages", 1, self.now)
        target.on_message(src, message)
