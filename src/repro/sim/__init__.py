"""Discrete-event cluster simulator: machines, NICs, metrics, workloads."""

from .kernel import SimRuntime
from .machine import Machine
from .metrics import MetricsRegistry
from .workload import LoadClient, SinkActor

__all__ = [
    "LoadClient",
    "Machine",
    "MetricsRegistry",
    "SimRuntime",
    "SinkActor",
]
