"""Throughput metrics for simulated deployments.

The paper's evaluation reports two kinds of numbers: steady-state throughput
per machine (Tables 2–5, Figures 7–8) and per-second throughput timeseries
(Figure 9).  :class:`MetricsRegistry` supports both: every counted event is
binned by simulated time, so totals, windowed rates, and timeseries all come
from the same counters.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError


class MetricsRegistry:
    """Time-binned counters keyed by ``(source, metric)``."""

    def __init__(self, bin_width: float = 0.1) -> None:
        if bin_width <= 0:
            raise ConfigurationError("bin_width must be positive")
        self.bin_width = bin_width
        self._bins: Dict[Tuple[str, str], Dict[int, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self._totals: Dict[Tuple[str, str], float] = defaultdict(float)

    def add(self, source: str, metric: str, n: float, time: float) -> None:
        """Count ``n`` occurrences of ``metric`` at ``source`` at sim ``time``."""
        key = (source, metric)
        self._bins[key][int(time / self.bin_width)] += n
        self._totals[key] += n

    def total(self, source: str, metric: str) -> float:
        return self._totals.get((source, metric), 0.0)

    def sources(self, metric: Optional[str] = None) -> List[str]:
        """All sources seen (optionally only those reporting ``metric``)."""
        names = {
            src for (src, m) in self._totals if metric is None or m == metric
        }
        return sorted(names)

    def rate(
        self,
        source: str,
        metric: str,
        start: float,
        end: float,
    ) -> float:
        """Average events/second over the whole bins inside ``[start, end)``.

        Only bins fully contained in the window count, so partially-covered
        edge bins never bias the rate; the epsilon guards against
        floating-point bin-boundary drift (0.3/0.1 == 2.999...).
        """
        if end <= start:
            raise ConfigurationError(f"empty rate window [{start}, {end})")
        first = int(math.ceil(start / self.bin_width - 1e-9))
        last = int(math.floor(end / self.bin_width + 1e-9))
        if last <= first:
            raise ConfigurationError(
                f"window [{start}, {end}) spans no whole {self.bin_width}s bin"
            )
        bins = self._bins.get((source, metric), {})
        count = sum(bins.get(b, 0.0) for b in range(first, last))
        return count / ((last - first) * self.bin_width)

    def stage_rate(
        self,
        prefix: str,
        metric: str,
        start: float,
        end: float,
    ) -> float:
        """Summed rate across every source whose name starts with ``prefix``."""
        return sum(
            self.rate(source, metric, start, end)
            for source in self.sources(metric)
            if source.startswith(prefix)
        )

    def timeseries(
        self,
        source: str,
        metric: str,
        bin_width: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """(bin start time, events/second) pairs, in time order (Figure 9).

        ``bin_width`` may coarsen (must be an integer multiple of the
        registry's native width).
        """
        width = bin_width or self.bin_width
        factor = round(width / self.bin_width)
        if factor < 1 or abs(factor * self.bin_width - width) > 1e-12:
            raise ConfigurationError(
                f"bin_width {width} is not a multiple of native {self.bin_width}"
            )
        bins = self._bins.get((source, metric), {})
        if not bins:
            return []
        coarse: Dict[int, float] = defaultdict(float)
        for b, count in bins.items():
            coarse[b // factor] += count
        return [
            (b * width, coarse[b] / width) for b in sorted(coarse)
        ]

    def reset(self) -> None:
        self._bins.clear()
        self._totals.clear()
