"""Machine capacity model: CPU service with overload degradation, NIC queues.

Each simulated machine serialises three resources:

* **CPU** — one service queue; processing a message costs
  ``records × per_record_cost`` seconds (or the actor's own
  ``service_cost``).  When the backlog exceeds the profile's saturation
  threshold, service slows by a penalty factor that grows with the backlog
  (bounded by ``overload_cap``).  This models the GC/caching/retry overheads
  that make Figure 7's achieved throughput *decline* past its peak instead
  of plateauing.
* **TX NIC** and **RX NIC** — transmission time is ``bytes / bandwidth``.
  With ``shared_nic=True`` both directions contend for one resource
  (virtualised/1 GbE public-cloud machines), which reproduces the Figure 9
  effect where a stage's output surges once its inbound traffic stops.
"""

from __future__ import annotations


from ..core.config import MachineProfile
from ..core.errors import ConfigurationError


class Machine:
    """One simulated machine hosting one or more actors."""

    def __init__(
        self,
        name: str,
        profile: MachineProfile,
        datacenter: str = "A",
        shared_nic: bool = False,
    ) -> None:
        if not name:
            raise ConfigurationError("machines need a non-empty name")
        self.name = name
        self.profile = profile
        self.datacenter = datacenter
        self.shared_nic = shared_nic
        self._cpu_free_at = 0.0
        self._tx_free_at = 0.0
        self._rx_free_at = 0.0
        self._cpu_pending = 0
        self.cpu_busy_seconds = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------ #
    # CPU
    # ------------------------------------------------------------------ #

    @property
    def cpu_pending(self) -> int:
        """Jobs submitted to the CPU but not yet completed."""
        return self._cpu_pending

    def overload_factor(self) -> float:
        """Current service-time multiplier given the backlog."""
        profile = self.profile
        excess = self._cpu_pending - profile.saturation_queue
        if excess <= 0:
            return 1.0
        return min(profile.overload_cap, 1.0 + profile.overload_penalty * excess)

    def submit_cpu(self, ready_at: float, base_cost: float) -> float:
        """Enqueue a CPU job; returns its completion time.

        The overload factor is sampled at submission, reflecting the backlog
        the job joins.  Call :meth:`complete_cpu` when the completion event
        fires.
        """
        if base_cost < 0:
            raise ConfigurationError(f"negative service cost {base_cost}")
        self._cpu_pending += 1
        cost = base_cost * self.overload_factor()
        start = max(ready_at, self._cpu_free_at)
        done = start + cost
        self._cpu_free_at = done
        self.cpu_busy_seconds += cost
        return done

    def complete_cpu(self) -> None:
        """Mark one CPU job finished (invoked by the runtime at completion)."""
        if self._cpu_pending <= 0:  # pragma: no cover - defensive
            raise ConfigurationError(f"CPU completion underflow on {self.name}")
        self._cpu_pending -= 1

    def record_cost(self, n_records: int) -> float:
        """Baseline CPU cost for a message carrying ``n_records`` records.

        Control messages (0 records) still pay a small fixed handling cost.
        """
        if n_records <= 0:
            return self.profile.per_record_cost * 0.25
        return n_records * self.profile.per_record_cost

    # ------------------------------------------------------------------ #
    # NIC
    # ------------------------------------------------------------------ #

    def transmit(self, ready_at: float, size_bytes: int) -> float:
        """Serialise an outbound frame; returns when the last byte leaves."""
        duration = size_bytes / self.profile.nic_bandwidth_bytes
        start = max(ready_at, self._tx_free_at)
        done = start + duration
        self._tx_free_at = done
        if self.shared_nic:
            self._rx_free_at = max(self._rx_free_at, done)
        self.bytes_sent += size_bytes
        return done

    def receive(self, arrival: float, size_bytes: int) -> float:
        """Serialise an inbound frame; returns when it is fully received."""
        duration = size_bytes / self.profile.nic_bandwidth_bytes
        start = max(arrival, self._rx_free_at)
        done = start + duration
        self._rx_free_at = done
        if self.shared_nic:
            self._tx_free_at = max(self._tx_free_at, done)
        self.bytes_received += size_bytes
        return done

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the CPU spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_seconds / elapsed)

    def peak_rate(self) -> float:
        """Nominal records/second this machine can sustain un-overloaded."""
        return 1.0 / self.profile.per_record_cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine {self.name!r} dc={self.datacenter!r} {self.profile.name}>"
