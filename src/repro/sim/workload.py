"""Workload generation for the benchmark harness (§7 experimental setup).

:class:`LoadClient` reproduces the paper's client machines: they construct
records of a configured size and push them to the system at a *target
throughput*.  Generation itself costs CPU on the client's machine (building
and serialising records is real work), so a client machine's own capacity
bounds its offered load — exactly the effect §7.2 observes when the clients,
not the pipeline, are the bottleneck of the basic deployment.

Pacing uses a tick timer at the target rate with a small bound on
outstanding generation jobs, so an overloaded client degrades to its CPU
capacity instead of accumulating an unbounded self-queue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..core.errors import ConfigurationError
from ..runtime.actor import Actor

#: Factory signature: (client_name, batch_index, n_records) -> message.
BatchFactory = Callable[[str, int, int], Any]


@dataclass
class _MakeBatch:
    """Self-message representing the CPU work of building one batch."""

    n_records: int

    def record_count(self) -> int:
        # Building a batch costs the same per-record CPU as processing one.
        return self.n_records

    def wire_size(self, record_size: int = 512) -> int:
        return 0  # never crosses the network; self-addressed


class LoadClient(Actor):
    """A client machine generating record batches at a target rate.

    Parameters
    ----------
    name:
        Actor name (also the metrics source name).
    targets:
        Destination actor names; batches round-robin across them (the
        paper's clients pick a maintainer "randomly or intelligibly").
    batch_factory:
        Builds the protocol message for one batch (an ``AppendRequest`` for
        FLStore benchmarks, a draft-record batch for pipeline benchmarks).
    target_rate:
        Offered load in records/second.
    batch_size:
        Records per batch.
    total_records:
        Stop after generating this many records (None = run forever).
    start_at / stop_at:
        Generation window in simulated seconds.
    max_outstanding:
        Bound on queued generation jobs (pacing backpressure).
    """

    def __init__(
        self,
        name: str,
        targets: Sequence[str],
        batch_factory: BatchFactory,
        target_rate: float,
        batch_size: int = 500,
        total_records: Optional[int] = None,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
        max_outstanding: int = 4,
    ) -> None:
        super().__init__(name)
        if not targets:
            raise ConfigurationError("LoadClient needs at least one target")
        if target_rate <= 0 or batch_size < 1:
            raise ConfigurationError("target_rate and batch_size must be positive")
        self.targets = list(targets)
        self.batch_factory = batch_factory
        self.target_rate = target_rate
        self.batch_size = batch_size
        self.total_records = total_records
        self.start_at = start_at
        self.stop_at = stop_at
        self.max_outstanding = max_outstanding
        self.records_generated = 0
        self.batches_sent = 0
        self._outstanding = 0
        self._batch_index = itertools.count()
        self._target_cycle = itertools.cycle(self.targets)
        self._timer = None

    # ------------------------------------------------------------------ #

    def set_targets(self, targets: Sequence[str]) -> None:
        """Re-point the client (e.g. after elastic expansion, §6.3)."""
        if not targets:
            raise ConfigurationError("LoadClient needs at least one target")
        self.targets = list(targets)
        self._target_cycle = itertools.cycle(self.targets)

    def on_start(self) -> None:
        interval = self.batch_size / self.target_rate

        def tick() -> None:
            if self._finished():
                if self._timer is not None:
                    self._timer.cancel()
                return
            if self.now < self.start_at:
                return
            if self._outstanding >= self.max_outstanding:
                return  # client CPU saturated; skip this tick (sheds load)
            self._outstanding += 1
            self.send(self.name, _MakeBatch(self._next_batch_size()))

        self._timer = self.set_timer(interval, tick, periodic=True)

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, _MakeBatch):
            self._outstanding -= 1
            if message.n_records <= 0 or self._finished():
                return
            batch = self.batch_factory(self.name, next(self._batch_index), message.n_records)
            self.send(next(self._target_cycle), batch)
            self.records_generated += message.n_records
            self.batches_sent += 1
        # Append acknowledgements and other replies need no client action.

    # ------------------------------------------------------------------ #

    def _next_batch_size(self) -> int:
        if self.total_records is None:
            return self.batch_size
        remaining = self.total_records - self.records_generated
        return max(0, min(self.batch_size, remaining))

    def _finished(self) -> bool:
        if self.total_records is not None and self.records_generated >= self.total_records:
            return True
        if self.stop_at is not None and self.now >= self.stop_at:
            return True
        return False


class SinkActor(Actor):
    """Counts whatever arrives; used to terminate flows in micro-benchmarks."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.messages: List[Any] = []
        self.records_received = 0

    def on_message(self, sender: str, message: Any) -> None:
        self.messages.append(message)
        counter = getattr(message, "record_count", None)
        if callable(counter):
            self.records_received += counter()
