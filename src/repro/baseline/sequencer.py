"""Centralised sequencer: the CORFU-style baseline's point of contention.

CORFU/Tango (§2.1) pre-assign log positions: a client asks the sequencer
for the next offsets, then writes the records to the storage units mapped
to those offsets.  The sequencer is off the data path (it hands out numbers,
not data), which is why CORFU beats single-server logs — but every append in
the cluster still crosses this one machine, so cluster throughput is capped
by the sequencer's request rate.  FLStore's post-assignment removes exactly
this component; the ablation benchmarks measure the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.errors import ConfigurationError
from ..runtime.actor import Actor


@dataclass
class SequencerRequest:
    """Client → sequencer: reserve ``count`` consecutive log positions."""

    request_id: int
    count: int = 1


@dataclass
class ReservedRange:
    """Sequencer → client: positions ``[start, start + count)`` are yours."""

    request_id: int
    start: int
    count: int


class Sequencer(Actor):
    """Hands out dense log position ranges; trivially correct, inherently serial."""

    def __init__(self, name: str, grant_cost: Optional[float] = None) -> None:
        super().__init__(name)
        self._next = 0
        self.grants_issued = 0
        #: Optional explicit CPU cost per grant request (overrides the
        #: machine profile's control-message cost under the simulator).
        self._grant_cost = grant_cost

    @property
    def next_position(self) -> int:
        return self._next

    def service_cost(self, message: Any) -> Optional[float]:
        if self._grant_cost is not None and isinstance(message, SequencerRequest):
            return self._grant_cost
        return None

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, SequencerRequest):
            return
        if message.count < 1:
            raise ConfigurationError(f"cannot reserve {message.count} positions")
        start = self._next
        self._next += message.count
        self.grants_issued += 1
        self.send(sender, ReservedRange(message.request_id, start, message.count))
