"""CORFU-style sequencer-based shared log baseline (§2.1)."""

from .corfu import CorfuClient, CorfuLog
from .sequencer import ReservedRange, Sequencer, SequencerRequest

__all__ = [
    "CorfuClient",
    "CorfuLog",
    "ReservedRange",
    "Sequencer",
    "SequencerRequest",
]
