"""CORFU-style shared log: sequencer pre-assignment over striped storage.

The comparison baseline (§2.1, §5.2).  Storage units are this library's log
maintainers operated in *placed* mode with the same deterministic
round-robin range map — the only architectural difference from FLStore is
that log positions are **pre-assigned by a centralised sequencer** instead
of post-assigned by the storage nodes.  That isolates the variable the
paper's design argument is about.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from ..core.config import FLStoreConfig
from ..core.record import AppendResult, LogEntry, Record
from ..flstore.maintainer import LogMaintainer
from ..flstore.messages import PlaceRecords
from ..flstore.range_map import OwnershipPlan
from ..runtime.actor import Actor
from ..runtime.local import BaseRuntime
from .sequencer import ReservedRange, Sequencer, SequencerRequest

Placer = Callable[[Actor], None]


class CorfuClient(Actor):
    """Client-driven append: reserve positions, then write to the units."""

    def __init__(self, name: str, sequencer: str, plan: OwnershipPlan) -> None:
        super().__init__(name)
        self.sequencer = sequencer
        self.plan = plan
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, List[Record]] = {}
        self._callbacks: Dict[int, Callable[[List[AppendResult]], None]] = {}
        self.records_written = 0

    def append_records(
        self,
        records: List[Record],
        on_done: Optional[Callable[[List[AppendResult]], None]] = None,
    ) -> None:
        request_id = next(self._request_ids)
        self._pending[request_id] = list(records)
        if on_done is not None:
            self._callbacks[request_id] = on_done
        self.send(self.sequencer, SequencerRequest(request_id, count=len(records)))

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, ReservedRange):
            return
        records = self._pending.pop(message.request_id, None)
        if records is None:
            return
        placements: Dict[str, PlaceRecords] = {}
        results: List[AppendResult] = []
        for offset, record in enumerate(records):
            lid = message.start + offset
            owner = self.plan.owner(lid)
            placements.setdefault(owner, PlaceRecords()).placements.append((lid, record))
            results.append(AppendResult(record.rid, lid))
            self.records_written += 1
        for owner, batch in placements.items():
            self.send(owner, batch)
        callback = self._callbacks.pop(message.request_id, None)
        if callback is not None:
            callback(results)


class CorfuLog:
    """A deployed CORFU-style log: one sequencer plus striped storage units."""

    def __init__(
        self,
        runtime: BaseRuntime,
        n_units: int = 3,
        batch_size: int = 1000,
        config: Optional[FLStoreConfig] = None,
        prefix: str = "corfu/",
        placer: Optional[Placer] = None,
        sequencer_grant_cost: Optional[float] = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or FLStoreConfig()
        place = placer or (lambda actor: runtime.register(actor))

        unit_names = [f"{prefix}unit/{i}" for i in range(n_units)]
        self.plan = OwnershipPlan(unit_names, batch_size=batch_size)
        self.units: List[LogMaintainer] = []
        for name in unit_names:
            unit = LogMaintainer(name, self.plan, peers=unit_names, config=self.config)
            place(unit)
            self.units.append(unit)

        self.sequencer = Sequencer(f"{prefix}sequencer", grant_cost=sequencer_grant_cost)
        place(self.sequencer)
        self._client_count = 0
        self._prefix = prefix

    def client(self, name: Optional[str] = None) -> CorfuClient:
        self._client_count += 1
        client_name = name or f"{self._prefix}client/{self._client_count}"
        client = CorfuClient(client_name, self.sequencer.name, self.plan)
        self.runtime.register(client)
        return client

    # -- introspection ----------------------------------------------------- #

    def all_entries(self) -> List[LogEntry]:
        entries = [e for unit in self.units for e in unit.core.stored_entries()]
        entries.sort(key=lambda entry: entry.lid)
        return entries

    def total_records(self) -> int:
        return sum(unit.core.stored_count() for unit in self.units)

    def head_of_log(self) -> int:
        return min(unit.core.head_of_log() for unit in self.units)
