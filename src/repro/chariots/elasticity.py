"""Live elasticity operations (§6.3).

Every pipeline stage scales without disrupting application clients:

* **Completely independent stages** (batchers, receivers, senders) just join
  and get announced to the upstream stage.
* **Filters** and **log maintainers** champion deterministic slices, so
  growing them uses *future reassignment*: the new mapping takes effect at a
  future TOId (filters) or LId (maintainers); old records stay with their
  old champions, and the epoch journal lets readers locate them.
* **Queues** splice into the token exchange loop — one existing queue is
  told to forward the token to the newcomer.

These functions operate on a live :class:`~repro.chariots.pipeline.DatacenterPipeline`
or :class:`~repro.flstore.store.FLStore`; the shared ``OwnershipPlan`` /
``FilterMap`` objects play the role the controller plays in a physical
deployment (distributing mapping updates).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from ..core.errors import ConfigurationError
from ..flstore.maintainer import LogMaintainer
from ..flstore.store import FLStore
from ..runtime.actor import Actor
from .batcher import Batcher
from .filters import FilterStage
from .pipeline import DatacenterPipeline
from .queues import QueueStage

Placer = Callable[[Actor], None]


def _default_placer(pipeline_or_store) -> Placer:
    runtime = pipeline_or_store.runtime
    return lambda actor: runtime.register(actor)


def _future_round_boundary(plan, margin_rounds: int = 2) -> int:
    """A safe LId for a maintainer epoch switch: beyond every cursor.

    The switch must be in the future — past every maintainer's assignment
    cursor — with a safety margin for records already in flight.
    """
    epoch = plan.current_epoch
    round_span = epoch.batch_size * len(epoch.maintainers)
    high = epoch.start_lid
    return high + _ceil_multiple(margin_rounds * round_span + 1, round_span)


def _ceil_multiple(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def expand_maintainers(
    target: Union[DatacenterPipeline, FLStore],
    count: int = 1,
    placer: Optional[Placer] = None,
    from_lid: Optional[int] = None,
) -> List[LogMaintainer]:
    """Add ``count`` log maintainers via future reassignment (§6.3).

    Works on a :class:`DatacenterPipeline` or an :class:`FLStore`.  The new
    epoch keeps the old maintainers and appends the new ones, effective at
    ``from_lid`` (default: a round boundary safely past all cursors).
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    place = placer or _default_placer(target)
    plan = target.plan
    old_names = list(plan.current_epoch.maintainers)
    existing = len(plan.maintainers())
    if isinstance(target, DatacenterPipeline):
        prefix = f"{target.dc_id}/store"
    else:
        prefix = f"{getattr(target, '_prefix', '')}maintainer"
    new_names = [f"{prefix}/{existing + i}" for i in range(count)]
    all_names = old_names + new_names

    if from_lid is None:
        cursors = [
            m.core.next_unassigned
            for m in target.maintainers
            if m.core.next_unassigned is not None
        ]
        boundary = _future_round_boundary(plan)
        epoch = plan.current_epoch
        round_span = epoch.batch_size * len(epoch.maintainers)
        while cursors and boundary <= max(cursors):
            boundary += round_span
        from_lid = boundary

    plan.add_epoch(from_lid, all_names)

    indexer_names = [ix.name for ix in getattr(target, "indexers", [])]
    config = getattr(target, "flstore_config", None) or getattr(target, "config", None)
    added: List[LogMaintainer] = []
    for name in new_names:
        maintainer = LogMaintainer(
            name, plan, peers=all_names, indexers=indexer_names, config=config
        )
        place(maintainer)
        target.maintainers.append(maintainer)
        added.append(maintainer)

    # Existing maintainers must gossip with (and await) the newcomers, and
    # the newcomers must know everyone.
    for maintainer in target.maintainers:
        for name in all_names:
            maintainer.add_peer(name)

    # Chariots pipelines: some sender must ship the new maintainers' records.
    for i, maintainer in enumerate(added):
        senders = getattr(target, "senders", None)
        if senders:
            senders[i % len(senders)].add_maintainer(maintainer.name)
    return added


def expand_filters(
    pipeline: DatacenterPipeline,
    host: str,
    count: int = 1,
    from_toid: Optional[int] = None,
    placer: Optional[Placer] = None,
) -> List[FilterStage]:
    """Add ``count`` filters that share championing of ``host`` (§6.3).

    The reassignment takes effect at ``from_toid`` (default: safely past the
    highest TOId of ``host`` seen so far); records before it stay with the
    old champions, later ones split by TOId residue among old + new.
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    place = placer or _default_placer(pipeline)
    filter_map = pipeline.filter_map
    existing = len(filter_map.filters)
    queue_names = [q.name for q in pipeline.queues]
    new_names = [f"{pipeline.dc_id}/filter/{existing + i}" for i in range(count)]

    added: List[FilterStage] = []
    for name in new_names:
        stage = FilterStage(name, filter_map, queues=queue_names, config=pipeline.pipeline_config)
        place(stage)
        pipeline.filters.append(stage)
        added.append(stage)

    if from_toid is None:
        seen = pipeline.frontier().get(host, 0)
        from_toid = seen + 100  # margin for records already in flight

    current = filter_map.champions_for(host, from_toid)
    filter_map.reassign_host(host, current + new_names, from_toid)
    return added


def expand_queues(
    pipeline: DatacenterPipeline,
    count: int = 1,
    placer: Optional[Placer] = None,
) -> List[QueueStage]:
    """Splice ``count`` new queues into the token loop (§6.3).

    Two tasks, exactly as the paper lists them: (1) an existing queue is
    told to forward the token to the newcomer; (2) the filters learn the new
    queue (no coordination needed — any queue can receive any record).
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    place = placer or _default_placer(pipeline)
    added: List[QueueStage] = []
    for _ in range(count):
        index = len(pipeline.queues)
        name = f"{pipeline.dc_id}/queue/{index}"
        splice_at = pipeline.queues[-1]
        successor = splice_at.next_queue or splice_at.name
        queue = QueueStage(
            name,
            pipeline.dc_id,
            pipeline.plan,
            next_queue=successor,
            frontier_listeners=list(splice_at.frontier_listeners),
            config=pipeline.pipeline_config,
            holds_initial_token=False,
        )
        place(queue)
        splice_at.next_queue = name
        # A previously solo queue now participates in a two-queue ring.
        if successor == splice_at.name and splice_at.holds_token:
            splice_at.set_timer(pipeline.pipeline_config.token_hold_interval, splice_at._pass_token)
        pipeline.queues.append(queue)
        added.append(queue)
        for stage in pipeline.filters:
            stage.add_queue(name)
    return added


def expand_batchers(
    pipeline: DatacenterPipeline,
    count: int = 1,
    placer: Optional[Placer] = None,
) -> List[Batcher]:
    """Add ``count`` batchers and announce them to the receivers (§6.3)."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    place = placer or _default_placer(pipeline)
    added: List[Batcher] = []
    for _ in range(count):
        index = len(pipeline.batchers)
        name = f"{pipeline.dc_id}/batcher/{index}"
        batcher = Batcher(name, pipeline.filter_map, config=pipeline.pipeline_config)
        place(batcher)
        pipeline.batchers.append(batcher)
        pipeline.batcher_names.append(name)
        added.append(batcher)
        for receiver in pipeline.receivers:
            receiver.add_batcher(name)
    return added
