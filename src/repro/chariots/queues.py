"""Queues: stage 4 of the Chariots pipeline (§6.2).

Queues assign LIds while preserving causal order.  A single **token**
circulates round-robin among the queues; it carries the datacenter's
incorporation frontier (max contiguous TOId per host), the next LId, and a
bounded set of deferred records.  The queue holding the token:

1. merges the token's deferred records with its own buffered arrivals;
2. admits every record whose causal dependencies the frontier satisfies
   (externals in per-host TOId order, local drafts by constructing the
   final record with the next local TOId and the current frontier as its
   causality metadata — the distributed counterpart of §6.1's Append);
3. assigns dense LIds and routes each record to the log maintainer that
   owns its position (the queues know the deterministic assignment, §6.2);
4. updates the token and passes it on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.causality import CausalFrontier, DeferredQueue
from ..core.config import PipelineConfig
from ..core.errors import DuplicateRecordError
from ..core.record import DatacenterId, Record, RecordId, freeze_tags
from ..flstore.messages import PlaceRecords
from ..flstore.range_map import OwnershipPlan
from ..runtime.actor import Actor
from .messages import (
    AdmittedBatch,
    DraftCommitBatch,
    DraftCommitted,
    DraftRecord,
    FrontierUpdate,
    Token,
    TokenPass,
)


class QueueStage(Actor):
    """One queue machine of the token ring."""

    def __init__(
        self,
        name: str,
        dc_id: DatacenterId,
        plan: OwnershipPlan,
        next_queue: Optional[str] = None,
        frontier_listeners: Optional[List[str]] = None,
        config: Optional[PipelineConfig] = None,
        holds_initial_token: bool = False,
    ) -> None:
        super().__init__(name)
        self.dc_id = dc_id
        self.plan = plan
        self.next_queue = next_queue  # None = solo queue, token never leaves
        self.frontier_listeners = list(frontier_listeners or [])
        self.config = config or PipelineConfig()
        self._token: Optional[Token] = Token() if holds_initial_token else None
        self._buffered_externals: List[Record] = []
        self._buffered_drafts: List[DraftRecord] = []
        # Deferred records are awaiting causal dependencies and may not be
        # dropped or pushed back upstream; the token ships at most
        # token_deferred_limit of them per pass and every token visit drains
        # the ones whose dependencies arrived.
        self._local_deferred: List[Record] = []  # chariots: bounded-by=token-circulation
        self.records_sequenced = 0

    # ------------------------------------------------------------------ #

    @property
    def holds_token(self) -> bool:
        return self._token is not None

    def on_start(self) -> None:
        if self._token is not None and self.next_queue is not None:
            self.set_timer(self.config.token_hold_interval, self._pass_token)

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, AdmittedBatch):
            if (
                self._token is None
                and self.next_queue is not None
                and len(self._buffered_externals) + len(self._buffered_drafts)
                >= self.config.queue_buffer_limit
            ):
                # High-water mark: a token-less queue over its limit forwards
                # the batch toward the token instead of buffering more.  The
                # filters already round-robin batches across all queues (no
                # per-client stickiness to preserve), delivery is event-loop
                # mediated (no recursion), and the current token holder
                # always accepts, so a forwarded batch terminates there.
                self.send(self.next_queue, message)
                return
            self._buffered_externals.extend(message.externals)
            self._buffered_drafts.extend(message.drafts)
            if self._token is not None:
                self._process()
        elif isinstance(message, TokenPass):
            self._token = message.token
            self._local_deferred.extend(message.token.deferred)
            message.token.deferred = []
            self._process()
            if self.next_queue is not None:
                self.set_timer(self.config.token_hold_interval, self._pass_token)

    # ------------------------------------------------------------------ #
    # Token-holder processing
    # ------------------------------------------------------------------ #

    def _process(self) -> None:
        token = self._token
        assert token is not None
        frontier = CausalFrontier(token.frontier)

        # 1. Externals: admit in causal order, defer the rest.  Pure-draft
        #    batches (the common local hot path) skip the priority queue.
        if self._local_deferred or self._buffered_externals:
            deferred = DeferredQueue()
            for record in self._local_deferred + self._buffered_externals:
                if frontier.is_duplicate(record):
                    continue
                try:
                    deferred.push(record)
                except DuplicateRecordError:
                    continue  # duplicate arrival of a still-deferred record
            self._buffered_externals = []
            ordered = deferred.drain(frontier)
            still_deferred = deferred.peek_all()
        else:
            ordered = []
            still_deferred = []

        # 2. Local drafts: construct final records with the current frontier
        #    as their causality metadata (§6.1 Append, distributed form).
        #    Every draft in the batch shares the same frontier snapshot minus
        #    the local entry (only the local TOId advances inside this loop,
        #    and it is excluded from the vector), so the dependency tuple is
        #    computed once and reused for every dep-free draft.
        commits: List[DraftCommitted] = []
        drafts = self._buffered_drafts
        if drafts:
            dc = self.dc_id
            base_vector = frontier.snapshot()
            base_vector.pop(dc, None)
            base_items = tuple(sorted(base_vector.items()))
            toid = frontier.max_toid(dc)
            for draft in drafts:
                toid += 1
                if draft.deps:
                    vector = dict(base_vector)
                    for host, dep_toid in draft.deps:
                        if host != dc and dep_toid > vector.get(host, 0):
                            vector[host] = dep_toid
                    dep_items = tuple(sorted(vector.items()))
                else:
                    dep_items = base_items
                tags = freeze_tags(dict(draft.tags)) if draft.tags else ()
                record = Record(
                    rid=RecordId(dc, toid),
                    body=draft.body,
                    tags=tags,
                    deps=dep_items,
                )
                ordered.append(record)
                commits.append(DraftCommitted(draft.client, draft.seq, record.rid, -1))
            frontier.advance_host(dc, toid)
            self._buffered_drafts = []

        # 3. Assign LIds and route to the owning maintainers.  Ownership is
        #    constant across a round, so look it up once per run of LIds
        #    instead of once per record.
        if ordered:
            placements: Dict[str, PlaceRecords] = {}
            lid_by_rid: Dict[RecordId, int] = {}
            plan = self.plan
            lid = token.next_lid
            run_end = -1
            target: List[Tuple[int, Record]] = []
            for record in ordered:
                if lid >= run_end:
                    owner = plan.owner(lid)
                    run_end = plan.owned_run_end(lid)
                    message = placements.get(owner)
                    if message is None:
                        message = placements[owner] = PlaceRecords()
                    target = message.placements
                lid_by_rid[record.rid] = lid
                target.append((lid, record))
                lid += 1
            token.next_lid = lid
            self.records_sequenced += len(ordered)
            for owner, message in placements.items():
                self.send(owner, message)
            by_client: Dict[str, DraftCommitBatch] = {}
            for commit in commits:
                commit.lid = lid_by_rid[commit.rid]
                by_client.setdefault(commit.client, DraftCommitBatch()).commits.append(commit)
            for client, batch in by_client.items():
                self.send(client, batch)

        # 4. Update the token; keep deferred overflow local.
        token.frontier = frontier.snapshot()
        self._local_deferred = still_deferred

        if ordered:
            update = FrontierUpdate(token.frontier, token.next_lid)
            for listener in self.frontier_listeners:
                self.send(listener, update)

    def _pass_token(self) -> None:
        token = self._token
        if token is None or self.next_queue is None:
            return
        # Process anything that arrived during the hold interval.
        self._process()
        limit = self.config.token_deferred_limit
        token.deferred = self._local_deferred[:limit]
        self._local_deferred = self._local_deferred[limit:]
        self._token = None
        self.send(self.next_queue, TokenPass(token))

    # ------------------------------------------------------------------ #

    @property
    def deferred_count(self) -> int:
        return len(self._local_deferred)
