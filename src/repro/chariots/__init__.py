"""Chariots: geo-replicated causal shared log via a multi-stage pipeline (§6)."""

from .abstract import AbstractChariots, AbstractDeployment
from .batcher import Batcher
from .client import BlockingChariotsClient, ChariotsClient
from .direct import DirectClient, DirectDeployment
from .filters import FilterCore, FilterMap, FilterStage
from .gc import GcCoordinator
from .messages import DraftRecord, Token
from .pipeline import ChariotsDeployment, DatacenterPipeline
from .queues import QueueStage
from .receiver import Receiver
from .sender import Sender

__all__ = [
    "AbstractChariots",
    "AbstractDeployment",
    "Batcher",
    "BlockingChariotsClient",
    "ChariotsClient",
    "ChariotsDeployment",
    "DatacenterPipeline",
    "DirectClient",
    "DirectDeployment",
    "DraftRecord",
    "FilterCore",
    "FilterMap",
    "FilterStage",
    "GcCoordinator",
    "QueueStage",
    "Receiver",
    "Sender",
    "Token",
]
