"""Batchers: stage 2 of the Chariots pipeline (§6.2).

Batchers buffer records received from local application clients and from
the receivers, grouped per destination filter, and flush a buffer when it
reaches the configured threshold (or on a timer, so light traffic is not
stranded).  Batchers are completely independent of one another — adding one
requires no coordination (§6.3).

Routing must agree with the filters' championing scheme, so both sides use
the shared :class:`~repro.chariots.filters.FilterMap`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.config import PipelineConfig
from ..runtime.actor import Actor
from .filters import FilterMap
from .messages import DraftBatch, DraftRecord, FilterBatch


class Batcher(Actor):
    """Stage 2: buffer and forward records to their champion filters."""

    def __init__(
        self,
        name: str,
        filter_map: FilterMap,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        super().__init__(name)
        self.filter_map = filter_map
        self.config = config or PipelineConfig()
        self._buffers: Dict[str, FilterBatch] = {}
        self.records_batched = 0

    def on_start(self) -> None:
        self.set_timer(self.config.batcher_flush_interval, self._flush_all, periodic=True)

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, DraftBatch):
            self._buffer_drafts(message.drafts)
            self._flush_full()
        elif isinstance(message, FilterBatch):
            # Receivers forward external records wrapped as FilterBatch.
            filter_for_record = self.filter_map.filter_for_record
            for record in message.externals:
                self._buffer_for(filter_for_record(record)).externals.append(record)
            self.records_batched += len(message.externals)
            self._buffer_drafts(message.drafts)
            self._flush_full()
        else:
            return
        # High-water mark across all per-filter buffers: a stream of small
        # batches for many filters can stay under every per-filter flush
        # threshold while the total grows; force a full flush at the cap.
        if self._pending_records() >= self.config.batcher_buffer_limit:
            self._flush_all()

    def _pending_records(self) -> int:
        """Total records currently buffered across every filter."""
        return sum(b.record_count() for b in self._buffers.values())

    def _buffer_drafts(self, drafts: List[DraftRecord]) -> None:
        # Client champions are sticky, so a run of drafts from one client
        # (the dominant arrival pattern) resolves its champion once.
        filter_for_draft = self.filter_map.filter_for_draft
        last_client: Optional[str] = None
        target: List[DraftRecord] = []
        for draft in drafts:
            if draft.client != last_client:
                last_client = draft.client
                target = self._buffer_for(filter_for_draft(draft)).drafts
            target.append(draft)
        self.records_batched += len(drafts)

    def _buffer_for(self, filter_name: str) -> FilterBatch:
        buffer = self._buffers.get(filter_name)
        if buffer is None:
            buffer = FilterBatch()
            self._buffers[filter_name] = buffer
        return buffer

    def _flush_full(self) -> None:
        threshold = self.config.batcher_flush_threshold
        for filter_name in list(self._buffers):
            if self._buffers[filter_name].record_count() >= threshold:
                self._flush(filter_name)

    def _flush_all(self) -> None:
        for filter_name in list(self._buffers):
            if self._buffers[filter_name].record_count() > 0:
                self._flush(filter_name)

    def _flush(self, filter_name: str) -> None:
        batch = self._buffers.pop(filter_name)
        self.send(filter_name, batch)
