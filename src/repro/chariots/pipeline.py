"""One datacenter's Chariots instance: the six-stage pipeline (§6.2).

Builds and wires every stage for a datacenter on any runtime:

    clients / receivers → batchers → filters → queues → log maintainers
                                                      ↘ senders → (peers)

plus the control plane (controller for client sessions, GC coordinator for
the Awareness Table).  Inter-datacenter wiring happens afterwards via
:meth:`DatacenterPipeline.connect_peer` (the deployment object does this).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..core.config import DeploymentSpec, FLStoreConfig, PipelineConfig
from ..core.errors import ConfigurationError
from ..core.record import DatacenterId, KnowledgeVector, LogEntry, RecordId
from ..flstore.controller import Controller
from ..flstore.indexer import Indexer
from ..flstore.maintainer import LogMaintainer
from ..flstore.range_map import OwnershipPlan
from ..runtime.actor import Actor
from ..runtime.local import BaseRuntime
from ..runtime.supervisor import Supervisor
from .batcher import Batcher
from .client import BlockingChariotsClient, ChariotsClient
from .filters import FilterMap, FilterStage
from .gc import GcCoordinator
from .queues import QueueStage
from .receiver import Receiver
from .sender import Sender

Placer = Callable[[Actor], None]


def _partition(items: List[str], n_groups: int) -> List[List[str]]:
    """Deal ``items`` round-robin into ``n_groups`` non-empty-ish groups."""
    return [items[i::n_groups] for i in range(n_groups)]


class DatacenterPipeline:
    """All Chariots components of one datacenter."""

    def __init__(
        self,
        runtime: BaseRuntime,
        dc_id: DatacenterId,
        datacenters: Sequence[DatacenterId],
        spec: Optional[DeploymentSpec] = None,
        batch_size: int = 1000,
        pipeline_config: Optional[PipelineConfig] = None,
        flstore_config: Optional[FLStoreConfig] = None,
        n_indexers: int = 1,
        placer: Optional[Placer] = None,
        transitive_replication: bool = False,
    ) -> None:
        self.runtime = runtime
        self.dc_id = dc_id
        self.datacenters = list(datacenters)
        self.spec = spec or DeploymentSpec()
        self.transitive_replication = transitive_replication
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.flstore_config = flstore_config or FLStoreConfig()
        place = placer or (lambda actor: runtime.register(actor))
        p = f"{dc_id}/"

        maintainer_names = [f"{p}store/{i}" for i in range(self.spec.maintainers)]
        indexer_names = [f"{p}indexer/{i}" for i in range(n_indexers)]
        queue_names = [f"{p}queue/{i}" for i in range(self.spec.queues)]
        filter_names = [f"{p}filter/{i}" for i in range(self.spec.filters)]
        batcher_names = [f"{p}batcher/{i}" for i in range(self.spec.batchers)]
        receiver_names = [f"{p}receiver/{i}" for i in range(self.spec.receivers)]
        sender_names = [f"{p}sender/{i}" for i in range(self.spec.senders)]
        self.gc_name = f"{p}gc"

        self.plan = OwnershipPlan(maintainer_names, batch_size=batch_size)
        self.filter_map = FilterMap(filter_names)
        self._assign_filter_champions(filter_names)

        # Log maintainers (FLStore, placed mode) ------------------------- #
        self.maintainers: List[LogMaintainer] = []
        for name in maintainer_names:
            maintainer = LogMaintainer(
                name,
                self.plan,
                peers=maintainer_names,
                indexers=indexer_names,
                config=self.flstore_config,
            )
            place(maintainer)
            self.maintainers.append(maintainer)

        self.indexers: List[Indexer] = []
        for name in indexer_names:
            indexer = Indexer(name)
            place(indexer)
            self.indexers.append(indexer)

        # GC coordinator (control plane, never on the data path) --------- #
        self.gc = GcCoordinator(
            self.gc_name,
            dc_id,
            self.datacenters,
            maintainers=maintainer_names,
            indexers=indexer_names,
            senders=sender_names,
            config=self.pipeline_config,
        )
        runtime.register(self.gc)

        # Queues: token ring ---------------------------------------------- #
        frontier_listeners = sender_names + [self.gc_name]
        self.queues: List[QueueStage] = []
        for i, name in enumerate(queue_names):
            next_queue = (
                queue_names[(i + 1) % len(queue_names)] if len(queue_names) > 1 else None
            )
            queue = QueueStage(
                name,
                dc_id,
                self.plan,
                next_queue=next_queue,
                frontier_listeners=frontier_listeners,
                config=self.pipeline_config,
                holds_initial_token=(i == 0),
            )
            place(queue)
            self.queues.append(queue)

        # Filters ---------------------------------------------------------- #
        self.filters: List[FilterStage] = []
        for name in filter_names:
            stage = FilterStage(name, self.filter_map, queues=queue_names, config=self.pipeline_config)
            place(stage)
            self.filters.append(stage)

        # Batchers ---------------------------------------------------------- #
        self.batchers: List[Batcher] = []
        for name in batcher_names:
            batcher = Batcher(name, self.filter_map, config=self.pipeline_config)
            place(batcher)
            self.batchers.append(batcher)

        # Receivers ---------------------------------------------------------- #
        self.receivers: List[Receiver] = []
        for name in receiver_names:
            receiver = Receiver(
                name,
                dc_id,
                batchers=batcher_names,
                gc_coordinator=self.gc_name,
                config=self.pipeline_config,
            )
            place(receiver)
            self.receivers.append(receiver)

        # Senders: each ships a partition of the maintainers ---------------- #
        self.senders: List[Sender] = []
        for name, maintainer_group in zip(
            sender_names, _partition(maintainer_names, len(sender_names))
        ):
            sender = Sender(
                name,
                dc_id,
                maintainers=maintainer_group or maintainer_names,
                peer_receivers={},
                config=self.pipeline_config,
                transitive=transitive_replication,
            )
            place(sender)
            self.senders.append(sender)

        # Controller (client sessions) ---------------------------------------- #
        self.controller = Controller(
            f"{p}controller", self.plan, indexers=indexer_names, config=self.flstore_config
        )
        runtime.register(self.controller)

        self.batcher_names = batcher_names
        self.receiver_names = receiver_names
        self._client_count = 0
        self.journals: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def _assign_filter_champions(self, filter_names: List[str]) -> None:
        """Champion each host datacenter per §6.2.

        With at least as many hosts as filters, each filter champions whole
        hosts; with more filters than hosts, a host's records are split among
        its champions by TOId residue (the odd/even scheme).
        """
        n_filters = len(filter_names)
        n_hosts = len(self.datacenters)
        if n_filters <= n_hosts:
            for i, host in enumerate(sorted(self.datacenters)):
                self.filter_map.assign_host(host, [filter_names[i % n_filters]])
        else:
            groups = _partition(filter_names, n_hosts)
            for host, group in zip(sorted(self.datacenters), groups):
                self.filter_map.assign_host(host, group or filter_names[:1])

    # ------------------------------------------------------------------ #
    # Inter-datacenter wiring
    # ------------------------------------------------------------------ #

    def connect_peer(self, peer: "DatacenterPipeline") -> None:
        """Point this datacenter's senders at ``peer``'s receivers."""
        for sender in self.senders:
            sender.add_peer(peer.dc_id, peer.receiver_names)

    # ------------------------------------------------------------------ #
    # Resilience: journaling + supervised crash recovery
    # ------------------------------------------------------------------ #

    def attach_journals(
        self, directory: Optional[str] = None
    ) -> Dict[str, Any]:
        """Give every maintainer a journal (idempotent).

        Call before traffic flows so the journal covers every placement —
        it is what a supervised restart replays.  In-memory by default;
        with ``directory`` each maintainer journals to a JSON-lines file
        there instead — required for process-level recovery, where the
        maintainer writes in a worker process and the parent replays the
        file after a crash (a ``MemoryJournal`` would be pickle-copied
        into the worker, leaving the parent's copy empty).
        """
        # Imported lazily: journal serialisation pulls in the wire codecs,
        # which import this package's message types back.
        from ..flstore.journal import FileJournal, MemoryJournal

        if self.journals is None:
            self.journals = {}
            for maintainer in self.maintainers:
                if directory is not None:
                    path = os.path.join(
                        directory, maintainer.name.replace("/", "_") + ".jsonl"
                    )
                    journal: Any = FileJournal(path)
                else:
                    journal = MemoryJournal()
                maintainer.core.set_journal(journal)
                self.journals[maintainer.name] = journal
        return self.journals

    def recover_maintainer(self, name: str) -> LogMaintainer:
        """Rebuild the maintainer ``name`` from its journal (not registered).

        The replacement resumes exactly where the crashed maintainer's
        journal ends — same storage, same assignment cursor, same postings —
        so no LId is lost or handed out twice.
        """
        from ..flstore.journal import recover_maintainer_core

        if self.journals is None or name not in self.journals:
            raise ConfigurationError(f"no journal attached for maintainer {name!r}")
        journal = self.journals[name]
        # Recover journal-less, then re-attach: replaying a journal into
        # itself would re-append every entry (and on a FileJournal, feed the
        # replay its own output).
        core = recover_maintainer_core(
            name,
            self.plan,
            journal.replay(),
            config=self.flstore_config,
            new_journal=None,
        )
        core.set_journal(journal)
        replacement = LogMaintainer(
            name,
            self.plan,
            peers=[m.name for m in self.maintainers],
            indexers=[ix.name for ix in self.indexers],
            config=self.flstore_config,
        )
        replacement.core = core
        for i, maintainer in enumerate(self.maintainers):
            if maintainer.name == name:
                self.maintainers[i] = replacement
        return replacement

    def supervise(
        self, supervisor: Supervisor, journal_dir: Optional[str] = None
    ) -> None:
        """Register journal-driven restart of every maintainer with ``supervisor``."""
        self.attach_journals(directory=journal_dir)
        for maintainer in self.maintainers:
            supervisor.supervise(
                maintainer.name,
                lambda name=maintainer.name: self.recover_maintainer(name),
            )

    # ------------------------------------------------------------------ #
    # Clients
    # ------------------------------------------------------------------ #

    def client(self, name: Optional[str] = None) -> ChariotsClient:
        self._client_count += 1
        client_name = name or f"{self.dc_id}/client/{self._client_count}"
        client = ChariotsClient(
            client_name,
            self.controller.name,
            batchers=self.batcher_names,
            seed=self._client_count,
        )
        self.runtime.register(client)
        return client

    def blocking_client(self, name: Optional[str] = None) -> BlockingChariotsClient:
        return BlockingChariotsClient(self.client(name), self.runtime)

    # ------------------------------------------------------------------ #
    # Introspection (tests / diagnostics)
    # ------------------------------------------------------------------ #

    def all_entries(self) -> List[LogEntry]:
        entries = [e for m in self.maintainers for e in m.core.stored_entries()]
        entries.sort(key=lambda entry: entry.lid)
        return entries

    def head_of_log(self) -> int:
        return min(m.core.head_of_log() for m in self.maintainers)

    def frontier(self) -> KnowledgeVector:
        """The datacenter's incorporation frontier (from the GC coordinator)."""
        return self.gc.atable.self_row()

    def total_records(self) -> int:
        return sum(m.core.stored_count() for m in self.maintainers)


class ChariotsDeployment:
    """A full multi-datacenter Chariots deployment."""

    def __init__(
        self,
        runtime: BaseRuntime,
        datacenters: Sequence[DatacenterId],
        spec: Optional[DeploymentSpec] = None,
        specs: Optional[Dict[DatacenterId, DeploymentSpec]] = None,
        batch_size: int = 1000,
        pipeline_config: Optional[PipelineConfig] = None,
        flstore_config: Optional[FLStoreConfig] = None,
        n_indexers: int = 1,
        placer: Optional[Placer] = None,
        topology: Optional[Dict[DatacenterId, List[DatacenterId]]] = None,
        transitive: Optional[bool] = None,
    ) -> None:
        """``topology`` maps each datacenter to the peers its senders ship
        to (default: full mesh).  ``transitive`` turns on Replicated
        Dictionary-style forwarding of third-party records — required for
        convergence when the topology is not a full mesh, so it defaults
        to True exactly when a custom topology is given."""
        self.runtime = runtime
        self.datacenters = list(datacenters)
        if transitive is None:
            transitive = topology is not None
        self.transitive = transitive
        self.pipelines: Dict[DatacenterId, DatacenterPipeline] = {}
        for dc in self.datacenters:
            dc_spec = (specs or {}).get(dc, spec)
            self.pipelines[dc] = DatacenterPipeline(
                runtime,
                dc,
                self.datacenters,
                spec=dc_spec,
                batch_size=batch_size,
                pipeline_config=pipeline_config,
                flstore_config=flstore_config,
                n_indexers=n_indexers,
                placer=placer,
                transitive_replication=transitive,
            )
        for src in self.datacenters:
            peers = (
                topology.get(src, []) if topology is not None
                else [dc for dc in self.datacenters if dc != src]
            )
            for dst in peers:
                if src != dst:
                    self.pipelines[src].connect_peer(self.pipelines[dst])

    def __getitem__(self, dc: DatacenterId) -> DatacenterPipeline:
        return self.pipelines[dc]

    def client(self, dc: DatacenterId, name: Optional[str] = None) -> ChariotsClient:
        return self.pipelines[dc].client(name)

    def blocking_client(self, dc: DatacenterId, name: Optional[str] = None) -> BlockingChariotsClient:
        return self.pipelines[dc].blocking_client(name)

    def supervise(
        self,
        supervisor: Optional[Supervisor] = None,
        check_interval: float = 0.05,
        journal_dir: Optional[str] = None,
    ) -> Supervisor:
        """Attach journals everywhere and supervise every log maintainer.

        Creates (and registers) a :class:`~repro.runtime.supervisor.Supervisor`
        unless one is passed in.  Call before running traffic so the journals
        are complete.  ``journal_dir`` switches the maintainers to on-disk
        :class:`~repro.flstore.journal.FileJournal` files (required for
        multiproc worker recovery — see
        :meth:`DatacenterPipeline.attach_journals`).
        """
        if supervisor is None:
            supervisor = Supervisor("supervisor", check_interval=check_interval)
        if supervisor.runtime is None:
            self.runtime.register(supervisor)
        for pipe in self.pipelines.values():
            pipe.supervise(supervisor, journal_dir=journal_dir)
        return supervisor

    # -- convergence helpers (tests) -------------------------------------- #

    def record_sets(self) -> Dict[DatacenterId, Set[RecordId]]:
        return {
            dc: {entry.rid for entry in pipe.all_entries()}
            for dc, pipe in self.pipelines.items()
        }

    def frontiers(self) -> Dict[DatacenterId, Dict[DatacenterId, int]]:
        return {
            dc: {h: t for h, t in pipe.frontier().items() if t > 0}
            for dc, pipe in self.pipelines.items()
        }

    def converged(self) -> bool:
        """All datacenters have incorporated the same records.

        Compares incorporation frontiers (max contiguous TOId per host),
        which stays correct when garbage collection has already truncated
        old records — record *sets* would diverge transiently under GC.
        """
        fronts = list(self.frontiers().values())
        return all(f == fronts[0] for f in fronts[1:])

    def settle(self, max_seconds: float = 30.0, check_interval: float = 0.1) -> bool:
        """Run the deployment until replication converges (or time out)."""
        self.runtime.start()
        deadline = self.runtime.now + max_seconds
        while self.runtime.now < deadline:
            self.runtime.run_for(check_interval)
            if self.converged() and self._pipelines_drained():
                return True
        return self.converged() and self._pipelines_drained()

    def _pipelines_drained(self) -> bool:
        for pipe in self.pipelines.values():
            if any(q.deferred_count for q in pipe.queues):
                return False
            if any(f.core.buffered_count() for f in pipe.filters):
                return False
            # Conservation: every record the queues sequenced must have
            # reached a maintainer (or been GC'd) — otherwise placements
            # are still in flight and reads would race them.
            sequenced = sum(pipe.frontier().values())
            landed = pipe.total_records() + sum(
                m.core.records_collected for m in pipe.maintainers
            )
            if landed < sequenced:
                return False
        return True
