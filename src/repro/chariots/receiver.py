"""Receivers: the remote-ingest side of stage 1 (§6.2).

Receivers accept replication shipments from other datacenters, acknowledge
them, forward the records to the local batchers (round-robin), and report
the shipping datacenter's knowledge vector to the local GC coordinator so
the Awareness Table stays current.  Receivers are completely independent of
one another — scaling the stage is coordination-free (§6.3).
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from ..core.config import PipelineConfig
from ..core.record import DatacenterId
from ..runtime.actor import Actor
from .messages import FilterBatch, PeerVector, ReplicationShipment, ShipmentAck


class Receiver(Actor):
    """Ingests shipments from remote senders into the local pipeline."""

    def __init__(
        self,
        name: str,
        dc_id: DatacenterId,
        batchers: List[str],
        gc_coordinator: Optional[str] = None,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        super().__init__(name)
        self.dc_id = dc_id
        self.batchers = list(batchers)
        self.gc_coordinator = gc_coordinator
        self.config = config or PipelineConfig()
        self._batcher_cycle = itertools.cycle(self.batchers)
        self.records_received = 0
        self.shipments_received = 0

    def add_batcher(self, name: str) -> None:
        """Elasticity: include a newly added batcher in the fan-out (§6.3)."""
        if name not in self.batchers:
            self.batchers.append(name)
            self._batcher_cycle = itertools.cycle(self.batchers)

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, ReplicationShipment):
            return
        self.shipments_received += 1
        self.send(
            sender,
            ShipmentAck(
                maintainer=message.maintainer,
                ship_seq=message.ship_seq,
                upto_lid=message.upto_lid,
                from_dc=self.dc_id,
            ),
        )
        if message.records:
            self.records_received += len(message.records)
            self.send(next(self._batcher_cycle), FilterBatch(externals=list(message.records)))
        if self.gc_coordinator is not None and (message.vector or message.atable):
            self.send(
                self.gc_coordinator,
                PeerVector(message.from_dc, dict(message.vector), matrix=message.atable),
            )
