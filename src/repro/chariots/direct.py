"""Direct (in-process) backend: the abstract solution behind the client API.

For unit tests, prototypes, and notebooks, the full pipeline is overkill —
the §6.1 abstract solution already implements the complete semantics.
:class:`DirectDeployment` wraps one :class:`~repro.chariots.abstract.AbstractChariots`
per datacenter and exposes clients with the *same* blocking interface as
:class:`~repro.chariots.client.BlockingChariotsClient` (``append``,
``read``, ``read_lid``, ``head``), so every application in ``repro.apps``
runs unchanged on either backend.  Replication is an explicit
:meth:`DirectDeployment.replicate` pump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.record import (
    AppendResult,
    DatacenterId,
    LogEntry,
    ReadRules,
)
from .abstract import AbstractChariots, AbstractDeployment


@dataclass
class _ReadReplyShim:
    """Matches the ``ReadReply`` surface application code consumes."""

    entries: List[LogEntry]
    error: Optional[str] = None


class DirectClient:
    """Blocking client over one datacenter's abstract instance."""

    def __init__(self, dc: AbstractChariots, deployment: "DirectDeployment") -> None:
        self._dc = dc
        self._deployment = deployment

    @property
    def datacenter(self) -> DatacenterId:
        return self._dc.dc_id

    def append(
        self,
        body: Any,
        tags: Optional[Mapping[str, Any]] = None,
        deps: Optional[Mapping[DatacenterId, int]] = None,
    ) -> AppendResult:
        result = self._dc.append(body, tags=tags, deps=deps)
        if self._deployment.auto_replicate:
            self._deployment.replicate()
        return result

    def read(self, rules: ReadRules) -> List[LogEntry]:
        return self._dc.read_rules(rules)

    def read_lid(self, lid: int) -> _ReadReplyShim:
        try:
            return _ReadReplyShim([self._dc.read(lid)])
        except Exception as exc:  # matches the actor client's error reply
            return _ReadReplyShim([], error=str(exc))

    def head(self) -> int:
        return self._dc.head_lid()


class DirectDeployment:
    """Multi-datacenter abstract deployment with the application client API.

    ``auto_replicate=True`` propagates after every append — convenient for
    sequential examples.  Turn it off to stage concurrent appends and
    deliver them later with :meth:`replicate` (how the conflict tests drive
    Message Futures).
    """

    def __init__(
        self,
        datacenters: Sequence[DatacenterId],
        auto_replicate: bool = False,
    ) -> None:
        self.abstract = AbstractDeployment(list(datacenters))
        self.datacenters = list(datacenters)
        self.auto_replicate = auto_replicate

    def client(self, dc: DatacenterId) -> DirectClient:
        return DirectClient(self.abstract[dc], self)

    def replicate(self, rounds: int = 64) -> None:
        """Propagate all-pairs until no datacenter learns anything new."""
        self.abstract.sync(max_rounds=rounds)

    def exchange(self, src: DatacenterId, dst: DatacenterId) -> int:
        """One directed propagation step (for adversarial schedules)."""
        return self.abstract.exchange(src, dst)

    def converged(self) -> bool:
        return self.abstract.converged()

    def logs(self) -> Dict[DatacenterId, List[LogEntry]]:
        return {dc: self.abstract[dc].entries() for dc in self.datacenters}
