"""Senders: stage 6 of the Chariots pipeline (§6.2, "Log propagation").

Each sender is responsible for shipping the *local* records held by a subset
of the log maintainers to the receivers of the other datacenters.  A sender
periodically pulls newly persisted entries from its maintainers
(``ReadNewRequest``), keeps them buffered until every peer datacenter has
acknowledged them, and retransmits unacknowledged shipments — duplicate
deliveries are harmless because the remote filters admit exactly once.

Every shipment also carries this datacenter's latest knowledge vector (from
the queues' ``FrontierUpdate`` broadcasts); the receiving side feeds it into
its Awareness Table, which drives garbage collection (§6.1).

Resilience: unacknowledged shipments are retransmitted on the shared
:class:`~repro.core.retry.RetryPolicy` schedule (capped exponential backoff
with seeded jitter, configured by ``PipelineConfig.retransmit_*``), and each
peer datacenter gets a :class:`~repro.core.retry.CircuitBreaker` — after
enough consecutive timeouts the sender stops hammering the partitioned peer,
keeps buffering locally, and probes periodically so catch-up resumes the
moment the partition heals.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import PipelineConfig
from ..core.record import DatacenterId, KnowledgeVector, Record
from ..core.retry import CircuitBreaker, RetryPolicy
from ..flstore.messages import ReadNewReply, ReadNewRequest
from ..runtime.actor import Actor
from .messages import AtableSnapshot, FrontierUpdate, ReplicationShipment, ShipmentAck


@dataclass
class _PeerStream:
    """Replication state toward one peer datacenter for one maintainer."""

    acked_upto: int = -1
    inflight_seq: Optional[int] = None
    inflight_upto: int = -1
    inflight_records: List[Record] = field(default_factory=list)
    sent_at: float = 0.0
    #: Consecutive transmissions of the current shipment without an ack.
    attempts: int = 0
    #: Seconds the current attempt may wait for its ack before retrying.
    retry_after: float = 0.0
    #: Whether the current attempt's timeout was already counted as a failure.
    timed_out: bool = False


class Sender(Actor):
    """Ships local log records to remote datacenters."""

    def __init__(
        self,
        name: str,
        dc_id: DatacenterId,
        maintainers: List[str],
        peer_receivers: Dict[DatacenterId, List[str]],
        config: Optional[PipelineConfig] = None,
        retransmit_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        transitive: bool = False,
    ) -> None:
        super().__init__(name)
        self.dc_id = dc_id
        self.maintainers = list(maintainers)
        self.peer_receivers = {dc: list(rs) for dc, rs in peer_receivers.items()}
        self.config = config or PipelineConfig()
        if retry_policy is not None:
            self.retry_policy = retry_policy
        elif retransmit_timeout is not None:
            # Back-compat shorthand: a bare timeout becomes the backoff base.
            self.retry_policy = RetryPolicy(
                base_delay=retransmit_timeout,
                max_delay=retransmit_timeout * 8,
                multiplier=self.config.retransmit_multiplier,
                jitter=self.config.retransmit_jitter,
                max_attempts=1_000_000,
            )
        else:
            self.retry_policy = self.config.retransmit_policy()
        #: Seeded per-sender RNG: jitter stays deterministic across runs.
        self._rng = random.Random(name)
        self._breakers: Dict[DatacenterId, CircuitBreaker] = {
            dc: self._new_breaker() for dc in self.peer_receivers
        }
        #: Transitive shipping (Replicated Dictionary style): forward
        #: records from *any* host, so partial topologies still converge.
        self.transitive = transitive
        self._vector: KnowledgeVector = {}
        self._atable_matrix = None
        #: Fetched-but-not-globally-acked local records per maintainer.
        self._buffer: Dict[str, List[Tuple[int, Record]]] = {m: [] for m in self.maintainers}
        self._fetch_cursor: Dict[str, int] = {m: -1 for m in self.maintainers}
        self._streams: Dict[Tuple[DatacenterId, str], _PeerStream] = {
            (dc, m): _PeerStream()
            for dc in self.peer_receivers
            for m in self.maintainers
        }
        self._ship_seq = itertools.count(1)
        self._receiver_cycle = {
            dc: itertools.cycle(receivers) for dc, receivers in self.peer_receivers.items()
        }
        self._request_ids = itertools.count(1)
        self._fetch_outstanding: Dict[int, str] = {}
        self._last_vector_sent: Dict[DatacenterId, KnowledgeVector] = {}
        self.records_shipped = 0

    # ------------------------------------------------------------------ #

    def add_maintainer(self, name: str) -> None:
        """Elasticity: start shipping a newly added maintainer's records."""
        if name in self.maintainers:
            return
        self.maintainers.append(name)
        self._buffer[name] = []
        self._fetch_cursor[name] = -1
        for dc in self.peer_receivers:
            self._streams[(dc, name)] = _PeerStream()

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout,
        )

    def breaker(self, dc: DatacenterId) -> CircuitBreaker:
        """The circuit breaker guarding replication toward ``dc``."""
        return self._breakers[dc]

    def add_peer(self, dc: DatacenterId, receivers: List[str]) -> None:
        """Connect a remote datacenter (deployment wiring / elasticity)."""
        self.peer_receivers[dc] = list(receivers)
        self._receiver_cycle[dc] = itertools.cycle(receivers)
        self._breakers.setdefault(dc, self._new_breaker())
        for maintainer in self.maintainers:
            self._streams.setdefault((dc, maintainer), _PeerStream())

    def on_start(self) -> None:
        self.set_timer(self.config.replication_interval, self._tick, periodic=True)

    def _tick(self) -> None:
        if not self.peer_receivers:
            return  # single-datacenter deployment: nothing to replicate
        for maintainer in self.maintainers:
            if len(self._buffer[maintainer]) >= self.config.sender_buffer_limit:
                # High-water mark: stop pulling from the durable log until
                # acks drain the retransmission window.  Records stay in the
                # maintainer's log and the cursor doesn't move, so fetching
                # resumes exactly where it paused once peers catch up.
                continue
            request_id = next(self._request_ids)
            self._fetch_outstanding[request_id] = maintainer
            self.send(
                maintainer,
                ReadNewRequest(
                    request_id,
                    after_lid=self._fetch_cursor[maintainer],
                    limit=self.config.replication_batch_limit,
                ),
            )
        self._ship_all()
        self._heartbeat_vectors()

    def _heartbeat_vectors(self) -> None:
        """Ship a records-free vector update to peers whose view is stale.

        Without this, a datacenter that stops appending would never tell its
        peers what it has incorporated, and garbage collection (which needs
        everyone's knowledge of everyone, §6.1) could stall.
        """
        for dc in self.peer_receivers:
            if self._breakers[dc].state == CircuitBreaker.OPEN:
                continue  # peer is down; shipments will carry the vector later
            if self._vector and self._vector != self._last_vector_sent.get(dc):
                self._last_vector_sent[dc] = dict(self._vector)
                receiver = next(self._receiver_cycle[dc])
                self.send(
                    receiver,
                    ReplicationShipment(
                        from_dc=self.dc_id,
                        sender=self.name,
                        maintainer="__vector__",
                        ship_seq=0,
                        records=[],
                        vector=dict(self._vector),
                        upto_lid=-1,
                        atable=self._atable_matrix,
                    ),
                )

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, ReadNewReply):
            maintainer = self._fetch_outstanding.pop(message.request_id, None)
            if maintainer is None:
                return
            for entry in message.entries:
                # Direct mode ships only locally-generated records (external
                # ones reach the peers from their own hosts over the full
                # mesh); transitive mode forwards everything.
                if entry.record.internal:
                    continue
                if self.transitive or entry.record.host == self.dc_id:
                    self._buffer[maintainer].append((entry.lid, entry.record))
            if message.upto > self._fetch_cursor[maintainer]:
                self._fetch_cursor[maintainer] = message.upto
            self._ship_all()
        elif isinstance(message, FrontierUpdate):
            for host, toid in message.vector.items():
                if toid > self._vector.get(host, 0):
                    self._vector[host] = toid
        elif isinstance(message, AtableSnapshot):
            self._atable_matrix = message.matrix
        elif isinstance(message, ShipmentAck):
            self._on_ack(message)

    # ------------------------------------------------------------------ #

    def _ship_all(self) -> None:
        for (dc, maintainer), stream in self._streams.items():
            self._ship_one(dc, maintainer, stream)

    def _ship_one(self, dc: DatacenterId, maintainer: str, stream: _PeerStream) -> None:
        breaker = self._breakers[dc]
        if stream.inflight_seq is not None:
            if not stream.timed_out:
                if self.now - stream.sent_at < stream.retry_after:
                    return  # still waiting for the ack
                # The current attempt has timed out: count it exactly once.
                stream.timed_out = True
                breaker.record_failure(self.now)
            if not breaker.allow(self.now):
                return  # peer considered down; buffer and wait for a probe
            stream.attempts += 1
            stream.retry_after = self.retry_policy.delay(stream.attempts, self._rng)
            stream.timed_out = False
            self._transmit(dc, maintainer, stream)  # retransmission / probe
            return
        pending = [
            (lid, record)
            for lid, record in self._buffer[maintainer]
            if lid > stream.acked_upto
        ]
        if not pending:
            return
        if not breaker.allow(self.now):
            return  # don't open new shipments toward a dead peer
        pending = pending[: self.config.replication_batch_limit]
        stream.inflight_seq = next(self._ship_seq)
        stream.attempts = 0
        stream.retry_after = self.retry_policy.delay(0, self._rng)
        stream.timed_out = False
        stream.inflight_upto = pending[-1][0]
        # Never echo a datacenter's own records back to it (transitive mode
        # forwards third-party records only; the filters would drop echoes
        # anyway, this just saves the bandwidth).
        stream.inflight_records = [
            record for _lid, record in pending if record.host != dc
        ]
        self._transmit(dc, maintainer, stream)

    def _transmit(self, dc: DatacenterId, maintainer: str, stream: _PeerStream) -> None:
        receiver = next(self._receiver_cycle[dc])
        stream.sent_at = self.now
        self.send(
            receiver,
            ReplicationShipment(
                from_dc=self.dc_id,
                sender=self.name,
                maintainer=maintainer,
                ship_seq=stream.inflight_seq or 0,
                records=list(stream.inflight_records),
                vector=dict(self._vector),
                upto_lid=stream.inflight_upto,
                atable=self._atable_matrix,
            ),
        )
        self.records_shipped += len(stream.inflight_records)

    def _on_ack(self, ack: ShipmentAck) -> None:
        stream = self._streams.get((ack.from_dc, ack.maintainer))
        if stream is None or stream.inflight_seq != ack.ship_seq:
            return  # stale ack (retransmission already superseded it)
        breaker = self._breakers.get(ack.from_dc)
        if breaker is not None:
            breaker.record_success(self.now)
        stream.acked_upto = max(stream.acked_upto, ack.upto_lid)
        stream.inflight_seq = None
        stream.inflight_records = []
        stream.attempts = 0
        stream.timed_out = False
        self._compact(ack.maintainer)
        self._ship_one(ack.from_dc, ack.maintainer, stream)

    def _compact(self, maintainer: str) -> None:
        """Drop buffered records acknowledged by every peer datacenter."""
        if not self.peer_receivers:
            self._buffer[maintainer] = []
            return
        floor = min(
            self._streams[(dc, maintainer)].acked_upto for dc in self.peer_receivers
        )
        self._buffer[maintainer] = [
            (lid, record) for lid, record in self._buffer[maintainer] if lid > floor
        ]

    # ------------------------------------------------------------------ #

    def buffered_records(self) -> int:
        return sum(len(b) for b in self._buffer.values())
