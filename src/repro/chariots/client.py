"""Chariots application client (§3's interface over the full pipeline).

Reads, head-of-log queries, and tag lookups reuse the FLStore client logic
(the log maintainers and indexers are FLStore components); appends enter
the pipeline as draft records via the batchers and complete when the queue
stage reports the assigned TOId and LId.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..core.record import AppendResult, DatacenterId, freeze_tags
from ..flstore.client import BlockingFLStoreClient, FLStoreClient
from ..runtime.local import BaseRuntime
from .messages import DraftBatch, DraftCommitBatch, DraftCommitted, DraftRecord

Callback = Callable[[Any], None]


class ChariotsClient(FLStoreClient):
    """Client of one datacenter's Chariots instance."""

    def __init__(
        self,
        name: str,
        controller: str,
        batchers: List[str],
        seed: int = 0,
    ) -> None:
        super().__init__(name, controller, seed=seed)
        self.batchers = list(batchers)
        # Stagger the starting batcher per client so load spreads (§6.2).
        offset = seed % len(self.batchers) if self.batchers else 0
        self._batcher_cycle = itertools.cycle(
            self.batchers[offset:] + self.batchers[:offset]
        )
        self._draft_seq = itertools.count(1)
        self._pending_commits: Dict[int, Callback] = {}

    # ------------------------------------------------------------------ #
    # Append (§3): via the pipeline, not directly to maintainers
    # ------------------------------------------------------------------ #

    def append(  # type: ignore[override]
        self,
        body: Any,
        tags: Optional[Mapping[str, Any]] = None,
        deps: Optional[Mapping[DatacenterId, int]] = None,
        on_done: Optional[Callback] = None,
        min_lid: Optional[int] = None,  # accepted for interface parity; unused
    ) -> int:
        """Append one record; ``on_done`` receives an :class:`AppendResult`.

        ``deps`` declares explicit causal dependencies on records from other
        datacenters (their host → TOId), e.g. after reading them.  Returns
        the draft sequence number (mostly useful for tests).
        """
        seq = next(self._draft_seq)
        draft = DraftRecord(
            client=self.name,
            seq=seq,
            body=body,
            tags=freeze_tags(tags),
            deps=tuple(sorted((deps or {}).items())),
        )
        if on_done is not None:
            self._pending_commits[seq] = on_done
        self.send(next(self._batcher_cycle), DraftBatch([draft]))
        return seq

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, DraftCommitBatch):
            for commit in message.commits:
                self._handle_commit(commit)
        elif isinstance(message, DraftCommitted):
            self._handle_commit(message)
        else:
            super().on_message(sender, message)

    def _handle_commit(self, commit: DraftCommitted) -> None:
        handler = self._pending_commits.pop(commit.seq, None)
        if handler is not None:
            handler(AppendResult(commit.rid, commit.lid))


class BlockingChariotsClient(BlockingFLStoreClient):
    """Synchronous facade over :class:`ChariotsClient`."""

    client: ChariotsClient

    def __init__(self, client: ChariotsClient, runtime: BaseRuntime) -> None:
        super().__init__(client, runtime)

    def append(  # type: ignore[override]
        self,
        body: Any,
        tags: Optional[Mapping[str, Any]] = None,
        deps: Optional[Mapping[DatacenterId, int]] = None,
    ) -> AppendResult:
        return self._await(
            lambda cb: self.client.append(body, tags=tags, deps=deps, on_done=cb)
        )
