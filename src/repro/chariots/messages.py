"""Protocol messages for the Chariots multi-datacenter pipeline (§6.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.record import DatacenterId, KnowledgeVector, Record, RecordId
from ..runtime.messages import Payload


@dataclass(frozen=True, slots=True)
class DraftRecord:
    """A locally-appended record before the queue assigns its TOId/LId.

    The paper's abstract solution constructs the final record (host id,
    TOId, causality) at append time (§6.1); in the distributed pipeline that
    construction happens at the queue stage, so what flows from clients
    through batchers and filters is this draft.  ``(client, seq)`` is dense
    per client and lets the filters guarantee exactly-once admission and
    per-client FIFO.
    """

    client: str
    seq: int
    body: Any
    tags: Tuple[Tuple[str, Any], ...] = ()
    deps: Tuple[Tuple[DatacenterId, int], ...] = ()

    def size_bytes(self, default_body_size: int = 512) -> int:
        if isinstance(self.body, bytes):
            body = len(self.body)
        elif isinstance(self.body, str):
            body = len(self.body.encode("utf-8"))
        else:
            body = default_body_size
        return body + 32


@dataclass(slots=True)
class DraftBatch(Payload):
    """Client → batcher: locally created records entering the pipeline."""

    drafts: List[DraftRecord] = field(default_factory=list)

    def record_count(self) -> int:
        return len(self.drafts)

    def wire_size(self, record_size: int = 512) -> int:
        return 64 + sum(d.size_bytes(record_size) for d in self.drafts)


@dataclass(slots=True)
class FilterBatch(Payload):
    """Batcher → filter: mixed batch for the filter's championed slices."""

    drafts: List[DraftRecord] = field(default_factory=list)
    externals: List[Record] = field(default_factory=list)

    def record_count(self) -> int:
        return len(self.drafts) + len(self.externals)

    def wire_size(self, record_size: int = 512) -> int:
        return 64 + sum(d.size_bytes(record_size) for d in self.drafts) + sum(
            r.size_bytes(record_size) for r in self.externals
        )


@dataclass(slots=True)
class AdmittedBatch(Payload):
    """Filter → queue: records that passed uniqueness/order checks."""

    drafts: List[DraftRecord] = field(default_factory=list)
    externals: List[Record] = field(default_factory=list)

    def record_count(self) -> int:
        return len(self.drafts) + len(self.externals)

    def wire_size(self, record_size: int = 512) -> int:
        return 64 + sum(d.size_bytes(record_size) for d in self.drafts) + sum(
            r.size_bytes(record_size) for r in self.externals
        )


@dataclass(slots=True)
class Token:
    """The queue-stage token (§6.2, "Queues").

    Carries the datacenter's incorporation frontier (max contiguous TOId per
    host datacenter), the next LId to assign, and a bounded set of deferred
    records whose causal dependencies were unsatisfied at the last holder.
    """

    frontier: KnowledgeVector = field(default_factory=dict)
    next_lid: int = 0
    deferred: List[Record] = field(default_factory=list)


@dataclass(slots=True)
class TokenPass(Payload):
    """Queue → next queue: hand over the token (round-robin, §6.2)."""

    token: Token

    def record_count(self) -> int:
        return len(self.token.deferred)

    def wire_size(self, record_size: int = 512) -> int:
        vector_bytes = 16 * max(1, len(self.token.frontier))
        return 64 + vector_bytes + sum(r.size_bytes(record_size) for r in self.token.deferred)


@dataclass(slots=True)
class DraftCommitted:
    """Queue → client: a draft's assigned identity (the append ack of §3)."""

    client: str
    seq: int
    rid: RecordId
    lid: int


@dataclass(slots=True)
class DraftCommitBatch:
    """Queue → client: assigned identities for a batch of the client's drafts."""

    commits: List[DraftCommitted] = field(default_factory=list)


@dataclass(slots=True)
class FrontierUpdate:
    """Queue → senders / GC coordinator: latest incorporation state."""

    vector: KnowledgeVector
    next_lid: int


@dataclass(slots=True)
class ReplicationShipment(Payload):
    """Sender → remote receiver: records plus our knowledge state.

    ``ship_seq`` orders shipments per (sender, maintainer) stream so the ack
    protocol can retransmit losslessly; duplicate delivery is harmless — the
    remote filters enforce exactly-once admission.  ``atable`` optionally
    carries the sending datacenter's full Awareness Table (the abstract
    solution ships it with every propagation, §6.1), which lets garbage
    collection converge even over partial replication topologies.
    """

    from_dc: DatacenterId
    sender: str
    maintainer: str
    ship_seq: int
    records: List[Record] = field(default_factory=list)
    vector: KnowledgeVector = field(default_factory=dict)
    upto_lid: int = -1
    atable: Optional[Dict[DatacenterId, Dict[DatacenterId, int]]] = None


@dataclass(slots=True)
class AtableSnapshot:
    """GC coordinator → local senders: the current Awareness Table."""

    matrix: Dict[DatacenterId, Dict[DatacenterId, int]] = field(default_factory=dict)


@dataclass(slots=True)
class ShipmentAck:
    """Receiver → sender: shipment received and handed to the batchers."""

    maintainer: str
    ship_seq: int
    upto_lid: int
    from_dc: DatacenterId = ""


@dataclass(slots=True)
class PeerVector:
    """Receiver → GC coordinator: a peer datacenter's knowledge state."""

    peer: DatacenterId
    vector: KnowledgeVector = field(default_factory=dict)
    matrix: Optional[Dict[DatacenterId, Dict[DatacenterId, int]]] = None
