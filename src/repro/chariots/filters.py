"""Filters: stage 3 of the Chariots pipeline (§6.2).

Each filter champions a slice of the record space and guarantees
*exactly-once, in-order* admission for it:

* **External records** — the championing scheme is the shared
  :class:`FilterMap` (also consulted by the batchers): each host datacenter
  maps to one or more filters, and when several filters share a host they
  split it by TOId residue (the paper's odd/even example).  Per championed
  (host, slice) the filter tracks the next expected TOId: the expected
  record is admitted, earlier ones are duplicates (dropped), later ones
  wait in a reorder buffer until the gap fills — WAN shipments arrive out
  of order and retransmissions duplicate.
* **Drafts** — per client, the same scheme over the client's dense
  sequence numbers: exactly-once admission and per-client FIFO.

Filters never talk to each other, which is what makes the stage seamlessly
scalable (§6.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import PipelineConfig
from ..core.errors import ConfigurationError
from ..core.record import DatacenterId, Record
from ..runtime.actor import Actor
from .messages import AdmittedBatch, DraftRecord, FilterBatch


def _stable_hash(text: str) -> int:
    """Deterministic FNV-1a hash (``hash()`` is salted per process)."""
    value = 2166136261
    for ch in text.encode("utf-8"):
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    return value


class FilterMap:
    """Deterministic champion mapping shared by batchers and filters.

    In a physical deployment this mapping is distributed by the controller;
    here the datacenter's batchers and filters share one instance, which
    keeps them consistent by construction.

    External records: per host datacenter, an epoch list
    ``(effective_from_toid, champion filters)``; within an epoch, a host
    with ``k`` champions is split by TOId residue.  Reassignments are
    scheduled at a *future* TOId (§6.3, "future reassignment"), giving
    batchers time to learn the change before it takes effect.

    Drafts: clients are stickily assigned a champion on first sight
    (deterministic hash over the filters present at that moment), so a
    client's dedup state never migrates.
    """

    def __init__(self, filters: List[str]) -> None:
        if not filters:
            raise ConfigurationError("FilterMap needs at least one filter")
        self._filters = list(filters)
        self._host_epochs: Dict[DatacenterId, List[Tuple[int, List[str]]]] = {}
        self._client_champion: Dict[str, str] = {}

    @property
    def filters(self) -> List[str]:
        return list(self._filters)

    # -- configuration ---------------------------------------------------- #

    def assign_host(self, host: DatacenterId, filters: List[str]) -> None:
        """Initial championing of ``host`` (effective from TOId 1)."""
        self._validate_filters(filters)
        if host in self._host_epochs:
            raise ConfigurationError(f"host {host!r} already assigned; use reassign_host")
        self._host_epochs[host] = [(1, list(filters))]

    def reassign_host(
        self, host: DatacenterId, filters: List[str], from_toid: int
    ) -> None:
        """Future reassignment: ``host`` TOIds >= ``from_toid`` move to
        ``filters`` (§6.3)."""
        self._validate_filters(filters, allow_new=True)
        epochs = self._host_epochs.setdefault(host, [(1, list(self._filters))])
        if from_toid <= epochs[-1][0]:
            raise ConfigurationError(
                f"reassignment at TOId {from_toid} is not in the future "
                f"(last epoch starts at {epochs[-1][0]})"
            )
        epochs.append((from_toid, list(filters)))

    def add_filter(self, name: str) -> None:
        if name not in self._filters:
            self._filters.append(name)

    def _validate_filters(self, filters: List[str], allow_new: bool = False) -> None:
        if not filters:
            raise ConfigurationError("champion list cannot be empty")
        if allow_new:
            for name in filters:
                self.add_filter(name)
        else:
            unknown = [f for f in filters if f not in self._filters]
            if unknown:
                raise ConfigurationError(f"unknown filters {unknown}")

    # -- lookups ------------------------------------------------------------ #

    def _champions(self, host: DatacenterId, toid: int) -> List[str]:
        epochs = self._host_epochs.get(host)
        if not epochs:
            return self._filters
        candidates = epochs[0][1]
        for from_toid, filters in epochs:
            if toid >= from_toid:
                candidates = filters
            else:
                break
        return candidates

    def champions_for(self, host: DatacenterId, toid: int) -> List[str]:
        """All filters championing ``host`` at ``toid`` (the slice set)."""
        return list(self._champions(host, toid))

    def filter_for(self, host: DatacenterId, toid: int) -> str:
        """Champion filter of external record ``<host, toid>``."""
        candidates = self._champions(host, toid)
        if len(candidates) == 1:
            return candidates[0]
        return candidates[toid % len(candidates)]

    def filter_for_record(self, record: Record) -> str:
        return self.filter_for(record.host, record.toid)

    def next_toid_for(self, host: DatacenterId, after_toid: int, filter_name: str) -> int:
        """Smallest TOId > ``after_toid`` of ``host`` championed by
        ``filter_name``.  This is the filter's expected-TOId stepping; it
        remains correct across residue slicing and epoch changes."""
        toid = after_toid + 1
        # The champion set has bounded size; a match occurs within one full
        # residue cycle of each epoch the scan crosses.
        for _ in range(1_000_000):  # defensive bound
            if self.filter_for(host, toid) == filter_name:
                return toid
            toid += 1
        raise ConfigurationError(  # pragma: no cover - defensive
            f"filter {filter_name!r} never champions host {host!r} past {after_toid}"
        )

    def filter_for_draft(self, draft: DraftRecord) -> str:
        champion = self._client_champion.get(draft.client)
        if champion is None:
            champion = self._filters[_stable_hash(draft.client) % len(self._filters)]
            self._client_champion[draft.client] = champion
        return champion

    def sole_champion(self, host: DatacenterId) -> Optional[str]:
        """The one filter championing *every* TOId of ``host``, or ``None``.

        Only the unsplit, never-reassigned case qualifies (one epoch, one
        champion — or no epoch and a single filter overall).  In that case
        the host's championed TOIds are dense, which lets
        :meth:`FilterCore.offer_externals` admit in-order runs without the
        per-record ``next_toid_for`` stepping.
        """
        epochs = self._host_epochs.get(host)
        if epochs is None:
            return self._filters[0] if len(self._filters) == 1 else None
        if len(epochs) == 1 and len(epochs[0][1]) == 1:
            return epochs[0][1][0]
        return None


class FilterCore:
    """Pure-logic uniqueness/ordering state for one filter."""

    def __init__(self, name: str, filter_map: FilterMap) -> None:
        self.name = name
        self.filter_map = filter_map
        self._next_toid: Dict[DatacenterId, int] = {}
        self._reorder: Dict[DatacenterId, Dict[int, Record]] = {}
        self._next_seq: Dict[str, int] = {}
        self._draft_reorder: Dict[str, Dict[int, DraftRecord]] = {}
        #: Records this filter no longer champions (a future reassignment
        #: took effect); the stage forwards them to the current champion.
        self.misrouted: List[Record] = []
        self.duplicates_dropped = 0
        self.records_admitted = 0

    # -- external records ------------------------------------------------ #

    def _expected_toid(self, host: DatacenterId) -> int:
        """Next expected TOId for ``host``, revalidated against the
        (possibly reassigned) champion map."""
        expected = self._next_toid.get(host)
        if expected is None:
            expected = self.filter_map.next_toid_for(host, 0, self.name)
            self._next_toid[host] = expected
        if self.filter_map.filter_for(host, expected) != self.name:
            # A future reassignment moved our slice boundary: skip to our
            # next TOId under the new mapping and hand misplaced buffer
            # entries over to their new champions.
            expected = self.filter_map.next_toid_for(host, expected - 1, self.name)
            self._next_toid[host] = expected
            self._sweep_misrouted(host)
        return expected

    def _sweep_misrouted(self, host: DatacenterId) -> None:
        buffer = self._reorder.get(host)
        if not buffer:
            return
        for toid in list(buffer):
            if self.filter_map.filter_for(host, toid) != self.name:
                self.misrouted.append(buffer.pop(toid))

    def take_misrouted(self) -> List[Record]:
        """Drain records awaiting forwarding to their current champion."""
        out, self.misrouted = self.misrouted, []
        return out

    def offer_external(self, record: Record) -> List[Record]:
        """Admit ``record`` if it is next in its host's championed slice.

        Returns the records released (the offered one plus any buffered
        successors it unblocks), in slice order.  Records this filter does
        not champion (reassignment races) land in :meth:`take_misrouted`.
        """
        host = record.host
        expected = self._expected_toid(host)
        if self.filter_map.filter_for_record(record) != self.name:
            self.misrouted.append(record)
            return []
        if record.toid < expected:
            self.duplicates_dropped += 1
            return []
        buffer = self._reorder.setdefault(host, {})
        if record.toid > expected:
            if record.toid in buffer:
                self.duplicates_dropped += 1
            else:
                buffer[record.toid] = record
            return []
        released = [record]
        self.records_admitted += 1
        expected = self.filter_map.next_toid_for(host, expected, self.name)
        while expected in buffer:
            released.append(buffer.pop(expected))
            self.records_admitted += 1
            expected = self.filter_map.next_toid_for(host, expected, self.name)
        self._next_toid[host] = expected
        return released

    def offer_externals(self, records: List[Record]) -> List[Record]:
        """Batch form of :meth:`offer_external`.

        Dense in-order runs from a sole-champion host — the WAN replication
        hot path, where a shipment carries one host's records in TOId order —
        are admitted as a slice, skipping the per-record champion check,
        reorder-buffer probe and ``next_toid_for`` stepping.  Anything else
        falls back to the per-record path, so semantics are unchanged.
        """
        released: List[Record] = []
        i = 0
        n = len(records)
        fm = self.filter_map
        next_toid = self._next_toid
        while i < n:
            record = records[i]
            host = record.host
            if fm.sole_champion(host) != self.name:
                released.extend(self.offer_external(record))
                i += 1
                continue
            expected = next_toid.get(host, 1)
            if record.toid != expected or self._reorder.get(host):
                released.extend(self.offer_external(record))
                i += 1
                continue
            toid = expected
            j = i
            while j < n:
                r = records[j]
                if r.host != host or r.toid != toid:
                    break
                toid += 1
                j += 1
            released.extend(records[i:j])
            self.records_admitted += j - i
            next_toid[host] = toid
            i = j
        return released

    # -- drafts ----------------------------------------------------------- #

    def offer_draft(self, draft: DraftRecord) -> List[DraftRecord]:
        """Admit a local draft exactly once, in client-sequence order."""
        expected = self._next_seq.get(draft.client, 1)
        if draft.seq < expected:
            self.duplicates_dropped += 1
            return []
        buffer = self._draft_reorder.setdefault(draft.client, {})
        if draft.seq > expected:
            if draft.seq in buffer:
                self.duplicates_dropped += 1
            else:
                buffer[draft.seq] = draft
            return []
        released = [draft]
        self.records_admitted += 1
        expected += 1
        while expected in buffer:
            released.append(buffer.pop(expected))
            self.records_admitted += 1
            expected += 1
        self._next_seq[draft.client] = expected
        return released

    def offer_drafts(self, drafts: List[DraftRecord]) -> List[DraftRecord]:
        """Batch form of :meth:`offer_draft`.

        Consecutive drafts from the same client with dense, in-order
        sequence numbers — the local-append hot path — are admitted as a
        slice with one bookkeeping update; out-of-order or interleaved
        drafts fall back to the per-record path.
        """
        released: List[DraftRecord] = []
        i = 0
        n = len(drafts)
        next_seq = self._next_seq
        while i < n:
            draft = drafts[i]
            client = draft.client
            expected = next_seq.get(client, 1)
            if draft.seq != expected or self._draft_reorder.get(client):
                released.extend(self.offer_draft(draft))
                i += 1
                continue
            seq = expected
            j = i
            while j < n:
                d = drafts[j]
                if d.client != client or d.seq != seq:
                    break
                seq += 1
                j += 1
            released.extend(drafts[i:j])
            self.records_admitted += j - i
            next_seq[client] = seq
            i = j
        return released

    # -- introspection ----------------------------------------------------- #

    def buffered_count(self) -> int:
        return sum(len(b) for b in self._reorder.values()) + sum(
            len(b) for b in self._draft_reorder.values()
        )


class FilterStage(Actor):
    """Actor adapter for :class:`FilterCore`; fans admitted records to queues."""

    def __init__(
        self,
        name: str,
        filter_map: FilterMap,
        queues: List[str],
        config: Optional[PipelineConfig] = None,
    ) -> None:
        super().__init__(name)
        self.core = FilterCore(name, filter_map)
        self.queues = list(queues)
        self.config = config or PipelineConfig()
        self._queue_cycle = itertools.cycle(self.queues)

    def add_queue(self, name: str) -> None:
        """Elasticity: include a newly added queue in the fan-out (§6.3)."""
        if name not in self.queues:
            self.queues.append(name)
            self._queue_cycle = itertools.cycle(self.queues)

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, FilterBatch):
            return
        admitted = AdmittedBatch()
        if message.externals:
            admitted.externals.extend(self.core.offer_externals(message.externals))
        if message.drafts:
            admitted.drafts.extend(self.core.offer_drafts(message.drafts))
        if admitted.record_count() > 0:
            self.send(next(self._queue_cycle), admitted)
        # Reassignment races: pass records we no longer champion onward.
        forwards: Dict[str, FilterBatch] = {}
        for record in self.core.take_misrouted():
            champion = self.core.filter_map.filter_for_record(record)
            forwards.setdefault(champion, FilterBatch()).externals.append(record)
        for champion, batch in forwards.items():
            self.send(champion, batch)
