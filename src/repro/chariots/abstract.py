"""The abstract single-node solution of §6.1.

This is the paper's reference model: each datacenter is "a machine"
manipulating a log, an Awareness Table, and a priority queue of deferred
records under a single thread of control.  The distributed pipeline (§6.2)
must be observationally equivalent to this model — the test suite drives
random workloads through both and compares the outcomes.

It is also a perfectly usable small-scale backend: the application layer
(Hyksos, the stream processor, Message Futures/Helios) runs against either
this or the full pipeline through the same shared-log interface.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.atable import AwarenessTable
from ..core.causality import CausalFrontier, DeferredQueue
from ..core.errors import GarbageCollectedError, LidOutOfRangeError
from ..core.record import (
    AppendResult,
    DatacenterId,
    KnowledgeVector,
    LogEntry,
    ReadRules,
    Record,
)


class AbstractChariots:
    """One datacenter of the abstract solution: log + ATable + deferred queue."""

    def __init__(self, dc_id: DatacenterId, datacenters: Iterable[DatacenterId]) -> None:
        self.dc_id = dc_id
        self.atable = AwarenessTable(dc_id, datacenters)
        self.frontier = CausalFrontier()
        self.deferred = DeferredQueue()
        self._log: List[Record] = []
        self._base_lid = 0  # first LId still present (advances under GC)

    # ------------------------------------------------------------------ #
    # Event 2: Append (§6.1)
    # ------------------------------------------------------------------ #

    def append(
        self,
        body: Any,
        tags: Optional[Mapping[str, Any]] = None,
        deps: Optional[Mapping[DatacenterId, int]] = None,
    ) -> AppendResult:
        """Append a locally-generated record.

        The record's causality metadata is the datacenter's incorporation
        frontier at append time (everything earlier in this log happens
        before it), merged with any explicit dependencies the caller read
        elsewhere.
        """
        toid = self.atable.get(self.dc_id, self.dc_id) + 1
        vector = self.frontier.snapshot()
        vector.pop(self.dc_id, None)  # implicit via the TOId chain
        for host, dep_toid in (deps or {}).items():
            if host != self.dc_id and dep_toid > vector.get(host, 0):
                vector[host] = dep_toid
        record = Record.make(self.dc_id, toid, body, tags=tags, deps=vector)
        self.atable.record_appended(toid)
        self.frontier.advance(record)
        self._log.append(record)
        return AppendResult(record.rid, self.head_lid())

    # ------------------------------------------------------------------ #
    # Event 3: Read (§6.1)
    # ------------------------------------------------------------------ #

    def read(self, lid: int) -> LogEntry:
        if lid < self._base_lid:
            raise GarbageCollectedError(lid, self._base_lid)
        index = lid - self._base_lid
        if index >= len(self._log):
            raise LidOutOfRangeError(lid, self.head_lid())
        return LogEntry(lid, self._log[index])

    def read_rules(self, rules: ReadRules) -> List[LogEntry]:
        span = range(len(self._log))
        order = reversed(span) if rules.most_recent else iter(span)
        matches: List[LogEntry] = []
        for index in order:
            entry = LogEntry(self._base_lid + index, self._log[index])
            if rules.matches(entry):
                matches.append(entry)
                if rules.limit is not None and len(matches) >= rules.limit:
                    break
        return matches

    def head_lid(self) -> int:
        """LId of the newest record (-1 when the log is empty)."""
        return self._base_lid + len(self._log) - 1

    def entries(self) -> List[LogEntry]:
        return [LogEntry(self._base_lid + i, r) for i, r in enumerate(self._log)]

    def records(self) -> List[Record]:
        return list(self._log)

    def __len__(self) -> int:
        return len(self._log)

    # ------------------------------------------------------------------ #
    # Event 4: Propagate (§6.1)
    # ------------------------------------------------------------------ #

    def snapshot_for(
        self, peer: DatacenterId
    ) -> Tuple[List[Record], Dict[DatacenterId, Dict[DatacenterId, int]]]:
        """Records ``peer`` lacks (per our ATable) plus our ATable snapshot.

        Shipping is transitive (Replicated Dictionary style): records from
        *any* host the peer has not seen are included, so partial topologies
        still converge.
        """
        missing = [
            record
            for record in self._log
            if not self.atable.peer_knows(peer, record.rid)
        ]
        return missing, self.atable.as_matrix()

    # ------------------------------------------------------------------ #
    # Event 5: Reception (§6.1, Figure 5)
    # ------------------------------------------------------------------ #

    def receive(
        self,
        sender: DatacenterId,
        records: Sequence[Record],
        matrix: Optional[Dict[DatacenterId, Dict[DatacenterId, int]]] = None,
    ) -> List[Record]:
        """Incorporate a propagation: staging buffer → log or deferred queue.

        Returns the records incorporated into the log by this reception (in
        incorporation order).  Duplicates are ignored; records with
        unsatisfied dependencies park in the deferred priority queue.
        """
        incorporated: List[Record] = []
        for record in records:
            if self.frontier.is_duplicate(record) or record.rid in self.deferred:
                continue
            if self.frontier.admissible(record):
                self.frontier.advance(record)
                self._incorporate(record)
                incorporated.append(record)
            else:
                self.deferred.push(record)
        for record in self.deferred.drain(self.frontier):
            self._incorporate(record)
            incorporated.append(record)
        if matrix is not None:
            self.atable.merge(sender, matrix)
        return incorporated

    def _incorporate(self, record: Record) -> None:
        self._log.append(record)
        self.atable.record_incorporated(record.rid)

    # ------------------------------------------------------------------ #
    # Garbage collection (§6.1)
    # ------------------------------------------------------------------ #

    def collect_garbage(self, keep_records: int = 0) -> int:
        """Drop the longest prefix in which every record is known everywhere.

        ``keep_records`` retains at least that many newest records
        regardless.  Returns the number of records collected.
        """
        gc_vector = self.atable.gc_vector()
        limit = len(self._log) - keep_records
        dropped = 0
        while dropped < limit:
            record = self._log[dropped]
            if gc_vector.get(record.host, 0) < record.toid:
                break
            dropped += 1
        if dropped:
            del self._log[:dropped]
            self._base_lid += dropped
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def base_lid(self) -> int:
        return self._base_lid

    def knowledge(self) -> KnowledgeVector:
        return self.frontier.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AbstractChariots {self.dc_id!r} len={len(self._log)}>"


class AbstractDeployment:
    """A set of abstract datacenters plus a manual replication pump.

    ``sync()`` propagates snapshots pairwise until no datacenter learns
    anything new — a fixed point where all logs hold the same record set.
    Tests use :meth:`exchange` for single-step, adversarially-ordered
    deliveries.
    """

    def __init__(self, datacenters: Sequence[DatacenterId]) -> None:
        if len(set(datacenters)) != len(datacenters):
            raise ValueError("duplicate datacenter ids")
        self.dcs: Dict[DatacenterId, AbstractChariots] = {
            dc: AbstractChariots(dc, datacenters) for dc in datacenters
        }

    def __getitem__(self, dc: DatacenterId) -> AbstractChariots:
        return self.dcs[dc]

    def exchange(self, src: DatacenterId, dst: DatacenterId) -> int:
        """One propagation from ``src`` to ``dst``; returns records learned."""
        records, matrix = self.dcs[src].snapshot_for(dst)
        incorporated = self.dcs[dst].receive(src, records, matrix)
        return len(incorporated)

    def sync(self, max_rounds: int = 64) -> None:
        """Propagate all-pairs until convergence."""
        for _ in range(max_rounds):
            learned = 0
            for src in self.dcs:
                for dst in self.dcs:
                    if src != dst:
                        learned += self.exchange(src, dst)
            if learned == 0:
                return
        raise RuntimeError("abstract deployment failed to converge")

    def converged(self) -> bool:
        """All logs hold the same record set."""
        record_sets = [
            {record.rid for record in dc.records()} for dc in self.dcs.values()
        ]
        return all(s == record_sets[0] for s in record_sets[1:])
