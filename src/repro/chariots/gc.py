"""Garbage collection coordinator (§6.1, "Garbage collection").

A record may be collected at a datacenter only once *every* datacenter is
known to have it.  The coordinator maintains the datacenter's Awareness
Table: its own row comes from the queues' ``FrontierUpdate`` broadcasts, the
peers' rows from the knowledge vectors attached to inbound replication
shipments.  On each sweep it computes the per-host GC frontier (the minimum
over all rows) and instructs the maintainers to truncate covered prefixes;
their reports then let it prune the indexers.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from ..core.atable import AwarenessTable
from ..core.config import PipelineConfig
from ..core.record import DatacenterId, KnowledgeVector
from ..flstore.messages import GcReport, PruneIndexBelow, TruncateBelow
from ..runtime.actor import Actor
from .messages import AtableSnapshot, FrontierUpdate, PeerVector


class GcCoordinator(Actor):
    """Per-datacenter Awareness Table keeper and GC driver."""

    def __init__(
        self,
        name: str,
        dc_id: DatacenterId,
        datacenters: Iterable[DatacenterId],
        maintainers: List[str],
        indexers: Optional[List[str]] = None,
        senders: Optional[List[str]] = None,
        config: Optional[PipelineConfig] = None,
        snapshot_interval: float = 0.05,
    ) -> None:
        super().__init__(name)
        self.dc_id = dc_id
        self.atable = AwarenessTable(dc_id, datacenters)
        self.maintainers = list(maintainers)
        self.indexers = list(indexers or [])
        self.senders = list(senders or [])
        self.snapshot_interval = snapshot_interval
        self.config = config or PipelineConfig()
        self._floors = {m: -1 for m in self.maintainers}
        self._next_lid = 0
        self.sweeps = 0

    def on_start(self) -> None:
        if self.config.gc_interval > 0:
            self.set_timer(self.config.gc_interval, self.sweep, periodic=True)
        if self.senders:
            self.set_timer(self.snapshot_interval, self._broadcast_atable, periodic=True)

    def _broadcast_atable(self) -> None:
        """Hand the senders the current ATable so their shipments carry it
        (the abstract solution propagates the table with every snapshot,
        §6.1) — required for GC convergence over partial topologies."""
        snapshot = AtableSnapshot(self.atable.as_matrix())
        for sender in self.senders:
            self.send(sender, snapshot)

    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, FrontierUpdate):
            self.atable.note_peer_knowledge(self.dc_id, message.vector)
            self._next_lid = max(self._next_lid, message.next_lid)
        elif isinstance(message, PeerVector):
            self.atable.note_peer_knowledge(message.peer, message.vector)
            if message.matrix:
                self.atable.merge(message.peer, message.matrix)
        elif isinstance(message, GcReport):
            if message.maintainer in self._floors:
                self._floors[message.maintainer] = max(
                    self._floors[message.maintainer], message.gc_floor
                )
            self._prune_indexers()

    # ------------------------------------------------------------------ #

    def gc_vector(self) -> KnowledgeVector:
        """Per-host frontier of records known by every datacenter."""
        return self.atable.gc_vector()

    def sweep(self) -> None:
        """One GC round: tell every maintainer the current frontier."""
        self.sweeps += 1
        frontier = self.gc_vector()
        if not any(frontier.values()):
            return
        keep_from = None
        if self.config.gc_keep_records > 0:
            keep_from = max(0, self._next_lid - self.config.gc_keep_records)
        message = TruncateBelow(toid_frontier=frontier, keep_from_lid=keep_from)
        for maintainer in self.maintainers:
            self.send(maintainer, message)

    def _prune_indexers(self) -> None:
        if not self.indexers:
            return
        floor = min(self._floors.values())
        if floor <= 0:
            return
        for indexer in self.indexers:
            self.send(indexer, PruneIndexBelow(floor))
