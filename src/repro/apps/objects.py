"""Tango-style replicated data structures over the shared log.

The paper motivates the log as a substrate for "complex solutions like
stream processors and transaction managers" (§1, citing Tango).  This
module provides the Tango pattern: an in-memory object whose every mutation
is an appended log record and whose state is the deterministic replay of
the log — so any number of replicas of the object, at any datacenter,
converge to the same state once they have consumed the same records.

Each object family keys its records with a tag (``obj:<name>``), so
replicas read exactly their own mutation stream.  ``sync()`` pulls new
mutations up to the head of the log; mutations are applied in log order,
which the causal pipeline keeps consistent across datacenters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.record import LogEntry, ReadRules, Record

OBJECT_TAG_PREFIX = "obj:"


class ReplicatedObject:
    """Base class: a state machine replayed from a tagged record stream."""

    def __init__(self, log: Any, name: str) -> None:
        self.log = log
        self.name = name
        self._tag = OBJECT_TAG_PREFIX + name
        self._cursor = -1
        self.mutations_applied = 0

    # -- the Tango pattern ------------------------------------------------ #

    def _append_mutation(self, op: str, **payload: Any) -> None:
        """Append one mutation record (the only way state ever changes)."""
        body = {"object": self.name, "op": op, **payload}
        self.log.append(body, tags={self._tag: op})

    def sync(self) -> int:
        """Apply every new mutation up to the head of the log.

        Returns the number applied.  Safe to call repeatedly; the cursor
        guarantees exactly-once application per replica.
        """
        head = self.log.head()
        if head <= self._cursor:
            return 0
        entries: List[LogEntry] = self.log.read(
            ReadRules(
                tag_key=self._tag,
                min_lid=self._cursor + 1,
                max_lid=head,
                most_recent=False,
            )
        )
        for entry in entries:
            self._apply(entry.record.body, entry.record)
            self.mutations_applied += 1
        self._cursor = head
        return len(entries)

    def _apply(self, body: Dict[str, Any], record: Record) -> None:
        raise NotImplementedError


class ReplicatedCounter(ReplicatedObject):
    """A convergent counter: increments/decrements commute."""

    def __init__(self, log: Any, name: str = "counter") -> None:
        super().__init__(log, name)
        self._value = 0

    def increment(self, by: int = 1) -> None:
        self._append_mutation("add", delta=by)

    def decrement(self, by: int = 1) -> None:
        self._append_mutation("add", delta=-by)

    @property
    def value(self) -> int:
        return self._value

    def _apply(self, body: Dict[str, Any], record: Record) -> None:
        self._value += body["delta"]


class ReplicatedSet(ReplicatedObject):
    """An add/remove set; operations resolve in log order."""

    def __init__(self, log: Any, name: str = "set") -> None:
        super().__init__(log, name)
        self._members: Set[Any] = set()

    def add(self, member: Any) -> None:
        self._append_mutation("add", member=member)

    def discard(self, member: Any) -> None:
        self._append_mutation("discard", member=member)

    def __contains__(self, member: Any) -> bool:
        return member in self._members

    def members(self) -> Set[Any]:
        return set(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def _apply(self, body: Dict[str, Any], record: Record) -> None:
        if body["op"] == "add":
            self._members.add(body["member"])
        else:
            self._members.discard(body["member"])


class ReplicatedDict(ReplicatedObject):
    """A key-value map with convergent conflict resolution.

    A write that causally follows the current winner always replaces it;
    concurrent writes are resolved by the deterministic ``(TOId, host)``
    tiebreak — the same rule at every datacenter, so replicas converge
    regardless of how concurrent mutations interleave in their local logs.
    """

    def __init__(self, log: Any, name: str = "dict") -> None:
        super().__init__(log, name)
        self._items: Dict[Any, Any] = {}
        self._winners: Dict[Any, Record] = {}

    def set(self, key: Any, value: Any) -> None:
        self._append_mutation("set", key=key, value=value)

    def delete(self, key: Any) -> None:
        self._append_mutation("delete", key=key)

    def get(self, key: Any, default: Any = None) -> Any:
        return self._items.get(key, default)

    def items(self) -> Dict[Any, Any]:
        return dict(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def _apply(self, body: Dict[str, Any], record: Record) -> None:
        key = body["key"]
        winner = self._winners.get(key)
        if winner is not None and not self._beats(record, winner):
            return
        self._winners[key] = record
        if body["op"] == "set":
            self._items[key] = body["value"]
        else:
            self._items.pop(key, None)

    @staticmethod
    def _beats(challenger: Record, incumbent: Record) -> bool:
        if challenger.depends_on(incumbent.rid):
            return True  # causally later always wins
        if incumbent.depends_on(challenger.rid):
            return False
        # Concurrent: deterministic tiebreak.
        return (challenger.toid, challenger.host) > (incumbent.toid, incumbent.host)


class ReplicatedQueue(ReplicatedObject):
    """A FIFO work queue with exactly-once, log-arbitrated claims.

    ``claim_next()`` appends a claim record naming the item and the
    claimant; the log arbitrates races with a deterministic rule — the
    claim with the lowest ``(TOId, host)`` identity wins.  Because the rule
    is a pure function of the claim records (not of their interleaving),
    every datacenter resolves every race identically, with no locks.
    """

    def __init__(self, log: Any, name: str = "queue", claimant: str = "worker") -> None:
        super().__init__(log, name)
        self.claimant = claimant
        self._pending: List[Tuple[str, Any]] = []
        #: item -> (claim identity, claimant); lowest identity wins.
        self._claims: Dict[str, Tuple[Tuple[int, str], str]] = {}

    def enqueue(self, item_id: str, payload: Any) -> None:
        self._append_mutation("enqueue", item_id=item_id, payload=payload)

    def claim_next(self) -> Optional[Tuple[str, Any]]:
        """Attempt to claim the oldest unclaimed item.

        Returns the item optimistically; call :meth:`sync` afterwards and
        check :meth:`owner_of` to learn whether the claim won the race.
        """
        for item_id, payload in self._pending:
            if item_id not in self._claims:
                self._append_mutation("claim", item_id=item_id, claimant=self.claimant)
                return item_id, payload
        return None

    def owner_of(self, item_id: str) -> Optional[str]:
        claim = self._claims.get(item_id)
        return None if claim is None else claim[1]

    def pending_items(self) -> List[Tuple[str, Any]]:
        return [(i, p) for i, p in self._pending if i not in self._claims]

    def _apply(self, body: Dict[str, Any], record: Record) -> None:
        if body["op"] == "enqueue":
            self._pending.append((body["item_id"], body["payload"]))
        elif body["op"] == "claim":
            identity = (record.toid, record.host)
            current = self._claims.get(body["item_id"])
            if current is None or identity < current[0]:
                self._claims[body["item_id"]] = (identity, body["claimant"])
