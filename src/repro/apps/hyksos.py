"""Hyksos: the causally consistent key-value store of §4.1.

Values live in the shared log: a put appends a record tagged with the
written key(s); the current value of a key is the tag value of the record
with the highest log position containing a put to it.  Gets never observe
gaps because they are bounded by the head of the log (HL).

Causality across sessions: every get records the returned record's
``(host, TOId)`` in the session's dependency vector, and every put attaches
that vector to the appended record — so a value you read at one datacenter
happens-before anything you subsequently write, at every datacenter.

Get transactions (Algorithm 1) read a consistent snapshot: pin the head of
the log, then read each key's most recent version at a position below the
pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.record import KnowledgeVector, LogEntry, ReadRules

#: Tag-key prefix for puts; the tag value is the written value.
KEY_TAG_PREFIX = "kv:"

#: Sentinel tag value marking a delete (a put of "nothing").
TOMBSTONE = "__hyksos_tombstone__"


def key_tag(key: str) -> str:
    return KEY_TAG_PREFIX + key


@dataclass
class VersionedValue:
    """A value together with the log position/record that produced it."""

    key: str
    value: Any
    lid: int
    host: str
    toid: int


class Hyksos:
    """A key-value session over any blocking shared-log client.

    Works over :class:`~repro.chariots.client.BlockingChariotsClient`
    (geo-replicated, causal) and
    :class:`~repro.flstore.client.BlockingFLStoreClient` (single
    datacenter) alike — both expose ``append``/``read``/``head``.
    """

    def __init__(self, log: Any) -> None:
        self.log = log
        #: Causal session state: records this session has observed.
        self.session_deps: KnowledgeVector = {}

    # ------------------------------------------------------------------ #
    # Put
    # ------------------------------------------------------------------ #

    def put(self, key: str, value: Any) -> VersionedValue:
        """Write one key.  Returns the new version."""
        return self.put_many({key: value})[key]

    def delete(self, key: str) -> VersionedValue:
        """Delete a key by appending a tombstone record.

        Immutability means nothing is ever removed from the log — a delete
        is just a put whose value is the tombstone sentinel; reads translate
        it to "absent".  (Garbage collection eventually reclaims the dead
        versions, §6.1.)
        """
        tags = {key_tag(key): TOMBSTONE}
        body = {"op": "delete", "keys": [key]}
        result = self._append(body, tags)
        self._observe(result.rid.host, result.rid.toid)
        return VersionedValue(key, None, result.lid, result.rid.host, result.rid.toid)

    def put_many(self, items: Mapping[str, Any]) -> Dict[str, VersionedValue]:
        """Write several keys atomically in one record (§4.1: "a record
        holds one, or more put operation information")."""
        tags = {key_tag(k): v for k, v in items.items()}
        body = {"op": "put", "keys": sorted(items)}
        result = self._append(body, tags)
        versions = {
            k: VersionedValue(k, v, result.lid, result.rid.host, result.rid.toid)
            for k, v in items.items()
        }
        self._observe(result.rid.host, result.rid.toid)
        return versions

    def _append(self, body: Any, tags: Dict[str, Any]) -> Any:
        try:
            return self.log.append(body, tags=tags, deps=dict(self.session_deps))
        except TypeError:
            # FLStore clients take no deps (single-datacenter deployment).
            return self.log.append(body, tags=tags)

    # ------------------------------------------------------------------ #
    # Get
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Optional[Any]:
        version = self.get_version(key)
        return None if version is None else version.value

    def get_version(self, key: str, max_lid: Optional[int] = None) -> Optional[VersionedValue]:
        """Most recent version of ``key``, optionally at or below ``max_lid``.

        Plain gets read the most recent put wherever it is (§4.1's Get);
        only get transactions pin a gap-free snapshot position (Algorithm 1
        passes the head of the log as ``max_lid``).
        """
        if max_lid is not None and max_lid < 0:
            return None
        entries: List[LogEntry] = self.log.read(
            ReadRules(tag_key=key_tag(key), max_lid=max_lid, limit=1, most_recent=True)
        )
        if not entries:
            return None
        entry = entries[0]
        value = entry.record.tag_dict()[key_tag(key)]
        self._observe(entry.record.host, entry.record.toid)
        if value == TOMBSTONE:
            return None  # deleted at this point in the log
        return VersionedValue(key, value, entry.lid, entry.record.host, entry.record.toid)

    # ------------------------------------------------------------------ #
    # Convergent reads (causal+, COPS-style)
    # ------------------------------------------------------------------ #

    def get_convergent(self, key: str) -> Optional[Any]:
        """A read that returns the same value at every datacenter.

        §2.2 discusses COPS's *causal+* consistency: causality plus
        convergence.  Plain gets return the put latest in the *local* log,
        which may differ between datacenters for concurrent puts
        (Figure 2).  This read instead resolves conflicts with a
        deterministic rule — among the puts not causally dominated by
        another put to the key, the highest ``(TOId, host)`` pair wins —
        so once replication has delivered the same records everywhere,
        every datacenter answers identically.
        """
        entries: List[LogEntry] = self.log.read(
            ReadRules(tag_key=key_tag(key), most_recent=False)
        )
        if not entries:
            return None
        # Keep only puts not causally dominated by a later put to this key.
        frontier_puts: List[LogEntry] = []
        for candidate in entries:
            record = candidate.record
            dominated = any(
                other.record.depends_on(record.rid)
                or (
                    other.record.host == record.host
                    and other.record.toid > record.toid
                )
                for other in entries
                if other is not candidate
            )
            if not dominated:
                frontier_puts.append(candidate)
        winner = max(
            frontier_puts, key=lambda e: (e.record.toid, e.record.host)
        )
        self._observe(winner.record.host, winner.record.toid)
        value = winner.record.tag_dict()[key_tag(key)]
        return None if value == TOMBSTONE else value

    # ------------------------------------------------------------------ #
    # Get transactions (Algorithm 1)
    # ------------------------------------------------------------------ #

    def get_transaction(self, keys: Iterable[str]) -> Tuple[Dict[str, Optional[Any]], int]:
        """Read a consistent snapshot of ``keys``.

        Returns ``(values, snapshot_lid)``: the view of the log up to
        ``snapshot_lid`` — the head of the log at the start of the
        transaction, below which no gaps exist (§5.4 guarantees HL is
        gap-free).
        """
        snapshot_lid = self.log.head()  # Algorithm 1, line 2
        values: Dict[str, Optional[Any]] = {}
        for key in keys:  # Algorithm 1, lines 4-6
            version = self.get_version(key, max_lid=snapshot_lid)
            values[key] = None if version is None else version.value
        return values, snapshot_lid

    # ------------------------------------------------------------------ #

    def _observe(self, host: str, toid: int) -> None:
        if toid > self.session_deps.get(host, 0):
            self.session_deps[host] = toid
