"""Helios: minimum-latency strongly consistent geo-transactions (§4.3,
citing Nawab et al., SIGMOD 2015).

Helios builds on the same causally ordered replicated log as Message
Futures but commits against a **conflict zone** instead of waiting for a
full mutual exchange.  The insight (from Helios's lower-bound proof) is
that a transaction ``t`` appended at ``A`` at local time ``ts(t)`` can only
be conflicted by a peer ``B``'s transactions appended *before B learns of
t*, i.e. before ``ts(t) + d(A→B)`` on ``B``'s clock (plus skew).  So ``A``
may commit ``t`` as soon as it has received ``B``'s log up to that
timestamp — the conflict zone — rather than waiting for ``B`` to
acknowledge ``t`` explicitly.

The transaction's host decides (commit/abort) by examining the conflict
zone and publishes the decision as a log record; every datacenter applies
decisions from the log, so the committed state converges.  The deterministic
priority rule ``(timestamp, TOId, host)`` guarantees that of two conflicting
concurrent transactions exactly one survives, regardless of which host
evaluates which.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.record import DatacenterId, LogEntry, RecordId
from .message_futures import PendingCommit, Transaction

HELIOS_TXN_TAG = "helios.txn"
HELIOS_DECISION_TAG = "helios.decision"
HELIOS_HEARTBEAT_TAG = "helios.heartbeat"


class _ZoneTxn:
    """A transaction record plus the Helios bookkeeping."""

    __slots__ = ("txn_id", "rid", "deps", "writes", "ts", "lid")

    def __init__(
        self,
        txn_id: str,
        rid: RecordId,
        deps: Dict[DatacenterId, int],
        writes: Dict[str, Any],
        ts: float,
        lid: int,
    ) -> None:
        self.txn_id = txn_id
        self.rid = rid
        self.deps = deps
        self.writes = writes
        self.ts = ts
        self.lid = lid

    def covers(self, other: "_ZoneTxn") -> bool:
        if self.rid.host == other.rid.host:
            return self.rid.toid > other.rid.toid
        return self.deps.get(other.rid.host, 0) >= other.rid.toid

    def concurrent_with(self, other: "_ZoneTxn") -> bool:
        return not self.covers(other) and not other.covers(self)

    def conflicts_with(self, other: "_ZoneTxn") -> bool:
        return self.concurrent_with(other) and bool(set(self.writes) & set(other.writes))

    def priority(self) -> Tuple[float, int, DatacenterId]:
        """Lower wins: earlier timestamp, then TOId, then host id."""
        return (self.ts, self.rid.toid, self.rid.host)


class HeliosManager:
    """One datacenter's Helios transaction manager."""

    def __init__(
        self,
        dc_id: DatacenterId,
        log: Any,
        datacenters: List[DatacenterId],
        one_way_delay: Optional[Dict[DatacenterId, float]] = None,
        default_delay: float = 0.05,
        max_skew: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.dc_id = dc_id
        self.log = log
        self.datacenters = list(datacenters)
        self.peers = [p for p in self.datacenters if p != dc_id]
        #: Lower bound on the one-way delay from this DC to each peer; the
        #: conflict-zone width toward that peer (Helios's "lower-bound
        #: numbers").
        self.one_way_delay = dict(one_way_delay or {})
        self.default_delay = default_delay
        self.max_skew = max_skew
        self._clock = clock or (lambda: getattr(log, "runtime").now)
        self._txn_counter = itertools.count(1)
        self._cursor = -1
        self._txns: Dict[str, _ZoneTxn] = {}
        self._order: List[str] = []
        self._decisions: Dict[str, Optional[bool]] = {}
        self._local_pending: Set[str] = set()
        #: Per peer, the highest record timestamp received from it.  The log
        #: ships each host's records in order, so every record of the peer
        #: with a smaller timestamp has arrived.
        self._peer_ts: Dict[DatacenterId, float] = {p: float("-inf") for p in self.peers}
        self._committed: Dict[str, Any] = {}
        self._applied: Set[str] = set()
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #

    def begin(self) -> Transaction:
        return Transaction(f"{self.dc_id}:h{next(self._txn_counter)}", self)

    def committed_value(self, key: str) -> Any:
        return self._committed.get(key)

    def committed_state(self) -> Dict[str, Any]:
        return dict(self._committed)

    def submit(self, txn: Transaction) -> PendingCommit:
        ts = self._clock()
        body = {
            "type": "helios.txn",
            "txn_id": txn.txn_id,
            "writes": dict(txn.writes),
            "ts": ts,
        }
        result = self.log.append(body, tags={HELIOS_TXN_TAG: txn.txn_id})
        self._decisions.setdefault(txn.txn_id, None)
        self._local_pending.add(txn.txn_id)
        return PendingCommit(txn.txn_id, result.rid, self)

    def decision(self, txn_id: str) -> Optional[bool]:
        return self._decisions.get(txn_id)

    def commit_bound(self, peer: DatacenterId) -> float:
        """Conflict-zone extent toward ``peer`` (delay bound plus skew)."""
        return self.one_way_delay.get(peer, self.default_delay) + self.max_skew

    # ------------------------------------------------------------------ #
    # Log processing
    # ------------------------------------------------------------------ #

    def pump(self, heartbeat: bool = True) -> int:
        """Process new log entries, decide ready local transactions, and
        apply decisions from the log.  Returns entries processed."""
        head = self.log.head()
        processed = 0
        while self._cursor < head:
            lid = self._cursor + 1
            reply = self.log.read_lid(lid)
            if reply.error is not None or not reply.entries:
                break
            self._ingest(reply.entries[0])
            self._cursor = lid
            processed += 1
        self._try_decide_local()
        if processed and heartbeat:
            self.log.append(
                {"type": "helios.heartbeat", "ts": self._clock()},
                tags={HELIOS_HEARTBEAT_TAG: self.dc_id},
            )
        return processed

    def _ingest(self, entry: LogEntry) -> None:
        record = entry.record
        body = record.body
        if not isinstance(body, dict):
            return
        ts = body.get("ts")
        if ts is not None and record.host in self._peer_ts:
            if ts > self._peer_ts[record.host]:
                self._peer_ts[record.host] = ts
        kind = body.get("type")
        if kind == "helios.txn":
            txn = _ZoneTxn(
                txn_id=body["txn_id"],
                rid=record.rid,
                deps=record.dep_vector(),
                writes=dict(body.get("writes", {})),
                ts=body.get("ts", 0.0),
                lid=entry.lid,
            )
            if txn.txn_id not in self._txns:
                self._txns[txn.txn_id] = txn
                self._order.append(txn.txn_id)
            self._decisions.setdefault(txn.txn_id, None)
        elif kind == "helios.decision":
            self._apply_decision(body["txn_id"], bool(body["commit"]))

    def _zone_closed(self, txn: _ZoneTxn) -> bool:
        """Whether every peer's conflict zone for ``txn`` has fully arrived."""
        for peer in self.peers:
            if self._peer_ts[peer] < txn.ts + self.commit_bound(peer):
                return False
        return True

    def _try_decide_local(self) -> None:
        for txn_id in list(self._local_pending):
            txn = self._txns.get(txn_id)
            if txn is None:
                continue  # our own append not yet visible in the log
            if self._decisions.get(txn_id) is not None:
                self._local_pending.discard(txn_id)
                continue
            if not self._zone_closed(txn):
                continue
            rivals = [
                other
                for other in self._txns.values()
                if other.txn_id != txn_id and txn.conflicts_with(other)
            ]
            commit = not any(other.priority() < txn.priority() for other in rivals)
            self._local_pending.discard(txn_id)
            self._publish_decision(txn, commit)

    def _publish_decision(self, txn: _ZoneTxn, commit: bool) -> None:
        self._apply_decision(txn.txn_id, commit)
        self.log.append(
            {
                "type": "helios.decision",
                "txn_id": txn.txn_id,
                "commit": commit,
                "ts": self._clock(),
            },
            tags={HELIOS_DECISION_TAG: txn.txn_id},
        )

    def _apply_decision(self, txn_id: str, commit: bool) -> None:
        if self._decisions.get(txn_id) is not None:
            return
        self._decisions[txn_id] = commit
        if commit:
            self.commits += 1
            txn = self._txns.get(txn_id)
            if txn is not None and txn_id not in self._applied:
                self._applied.add(txn_id)
                self._committed.update(txn.writes)
        else:
            self.aborts += 1

    # ------------------------------------------------------------------ #

    def pending_count(self) -> int:
        return sum(1 for d in self._decisions.values() if d is None)
