"""Message Futures: strongly consistent geo-transactions over the causal log
(§4.3, citing Nawab et al., CIDR 2013).

Every datacenter runs a transaction manager that is a **deterministic state
machine over the shared log**: transactions execute optimistically (reads
from the local committed snapshot, writes buffered) and commit by appending
a transaction record.  A transaction ``t`` hosted at datacenter ``A``
commits once every other datacenter's history up to ``t``'s log position
has arrived — detected causally: once a record from ``B`` whose dependency
vector covers ``t`` is observed, every ``B``-transaction concurrent with
``t`` must already be in the local log, because the replicated log ships
each host's records in TOId order.

Conflict rule: two transaction records are *concurrent* when neither's
dependency vector covers the other; concurrent transactions with
intersecting write sets conflict, and the one with the lower
``(TOId, host)`` pair wins.  The rule is a pure function of the records, so
every datacenter reaches the same commit/abort decision with no further
coordination — the essence of log-based commit protocols.

Managers append heartbeat records so the "B has seen t" evidence keeps
flowing even when a datacenter has no transactions of its own.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..core.errors import TransactionAborted
from ..core.record import DatacenterId, LogEntry, RecordId

TXN_TAG = "mf.txn"
HEARTBEAT_TAG = "mf.heartbeat"


@dataclass
class Transaction:
    """An optimistically executing transaction (client side)."""

    txn_id: str
    manager: "MessageFuturesManager"
    reads: Dict[str, Any] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)

    def read(self, key: str) -> Any:
        """Read from buffered writes first, then the committed snapshot."""
        if key in self.writes:
            return self.writes[key]
        value = self.manager.committed_value(key)
        self.reads[key] = value
        return value

    def write(self, key: str, value: Any) -> None:
        self.writes[key] = value

    def commit(self) -> "PendingCommit":
        return self.manager.submit(self)


@dataclass
class PendingCommit:
    """Handle to a submitted transaction awaiting the global decision."""

    txn_id: str
    rid: RecordId
    manager: "MessageFuturesManager"

    @property
    def decided(self) -> bool:
        return self.manager.decision(self.txn_id) is not None

    @property
    def committed(self) -> bool:
        return self.manager.decision(self.txn_id) is True

    def result(self) -> bool:
        """The decision; raises :class:`TransactionAborted` on abort."""
        decision = self.manager.decision(self.txn_id)
        if decision is None:
            raise RuntimeError(f"transaction {self.txn_id} is still pending")
        if not decision:
            raise TransactionAborted(self.txn_id)
        return True


@dataclass
class TxnRecord:
    """A transaction record observed in the log (ours or a peer's)."""

    txn_id: str
    rid: RecordId
    deps: Dict[DatacenterId, int]
    writes: Dict[str, Any]
    lid: int

    def covers(self, other: "TxnRecord") -> bool:
        """Whether this record causally follows ``other``."""
        if self.rid.host == other.rid.host:
            return self.rid.toid > other.rid.toid
        return self.deps.get(other.rid.host, 0) >= other.rid.toid

    def concurrent_with(self, other: "TxnRecord") -> bool:
        return not self.covers(other) and not other.covers(self)

    def conflicts_with(self, other: "TxnRecord") -> bool:
        return self.concurrent_with(other) and bool(set(self.writes) & set(other.writes))

    def beats(self, other: "TxnRecord") -> bool:
        """Deterministic conflict winner: lower (TOId, host) wins."""
        return (self.rid.toid, self.rid.host) < (other.rid.toid, other.rid.host)


class MessageFuturesManager:
    """One datacenter's transaction manager over a blocking log client."""

    def __init__(self, dc_id: DatacenterId, log: Any, datacenters: List[DatacenterId]) -> None:
        self.dc_id = dc_id
        self.log = log
        self.datacenters = list(datacenters)
        self.peers = [p for p in self.datacenters if p != dc_id]
        self._txn_counter = itertools.count(1)
        self._cursor = -1  # highest log position processed
        self._txns: Dict[str, TxnRecord] = {}
        self._decision_order: List[str] = []
        self._decisions: Dict[str, Optional[bool]] = {}
        #: peer -> element-wise max of the dependency vectors of the peer's
        #: records we have observed (plus the peer's own TOId chain): what
        #: the peer is *known* to have seen.
        self._peer_knowledge: Dict[DatacenterId, Dict[DatacenterId, int]] = {
            dc: {} for dc in self.datacenters
        }
        self._committed: Dict[str, Any] = {}
        self._applied: Set[str] = set()
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #

    def begin(self) -> Transaction:
        return Transaction(f"{self.dc_id}:{next(self._txn_counter)}", self)

    def committed_value(self, key: str) -> Any:
        return self._committed.get(key)

    def committed_state(self) -> Dict[str, Any]:
        return dict(self._committed)

    def submit(self, txn: Transaction) -> PendingCommit:
        """Append the transaction record — the protocol's only write."""
        body = {"type": "txn", "txn_id": txn.txn_id, "writes": dict(txn.writes)}
        result = self.log.append(body, tags={TXN_TAG: txn.txn_id})
        self._decisions.setdefault(txn.txn_id, None)
        return PendingCommit(txn.txn_id, result.rid, self)

    def decision(self, txn_id: str) -> Optional[bool]:
        return self._decisions.get(txn_id)

    # ------------------------------------------------------------------ #
    # Log processing: the deterministic state machine
    # ------------------------------------------------------------------ #

    def pump(self, heartbeat: bool = True) -> int:
        """Process new log entries and try to decide pending transactions.

        Returns the number of entries processed.  With ``heartbeat`` true, a
        heartbeat record is appended when new entries were seen, carrying
        this datacenter's knowledge to the peers (the "message futures").
        """
        head = self.log.head()
        processed = 0
        while self._cursor < head:
            lid = self._cursor + 1
            reply = self.log.read_lid(lid)
            if reply.error is not None or not reply.entries:
                break
            self._ingest(reply.entries[0])
            self._cursor = lid
            processed += 1
        if processed:
            self._try_decide()
            if heartbeat:
                self.log.append({"type": "heartbeat"}, tags={HEARTBEAT_TAG: self.dc_id})
        return processed

    def _ingest(self, entry: LogEntry) -> None:
        record = entry.record
        host = record.host
        if host in self._peer_knowledge:
            knowledge = self._peer_knowledge[host]
            for dc, toid in record.dep_vector().items():
                if toid > knowledge.get(dc, 0):
                    knowledge[dc] = toid
            if record.toid > knowledge.get(host, 0):
                knowledge[host] = record.toid
        body = record.body
        if isinstance(body, dict) and body.get("type") == "txn":
            txn = TxnRecord(
                txn_id=body["txn_id"],
                rid=record.rid,
                deps=record.dep_vector(),
                writes=dict(body.get("writes", {})),
                lid=entry.lid,
            )
            if txn.txn_id not in self._txns:
                self._txns[txn.txn_id] = txn
                self._decision_order.append(txn.txn_id)
            self._decisions.setdefault(txn.txn_id, None)

    def _history_complete(self, txn: TxnRecord) -> bool:
        """Every datacenter's history up to ``txn``'s position has arrived.

        Datacenter ``B``'s history is complete for ``txn`` once ``B`` is
        known to have seen ``txn``: any later ``B``-record causally follows
        it, so every ``B``-transaction concurrent with ``txn`` is already in
        the local log.  The host's own history is complete by per-host FIFO
        shipping, and our own because ``txn`` is in our log.
        """
        for dc in self.datacenters:
            if dc == txn.rid.host or dc == self.dc_id:
                continue
            if self._peer_knowledge[dc].get(txn.rid.host, 0) < txn.rid.toid:
                return False
        return True

    def _try_decide(self) -> None:
        # Local-log order respects causality, so deciding (and applying) in
        # observation order applies causally-related writes in causal order.
        for txn_id in self._decision_order:
            if self._decisions.get(txn_id) is not None:
                continue
            txn = self._txns[txn_id]
            if not self._history_complete(txn):
                continue
            self._decide(txn)

    def _decide(self, txn: TxnRecord) -> None:
        rivals = [
            other
            for other in self._txns.values()
            if other.txn_id != txn.txn_id and txn.conflicts_with(other)
        ]
        decision = not any(other.beats(txn) for other in rivals)
        self._decisions[txn.txn_id] = decision
        if decision:
            self.commits += 1
            self._apply(txn)
        else:
            self.aborts += 1

    def _apply(self, txn: TxnRecord) -> None:
        if txn.txn_id in self._applied:
            return
        self._applied.add(txn.txn_id)
        self._committed.update(txn.writes)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def pending_count(self) -> int:
        return sum(1 for d in self._decisions.values() if d is None)

    def peer_knowledge(self, peer: DatacenterId) -> Dict[DatacenterId, int]:
        return dict(self._peer_knowledge.get(peer, {}))
