"""Time travel, auditing, and checkpointing over the shared log (§1).

"The log provides a trace of all application events providing a natural
framework for tasks like debugging, auditing, checkpointing, and time
travel."  This module delivers those tasks for any state machine driven by
tagged records — demonstrated on Hyksos's put records:

* :class:`LogAuditor` — reconstruct the key-value state *as of any log
  position*, list a key's full version history, and diff two points in
  time;
* :class:`Checkpointer` — periodic materialised snapshots so long logs can
  be replayed from the nearest checkpoint instead of position zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.record import LogEntry, ReadRules
from .hyksos import KEY_TAG_PREFIX


@dataclass(frozen=True)
class Version:
    """One historical value of a key."""

    key: str
    value: Any
    lid: int
    host: str
    toid: int


def _puts_in(entry: LogEntry) -> List[Version]:
    """Extract the put operations a record carries (possibly several)."""
    versions = []
    for tag_key, value in entry.record.tags:
        if tag_key.startswith(KEY_TAG_PREFIX):
            versions.append(
                Version(
                    key=tag_key[len(KEY_TAG_PREFIX):],
                    value=value,
                    lid=entry.lid,
                    host=entry.record.host,
                    toid=entry.record.toid,
                )
            )
    return versions


class LogAuditor:
    """Replay-based inspection of a key-value log.

    Works over any blocking shared-log client (FLStore or Chariots); reads
    are bounded by explicit log positions, so results are reproducible —
    the essence of an audit.
    """

    def __init__(self, log: Any) -> None:
        self.log = log

    def _entries_upto(self, lid: Optional[int]) -> List[LogEntry]:
        rules = ReadRules(max_lid=lid, most_recent=False)
        return self.log.read(rules)

    def state_at(self, lid: Optional[int] = None) -> Dict[str, Any]:
        """The key-value state as of log position ``lid`` (default: now)."""
        state: Dict[str, Any] = {}
        for entry in self._entries_upto(lid):
            for version in _puts_in(entry):
                state[version.key] = version.value
        return state

    def history(self, key: str, upto_lid: Optional[int] = None) -> List[Version]:
        """Every version of ``key`` in log order (the audit trail)."""
        entries = self.log.read(
            ReadRules(tag_key=KEY_TAG_PREFIX + key, max_lid=upto_lid, most_recent=False)
        )
        versions: List[Version] = []
        for entry in entries:
            versions.extend(v for v in _puts_in(entry) if v.key == key)
        return versions

    def diff(
        self, earlier_lid: int, later_lid: Optional[int] = None
    ) -> Dict[str, Tuple[Any, Any]]:
        """Keys whose value changed between two log positions.

        Returns ``{key: (value before, value after)}``; keys created later
        map from ``None``.
        """
        before = self.state_at(earlier_lid)
        after = self.state_at(later_lid)
        changed: Dict[str, Tuple[Any, Any]] = {}
        for key in set(before) | set(after):
            if before.get(key) != after.get(key):
                changed[key] = (before.get(key), after.get(key))
        return changed

    def blame(self, key: str) -> Optional[Version]:
        """Who wrote the current value of ``key`` (host datacenter + TOId)."""
        versions = self.history(key)
        return versions[-1] if versions else None


@dataclass
class Checkpoint:
    """A materialised state snapshot pinned to a log position."""

    upto_lid: int
    state: Dict[str, Any]


class Checkpointer:
    """Periodic snapshots + replay-from-checkpoint recovery."""

    def __init__(self, log: Any) -> None:
        self.log = log
        self._checkpoints: List[Checkpoint] = []

    def take(self) -> Checkpoint:
        """Snapshot the state at the current head of the log."""
        head = self.log.head()
        auditor = LogAuditor(self.log)
        checkpoint = Checkpoint(upto_lid=head, state=auditor.state_at(head))
        self._checkpoints.append(checkpoint)
        return checkpoint

    @property
    def checkpoints(self) -> List[Checkpoint]:
        return list(self._checkpoints)

    def latest_before(self, lid: int) -> Optional[Checkpoint]:
        candidates = [c for c in self._checkpoints if c.upto_lid <= lid]
        return candidates[-1] if candidates else None

    def state_at(self, lid: int) -> Dict[str, Any]:
        """State at ``lid``, replaying only from the nearest checkpoint."""
        base = self.latest_before(lid)
        state = dict(base.state) if base else {}
        start = base.upto_lid + 1 if base else 0
        entries = self.log.read(
            ReadRules(min_lid=start, max_lid=lid, most_recent=False)
        )
        for entry in entries:
            for version in _puts_in(entry):
                state[version.key] = version.value
        return state
