"""Case-study applications built on the shared log (§4) plus log tooling."""

from .helios import HeliosManager
from .hyksos import Hyksos, VersionedValue, key_tag
from .objects import (
    ReplicatedCounter,
    ReplicatedDict,
    ReplicatedObject,
    ReplicatedQueue,
    ReplicatedSet,
)
from .message_futures import (
    MessageFuturesManager,
    PendingCommit,
    Transaction,
    TxnRecord,
)
from .streams import (
    Event,
    EventPublisher,
    StreamJoiner,
    StreamProcessor,
    StreamReader,
    WindowedAggregator,
)
from .timetravel import Checkpoint, Checkpointer, LogAuditor, Version

__all__ = [
    "Checkpoint",
    "Checkpointer",
    "Event",
    "EventPublisher",
    "HeliosManager",
    "Hyksos",
    "LogAuditor",
    "MessageFuturesManager",
    "PendingCommit",
    "ReplicatedCounter",
    "ReplicatedDict",
    "ReplicatedObject",
    "ReplicatedQueue",
    "ReplicatedSet",
    "StreamJoiner",
    "StreamProcessor",
    "StreamReader",
    "Transaction",
    "TxnRecord",
    "Version",
    "VersionedValue",
    "WindowedAggregator",
    "key_tag",
]
