"""Multi-datacenter event processing over the shared log (§4.2).

Publishers append events (an append *is* a publish); readers consume them
from the log maintainers with **exactly-once** semantics: a reader's cursor
advances through gap-free log positions (bounded by the head of the log),
and every record is delivered to the processing callback exactly once per
reader.  Different readers can read from different log maintainers, so the
analysis work distributes without a central dispatcher.

:class:`StreamJoiner` is a Photon-style continuous join (§1 cites Google
Photon): it joins events of two streams — typically produced at *different
datacenters* — on a join key, emitting each joined pair exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..core.record import LogEntry, ReadRules

STREAM_TAG = "stream"


@dataclass(frozen=True)
class Event:
    """A consumed stream event with its provenance."""

    stream: str
    payload: Any
    lid: int
    host: str
    toid: int

    @property
    def identity(self) -> Tuple[str, int]:
        """Globally unique event identity (host datacenter, TOId)."""
        return (self.host, self.toid)


class EventPublisher:
    """Publishes events by appending tagged records to the shared log."""

    def __init__(self, log: Any) -> None:
        self.log = log

    def publish(self, stream: str, payload: Any) -> Event:
        result = self.log.append({"event": payload}, tags={STREAM_TAG: stream})
        return Event(stream, payload, result.lid, result.rid.host, result.rid.toid)


class StreamReader:
    """Exactly-once cursor over one stream of the shared log.

    ``poll()`` returns every event of the stream that became readable (at or
    below the head of the log) since the previous poll.  The cursor is the
    reader's only state, so delivery is exactly-once by construction; a
    crash-restarted reader resumes from its last checkpointed cursor.
    """

    def __init__(self, log: Any, stream: str, start_after_lid: int = -1) -> None:
        self.log = log
        self.stream = stream
        self.cursor = start_after_lid
        self.events_delivered = 0

    def poll(self, limit: Optional[int] = None) -> List[Event]:
        head = self.log.head()
        if head <= self.cursor:
            return []
        entries: List[LogEntry] = self.log.read(
            ReadRules(
                tag_key=STREAM_TAG,
                tag_value=self.stream,
                min_lid=self.cursor + 1,
                max_lid=head,
                most_recent=False,
                limit=limit,
            )
        )
        events = [
            Event(self.stream, e.record.body.get("event"), e.lid, e.record.host, e.record.toid)
            for e in entries
        ]
        if entries:
            self.cursor = entries[-1].lid
        else:
            self.cursor = head
        self.events_delivered += len(events)
        return events

    def checkpoint(self) -> int:
        """Durable resume point: pass to ``start_after_lid`` on restart."""
        return self.cursor


class StreamProcessor:
    """Drives one or more readers through a processing callback."""

    def __init__(self, log: Any) -> None:
        self.log = log
        self._readers: Dict[str, StreamReader] = {}
        self._handlers: Dict[str, Callable[[Event], None]] = {}

    def subscribe(self, stream: str, handler: Callable[[Event], None]) -> StreamReader:
        reader = StreamReader(self.log, stream)
        self._readers[stream] = reader
        self._handlers[stream] = handler
        return reader

    def step(self) -> int:
        """One processing round; returns the number of events handled."""
        handled = 0
        for stream, reader in self._readers.items():
            for event in reader.poll():
                self._handlers[stream](event)
                handled += 1
        return handled


class WindowedAggregator:
    """Exactly-once tumbling-window aggregation over one stream (§4.2).

    Events are grouped into fixed-size windows of *log positions* (the log
    gives every event a stable position, so windows are reproducible at
    every datacenter).  A window is emitted once the head of the log has
    passed its end — at that point the window can never gain events,
    because positions below the head are gap-free.
    """

    def __init__(
        self,
        log: Any,
        stream: str,
        window_lids: int,
        aggregate: Callable[[List[Event]], Any],
    ) -> None:
        if window_lids < 1:
            raise ValueError("window_lids must be >= 1")
        self.reader = StreamReader(log, stream)
        self.log = log
        self.window_lids = window_lids
        self.aggregate = aggregate
        self._buffer: Dict[int, List[Event]] = {}
        self._next_window = 0
        self.windows_emitted = 0

    def _window_of(self, lid: int) -> int:
        return lid // self.window_lids

    def step(self) -> List[Tuple[int, Any]]:
        """Poll the stream and emit every newly closed window.

        Returns ``(window index, aggregate value)`` pairs; empty windows
        are emitted too (value of ``aggregate([])``), keeping the output
        stream dense and deterministic.
        """
        for event in self.reader.poll():
            self._buffer.setdefault(self._window_of(event.lid), []).append(event)
        head = self.log.head()
        closed: List[Tuple[int, Any]] = []
        while (self._next_window + 1) * self.window_lids <= head + 1:
            events = self._buffer.pop(self._next_window, [])
            closed.append((self._next_window, self.aggregate(events)))
            self._next_window += 1
            self.windows_emitted += 1
        return closed


class StreamJoiner:
    """Photon-style exactly-once join of two streams on a key function.

    Events are buffered per join key until a partner arrives; each
    ``(left event, right event)`` pair is emitted exactly once.  ``window``
    bounds the buffer (events older than ``window`` join candidates are
    discarded), mirroring Photon's bounded state.
    """

    def __init__(
        self,
        log: Any,
        left_stream: str,
        right_stream: str,
        key_fn: Callable[[Any], Any],
        window: Optional[int] = None,
    ) -> None:
        self.left = StreamReader(log, left_stream)
        self.right = StreamReader(log, right_stream)
        self.key_fn = key_fn
        self.window = window
        self._left_buffer: Dict[Any, List[Event]] = {}
        self._right_buffer: Dict[Any, List[Event]] = {}
        self.pairs_emitted = 0

    def step(self) -> List[Tuple[Event, Event]]:
        """Poll both streams and return the newly joined pairs."""
        joined: List[Tuple[Event, Event]] = []
        for event in self.left.poll():
            joined.extend(self._offer(event, self._left_buffer, self._right_buffer, left=True))
        for event in self.right.poll():
            joined.extend(self._offer(event, self._right_buffer, self._left_buffer, left=False))
        self.pairs_emitted += len(joined)
        if self.window is not None:
            self._evict()
        return joined

    def _offer(
        self,
        event: Event,
        own_buffer: Dict[Any, List[Event]],
        other_buffer: Dict[Any, List[Event]],
        left: bool,
    ) -> Iterator[Tuple[Event, Event]]:
        key = self.key_fn(event.payload)
        partners = other_buffer.get(key, [])
        if partners:
            for partner in partners:
                yield (event, partner) if left else (partner, event)
        own_buffer.setdefault(key, []).append(event)

    def _evict(self) -> None:
        horizon = max(self.left.cursor, self.right.cursor) - (self.window or 0)
        for buffer in (self._left_buffer, self._right_buffer):
            for key in list(buffer):
                buffer[key] = [e for e in buffer[key] if e.lid >= horizon]
                if not buffer[key]:
                    del buffer[key]

    def buffered(self) -> int:
        return sum(len(v) for v in self._left_buffer.values()) + sum(
            len(v) for v in self._right_buffer.values()
        )
