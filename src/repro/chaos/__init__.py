"""Chaos layer: deterministic fault injection across every transport.

``repro.chaos`` creates the lossy, reordering, partitioning channels the
protocol claims to survive (§1's component/datacenter failures; the
Replicated-Dictionary lineage of the ATable assumes them) and injects them
into the runtimes behind zero-overhead no-op defaults:

* :class:`FaultPlan` — seeded message faults, crashes, and partitions for
  ``LocalRuntime`` / ``SimRuntime`` / ``AioRuntime`` sends;
* :class:`NetChaos` — seeded request-level faults for the asyncio servers;
* :class:`ProcChaos` — process-level faults for ``MultiprocRuntime``:
  scheduled worker SIGKILLs plus seeded drop/delay of raw routed frames.
"""

from .netchaos import NetChaos
from .plan import CrashEvent, FaultPlan, FaultRule, KillEvent, PartitionEvent
from .procchaos import ProcChaos

__all__ = [
    "CrashEvent",
    "FaultPlan",
    "FaultRule",
    "KillEvent",
    "NetChaos",
    "PartitionEvent",
    "ProcChaos",
]
