"""Process-level chaos for the multiproc runtime.

:class:`NetChaos` injects faults at the asyncio request layer; *this*
module's :class:`ProcChaos` injects them one level down, where the multiproc
runtime meets the operating system:

* **scheduled kills** — SIGKILL a named worker process at a fixed time
  (declared as :class:`~repro.chaos.plan.KillEvent` entries, usually via
  ``FaultPlan.kill(worker, at)``), the real-process analogue of
  ``FaultPlan.crash``;
* **frame faults** — seeded drop/delay of raw routed frames at the parent's
  forwarding layer, below the codec, so supervision's retransmission path
  gets exercised against genuine byte-level loss.

Like the rest of the chaos layer it is seeded and deterministic in its
*decisions* (the same seed yields the same drop/delay schedule for the same
frame sequence); wall-clock interleaving on real processes remains
nondeterministic by nature.  Kills on an *unsupervised* runtime surface as a
``SessionError`` — surviving them requires a registered
:class:`~repro.runtime.supervisor.ProcessSupervisor`.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Iterable, List, Optional, Tuple, Union

from ..core.errors import ConfigurationError
from .plan import FaultPlan, KillEvent

#: Frame-level decisions returned by :meth:`ProcChaos.decide_frame`.
PASS = "pass"
DROP = "drop"
DELAY = "delay"


class ProcChaos:
    """Seeded process/frame fault injector for ``MultiprocRuntime``.

    ``kills`` is an iterable of :class:`KillEvent` (or ``(worker, at)``
    pairs); ``drop_probability`` / ``delay_probability`` apply per routed
    frame at the parent's forwarding layer, with delayed frames re-admitted
    after up to ``max_delay`` seconds.  ``max_faults`` caps total injected
    frame faults so a soak cannot drop itself into a livelock.
    """

    def __init__(
        self,
        seed: int = 0,
        kills: Iterable[Union[KillEvent, Tuple[Union[int, str], float]]] = (),
        drop_probability: float = 0.0,
        delay_probability: float = 0.0,
        max_delay: float = 0.05,
        max_faults: Optional[int] = None,
    ) -> None:
        for name, value in (
            ("drop_probability", drop_probability),
            ("delay_probability", delay_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if max_delay < 0:
            raise ConfigurationError("max_delay must be >= 0")
        self.seed = seed
        self._rng = random.Random(seed)
        self.kills: List[KillEvent] = [
            kill if isinstance(kill, KillEvent) else KillEvent(kill[0], kill[1])
            for kill in kills
        ]
        self.drop_probability = drop_probability
        self.delay_probability = delay_probability
        self.max_delay = max_delay
        self.max_faults = max_faults
        #: Injection counters: frames_dropped / frames_delayed /
        #: workers_killed — chaos tests assert the plan actually fired.
        self.stats: Counter[str] = Counter()

    @classmethod
    def from_plan(cls, plan: FaultPlan, **overrides: Any) -> "ProcChaos":
        """Build from a :class:`FaultPlan`'s ``kills`` (and seed).

        Frame-fault probabilities are not part of the declarative plan (they
        are transport-specific); pass them as ``overrides``.
        """
        overrides.setdefault("seed", plan.seed)
        overrides.setdefault("kills", list(plan.kills))
        return cls(**overrides)

    def kill_schedule(self) -> List[Tuple[Union[int, str], float]]:
        """``(worker, at)`` pairs for the runtime to schedule at start."""
        return [(kill.worker, kill.at) for kill in self.kills]

    def decide_frame(self) -> Tuple[str, float]:
        """Fate of one routed frame: ``(action, delay_seconds)``."""
        if not self.drop_probability and not self.delay_probability:
            return PASS, 0.0
        if self.max_faults is not None and (
            self.stats["frames_dropped"] + self.stats["frames_delayed"]
            >= self.max_faults
        ):
            return PASS, 0.0
        roll = self._rng.random()
        if roll < self.drop_probability:
            self.stats["frames_dropped"] += 1
            return DROP, 0.0
        roll -= self.drop_probability
        if roll < self.delay_probability:
            self.stats["frames_delayed"] += 1
            return DELAY, self._rng.uniform(0.0, self.max_delay)
        return PASS, 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProcChaos seed={self.seed} kills={len(self.kills)} "
            f"drop={self.drop_probability} delay={self.delay_probability}>"
        )
