"""Request-level fault injection for the asyncio TCP path.

:class:`NetChaos` sits inside the component servers' accept loops (and the
``AioRuntime`` router) and decides, per request, whether to serve it
normally, swallow it (the client sees a hung request and times out), stall it,
or drop the whole connection.  Like :class:`~repro.chaos.plan.FaultPlan` it is
seeded and deterministic, and a ``None`` default keeps the hot path free of
any overhead beyond one ``is not None`` check.

This is the adversary the net-layer :class:`~repro.core.retry.RetryPolicy`
and circuit breakers are tested against.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Optional, Sequence, Tuple

from ..core.errors import ConfigurationError

PASS = "pass"
DROP = "drop"
DELAY = "delay"
DISCONNECT = "disconnect"


class NetChaos:
    """Seeded per-request fault decisions for servers and the aio router.

    ``request_types`` limits injection to the named request kinds (``None``
    = every kind).  Probabilities are evaluated in the order drop →
    disconnect → delay; at most one fault applies per request.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_probability: float = 0.0,
        delay_probability: float = 0.0,
        max_delay: float = 0.05,
        disconnect_probability: float = 0.0,
        request_types: Optional[Sequence[str]] = None,
        max_faults: Optional[int] = None,
    ) -> None:
        for name, p in (
            ("drop_probability", drop_probability),
            ("delay_probability", delay_probability),
            ("disconnect_probability", disconnect_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        self._rng = random.Random(seed)
        self.drop_probability = drop_probability
        self.delay_probability = delay_probability
        self.max_delay = max_delay
        self.disconnect_probability = disconnect_probability
        self.request_types = set(request_types) if request_types is not None else None
        #: Stop injecting after this many faults (None = unbounded) — lets a
        #: test guarantee eventual success without reseeding.
        self.max_faults = max_faults
        self.stats: Counter[str] = Counter()

    def decide(self, request_type: str) -> Tuple[str, float]:
        """Return ``(action, delay_seconds)`` for one inbound request."""
        if self.request_types is not None and request_type not in self.request_types:
            return PASS, 0.0
        if self.max_faults is not None and sum(self.stats.values()) >= self.max_faults:
            return PASS, 0.0
        roll = self._rng.random()
        if roll < self.drop_probability:
            self.stats[DROP] += 1
            return DROP, 0.0
        roll -= self.drop_probability
        if roll < self.disconnect_probability:
            self.stats[DISCONNECT] += 1
            return DISCONNECT, 0.0
        roll -= self.disconnect_probability
        if roll < self.delay_probability:
            self.stats[DELAY] += 1
            return DELAY, self.max_delay * self._rng.random()
        return PASS, 0.0
