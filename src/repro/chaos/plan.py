"""Seeded, deterministic fault plans for the actor runtimes.

A :class:`FaultPlan` is a declarative description of everything that goes
wrong during a run: message-level faults (drop / delay / duplicate / reorder,
scoped by source/destination prefix, message type, probability, and a time
window), actor crashes at fixed times, and datacenter partitions over fixed
windows.  The plan is driven by one seeded RNG, so the same plan + the same
workload reproduces the same failure schedule bit-for-bit — chaos tests are
regular deterministic tests.

Runtimes consult the plan through :meth:`FaultPlan.intercept`, which maps one
``(src, dst, message, now)`` send to either ``None`` (dropped) or a list of
extra delivery delays (one entry per copy — duplicates yield two).  Installing
no plan costs a single ``is not None`` check on the send path, so production
configurations pay nothing.

Plans round-trip through :meth:`to_dict` / :meth:`from_dict` so chaos suites
can be described in JSON (see ``docs/FAULTS.md`` for the schema).
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..core.errors import ConfigurationError

_INF = math.inf

DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
REORDER = "reorder"

_KINDS = (DROP, DELAY, DUPLICATE, REORDER)


@dataclass
class FaultRule:
    """One message-level fault, scoped by prefixes, type, window, probability.

    ``src`` / ``dst`` are name prefixes ("" matches everything);
    ``message_type`` matches the message class name (``None`` = any type).
    ``delay`` is the maximum extra latency injected by delay/reorder rules
    and the spread between duplicate copies.  ``max_count`` bounds how many
    times the rule may fire.
    """

    kind: str
    src: str = ""
    dst: str = ""
    message_type: Optional[str] = None
    probability: float = 1.0
    start: float = 0.0
    end: float = _INF
    delay: float = 0.0
    max_count: Optional[int] = None
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("probability must be in [0, 1]")
        if self.delay < 0:
            raise ConfigurationError("delay must be >= 0")

    def matches(self, src: str, dst: str, message: Any, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.src and not src.startswith(self.src):
            return False
        if self.dst and not dst.startswith(self.dst):
            return False
        if self.message_type is not None and type(message).__name__ != self.message_type:
            return False
        return self.max_count is None or self.fired < self.max_count

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.src:
            data["src"] = self.src
        if self.dst:
            data["dst"] = self.dst
        if self.message_type is not None:
            data["message_type"] = self.message_type
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.start:
            data["start"] = self.start
        if self.end != _INF:
            data["end"] = self.end
        if self.delay:
            data["delay"] = self.delay
        if self.max_count is not None:
            data["max_count"] = self.max_count
        return data


@dataclass
class CrashEvent:
    """Kill the actor registered under ``actor`` at simulated time ``at``.

    The runtime marks the actor crashed: its outgoing messages are discarded
    and incoming traffic parks until a supervisor restarts it (the network's
    view of a dead process whose peers keep retransmitting).
    """

    actor: str
    at: float

    def to_dict(self) -> Dict[str, Any]:
        return {"actor": self.actor, "at": self.at}


@dataclass(frozen=True)
class KillEvent:
    """SIGKILL a *worker process* of the multiproc runtime at time ``at``.

    ``worker`` is either a worker index or an actor name (resolved to the
    worker hosting that actor at placement time).  Unlike :class:`CrashEvent`
    this is a real OS-level kill: every actor co-located on the worker dies
    with it, and recovery requires a
    :class:`~repro.runtime.supervisor.ProcessSupervisor`.
    """

    worker: Union[int, str]
    at: float

    def to_dict(self) -> Dict[str, Any]:
        return {"worker": self.worker, "at": self.at}


@dataclass
class PartitionEvent:
    """Sever all traffic between two name-prefix groups during a window.

    ``partition("A/", "B/", 2.0, 5.0)`` drops every message between actors
    whose names start with ``A/`` and actors whose names start with ``B/``
    (both directions) while ``2.0 <= now < 5.0``.
    """

    a: str
    b: str
    start: float = 0.0
    end: float = _INF

    def active(self, src: str, dst: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return (src.startswith(self.a) and dst.startswith(self.b)) or (
            src.startswith(self.b) and dst.startswith(self.a)
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"a": self.a, "b": self.b}
        if self.start:
            data["start"] = self.start
        if self.end != _INF:
            data["end"] = self.end
        return data


class FaultPlan:
    """A deterministic schedule of injected faults (see module docstring).

    Builder methods chain::

        plan = (FaultPlan(seed=7)
                .drop(message_type="ReplicationShipment", probability=0.3)
                .duplicate(message_type="ReplicationShipment", probability=0.3)
                .reorder(dst="B/receiver", delay=0.05)
                .crash("A/store/0", at=1.0)
                .partition("C/", "A/", start=2.0, end=5.0))
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.rules: List[FaultRule] = []
        self.crashes: List[CrashEvent] = []
        self.kills: List[KillEvent] = []
        self.partitions: List[PartitionEvent] = []
        #: Injection counters: dropped / delayed / duplicated / reordered /
        #: partitioned — chaos tests assert the plan actually fired.
        self.stats: Counter[str] = Counter()

    # -- builders -------------------------------------------------------- #

    def _rule(self, kind: str, **kwargs: Any) -> "FaultPlan":
        self.rules.append(FaultRule(kind, **kwargs))
        return self

    def drop(self, **kwargs: Any) -> "FaultPlan":
        """Drop matching messages."""
        return self._rule(DROP, **kwargs)

    def delay(self, delay: float = 0.05, **kwargs: Any) -> "FaultPlan":
        """Add up to ``delay`` seconds of extra latency to matching messages."""
        return self._rule(DELAY, delay=delay, **kwargs)

    def duplicate(self, delay: float = 0.01, **kwargs: Any) -> "FaultPlan":
        """Deliver matching messages twice (the copy up to ``delay`` later)."""
        return self._rule(DUPLICATE, delay=delay, **kwargs)

    def reorder(self, delay: float = 0.05, **kwargs: Any) -> "FaultPlan":
        """Scramble delivery order of matching messages by random extra delay."""
        return self._rule(REORDER, delay=delay, **kwargs)

    def crash(self, actor: str, at: float) -> "FaultPlan":
        self.crashes.append(CrashEvent(actor, at))
        return self

    def kill(self, worker: Union[int, str], at: float) -> "FaultPlan":
        """SIGKILL a multiproc worker (by index or hosted-actor name)."""
        self.kills.append(KillEvent(worker, at))
        return self

    def partition(self, a: str, b: str, start: float = 0.0, end: float = _INF) -> "FaultPlan":
        self.partitions.append(PartitionEvent(a, b, start, end))
        return self

    # -- interception ---------------------------------------------------- #

    def intercept(
        self, src: str, dst: str, message: Any, now: float
    ) -> Optional[List[float]]:
        """Decide the fate of one send.

        Returns ``None`` to drop the message, otherwise a list of extra
        delivery delays — one element per copy to deliver (normally
        ``[0.0]``; duplicates append a second entry).
        """
        for part in self.partitions:
            if part.active(src, dst, now):
                self.stats["partitioned"] += 1
                return None
        delays = [0.0]
        for rule in self.rules:
            if not rule.matches(src, dst, message, now):
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            rule.fired += 1
            if rule.kind == DROP:
                self.stats["dropped"] += 1
                return None
            if rule.kind == DELAY:
                self.stats["delayed"] += 1
                delays = [d + rule.delay * (0.5 + 0.5 * self._rng.random()) for d in delays]
            elif rule.kind == REORDER:
                # A random extra delay per message scrambles relative order
                # among everything the rule matches.
                self.stats["reordered"] += 1
                delays = [d + rule.delay * self._rng.random() for d in delays]
            elif rule.kind == DUPLICATE:
                self.stats["duplicated"] += 1
                delays = delays + [delays[0] + rule.delay * self._rng.random()]
        return delays

    # -- serialisation --------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
            "crashes": [crash.to_dict() for crash in self.crashes],
            "kills": [kill.to_dict() for kill in self.kills],
            "partitions": [part.to_dict() for part in self.partitions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        plan = cls(seed=data.get("seed", 0))
        for rule in data.get("rules", []):
            plan._rule(rule["kind"], **{k: v for k, v in rule.items() if k != "kind"})
        for crash in data.get("crashes", []):
            plan.crash(crash["actor"], crash["at"])
        for kill in data.get("kills", []):
            plan.kill(kill["worker"], kill["at"])
        for part in data.get("partitions", []):
            plan.partition(
                part["a"], part["b"],
                start=part.get("start", 0.0), end=part.get("end", _INF),
            )
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} rules={len(self.rules)} "
            f"crashes={len(self.crashes)} kills={len(self.kills)} "
            f"partitions={len(self.partitions)}>"
        )
