"""Real-network runtimes: TCP FLStore servers and the socket-routed pipeline."""

from .aio_runtime import AioRuntime
from .binary_codec import (
    BINARY_MAGIC,
    decode_message_binary,
    decode_value_binary,
    encode_message_binary,
    encode_value_binary,
)
from .client import AsyncFLStoreClient
from .codec import decode_message, encode_message
from .deploy import FLStoreNetDeployment
from .protocol import CODEC_BINARY, CODEC_JSON
from .server import ControllerServer, IndexerServer, MaintainerServer

__all__ = [
    "AioRuntime",
    "AsyncFLStoreClient",
    "BINARY_MAGIC",
    "CODEC_BINARY",
    "CODEC_JSON",
    "ControllerServer",
    "FLStoreNetDeployment",
    "IndexerServer",
    "MaintainerServer",
    "decode_message",
    "decode_message_binary",
    "decode_value_binary",
    "encode_message",
    "encode_message_binary",
    "encode_value_binary",
]
