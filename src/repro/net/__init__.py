"""Real-network runtimes: TCP FLStore servers and the socket-routed pipeline."""

from .aio_runtime import AioRuntime
from .client import AsyncFLStoreClient
from .codec import decode_message, encode_message
from .deploy import FLStoreNetDeployment
from .server import ControllerServer, IndexerServer, MaintainerServer

__all__ = [
    "AioRuntime",
    "AsyncFLStoreClient",
    "ControllerServer",
    "FLStoreNetDeployment",
    "IndexerServer",
    "MaintainerServer",
    "decode_message",
    "encode_message",
]
