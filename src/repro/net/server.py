"""asyncio TCP servers hosting FLStore components.

The same pure-logic cores that power the in-process runtimes
(:class:`~repro.flstore.maintainer.MaintainerCore`,
:class:`~repro.flstore.indexer.IndexerCore`,
:class:`~repro.flstore.controller.ControllerCore`) are served here over a
length-prefixed JSON protocol, demonstrating a real-network deployment of
the sequencer-free log.  Head-of-log gossip between maintainer servers runs
over the same connections.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..core.config import FLStoreConfig
from ..core.errors import ChariotsError, NetworkProtocolError
from ..flstore.controller import ControllerCore
from ..flstore.indexer import IndexerCore
from ..flstore.maintainer import MaintainerCore
from ..flstore.messages import GossipHL
from ..flstore.range_map import OwnershipPlan
from .protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    HELLO_ACK_TYPE,
    HELLO_TYPE,
    WIRE_JSON,
    WIRES,
    _JsonWire,
    read_frame_fmt,
    write_frame,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chaos.netchaos import NetChaos


class _BaseServer:
    """Shared accept-loop plumbing for the component servers.

    ``chaos`` optionally installs a :class:`~repro.chaos.netchaos.NetChaos`:
    per request it may swallow the reply (the client's retry policy times
    out), stall it, or drop the connection.  ``None`` (the default) costs one
    ``is not None`` check per request.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self.chaos: Optional["NetChaos"] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._start_lock = asyncio.Lock()

    def set_chaos(self, chaos: Optional["NetChaos"]) -> None:
        """Install (or clear) request-level fault injection."""
        self.chaos = chaos

    async def start(self) -> Tuple[str, int]:
        # Two concurrent start() calls would both bind (port 0 picks two
        # different sockets) and one listener would leak; the lock also
        # keeps the read/rebind of self.port atomic across the await.
        async with self._start_lock:
            if self._server is None:
                server = await asyncio.start_server(self._serve, self.host, self.port)
                self._server = server
                self.port = server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        # Capture-and-null before the await: a concurrent stop() (or a
        # start() racing a shutdown) must never double-close the listener.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                arrived = await read_frame_fmt(reader)
                if arrived is None:
                    break
                request, codec = arrived
                if request["type"] == HELLO_TYPE:
                    # Codec negotiation: advertise binary when the client
                    # offers it.  The ack itself always travels as JSON so
                    # pre-binary clients could parse it.
                    offered = request.get("codecs") or []
                    chosen = CODEC_BINARY if CODEC_BINARY in offered else CODEC_JSON
                    await write_frame(writer, {"type": HELLO_ACK_TYPE, "codec": chosen})
                    continue
                if self.chaos is not None:
                    action, stall = self.chaos.decide(request["type"])
                    if action == "drop":
                        continue  # swallow: the client times out and retries
                    if action == "disconnect":
                        break
                    if action == "delay":
                        await asyncio.sleep(stall)
                wire = WIRES.get(codec, WIRE_JSON)
                try:
                    response = await self.handle(request, wire)
                except ChariotsError as exc:
                    response = {"type": "error", "error": str(exc)}
                if response is not None:
                    try:
                        await write_frame(writer, response, codec=codec)
                    except (TypeError, ValueError, ChariotsError) as exc:
                        # A reply this codec cannot represent must not kill
                        # the connection: answer with an error frame instead.
                        await write_frame(
                            writer,
                            {"type": "error", "error": f"unencodable reply: {exc}"},
                            codec=codec,
                        )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except NetworkProtocolError:
            # Malformed frame: framing can no longer be trusted on this
            # connection, so drop it quietly rather than logging a crash.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def handle(
        self, request: Dict[str, Any], wire: _JsonWire = WIRE_JSON
    ) -> Optional[Dict[str, Any]]:
        raise NotImplementedError


class MaintainerServer(_BaseServer):
    """Serves one log maintainer over TCP (post-assignment appends, reads,
    head-of-log queries) and gossips with its peer maintainer servers."""

    def __init__(
        self,
        name: str,
        plan: OwnershipPlan,
        config: Optional[FLStoreConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(host, port)
        self.core = MaintainerCore(name, plan, config=config)
        self.config = config or FLStoreConfig()
        self._peer_addresses: List[Tuple[str, int]] = []
        self._gossip_task: Optional[asyncio.Task] = None

    def set_peers(self, addresses: List[Tuple[str, int]]) -> None:
        self._peer_addresses = list(addresses)

    async def start(self) -> Tuple[str, int]:
        result = await super().start()
        self._gossip_task = asyncio.create_task(self._gossip_loop())
        return result

    async def stop(self) -> None:
        task, self._gossip_task = self._gossip_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        await super().stop()

    async def _gossip_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.gossip_interval)
            payload = self.core.gossip_payload()
            message = {
                "type": "gossip",
                "maintainer": payload.maintainer,
                "next_lid": payload.next_unassigned_lid,
            }
            for host, port in self._peer_addresses:
                try:
                    reader, writer = await asyncio.open_connection(host, port)
                    await write_frame(writer, message)
                    writer.close()
                    await writer.wait_closed()
                except ConnectionError:
                    continue  # peer down; gossip is best-effort

    async def handle(
        self, request: Dict[str, Any], wire: _JsonWire = WIRE_JSON
    ) -> Optional[Dict[str, Any]]:
        kind = request["type"]
        if kind == "append":
            records = [wire.unpack_record(r) for r in request["records"]]
            results = self.core.append(records, min_lid=request.get("min_lid"))
            if results is None:
                return {"type": "append_deferred"}
            return {
                "type": "append_reply",
                "results": [wire.pack_result(r) for r in results],
            }
        if kind == "read_lid":
            entry = self.core.get(request["lid"])
            return {"type": "read_reply", "entries": [wire.pack_entry(entry)]}
        if kind == "read_rules":
            entries = self.core.read(wire.unpack_rules(request["rules"]))
            return {"type": "read_reply", "entries": [wire.pack_entry(e) for e in entries]}
        if kind == "head":
            return {"type": "head_reply", "head_lid": self.core.head_of_log()}
        if kind == "gossip":
            self.core.on_gossip(GossipHL(request["maintainer"], request["next_lid"]))
            return None
        if kind == "drain_postings":
            return {"type": "postings", "postings": self.core.drain_postings()}
        return {"type": "error", "error": f"unknown request type {kind!r}"}


class IndexerServer(_BaseServer):
    """Serves one tag indexer over TCP."""

    def __init__(self, name: str, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__(host, port)
        self.core = IndexerCore(name)

    async def handle(
        self, request: Dict[str, Any], wire: _JsonWire = WIRE_JSON
    ) -> Optional[Dict[str, Any]]:
        kind = request["type"]
        if kind == "index_update":
            self.core.add_many([(k, v, lid) for k, v, lid in request["postings"]])
            return None
        if kind == "lookup":
            lids = self.core.lookup(
                request["tag_key"],
                tag_value=request.get("tag_value"),
                tag_min_value=request.get("tag_min_value"),
                limit=request.get("limit"),
                most_recent=request.get("most_recent", True),
                max_lid=request.get("max_lid"),
            )
            return {"type": "lookup_reply", "lids": lids}
        return {"type": "error", "error": f"unknown request type {kind!r}"}


class ControllerServer(_BaseServer):
    """Serves the stateless control plane over TCP."""

    def __init__(
        self,
        plan: OwnershipPlan,
        maintainer_addresses: Dict[str, str],
        indexer_addresses: Optional[Dict[str, str]] = None,
        config: Optional[FLStoreConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(host, port)
        self.core = ControllerCore(plan, indexers=list(indexer_addresses or {}), config=config)
        self.maintainer_addresses = dict(maintainer_addresses)
        self.indexer_addresses = dict(indexer_addresses or {})

    async def handle(
        self, request: Dict[str, Any], wire: _JsonWire = WIRE_JSON
    ) -> Optional[Dict[str, Any]]:
        if request["type"] == "session":
            info = self.core.session_info(request.get("request_id", 0))
            return {
                "type": "session_info",
                "maintainers": self.maintainer_addresses,
                "indexers": self.indexer_addresses,
                "epochs": [[s, b, list(ms)] for s, b, ms in info.epochs],
            }
        return {"type": "error", "error": f"unknown request type {request['type']!r}"}
