"""Real-time asyncio runtime: the same actors, over real sockets.

:class:`AioRuntime` hosts the protocol actors on the asyncio event loop and
routes **every** message through a localhost TCP connection: each ``send``
serialises the message with the tagged-JSON codec, frames it, writes it to
the router socket, and the router's server side decodes and dispatches it to
the destination actor.  Timers run on real (wall-clock) time.

This is the strongest in-repo demonstration that the protocol is
network-ready: a whole multi-datacenter Chariots deployment — batchers,
filters, the queue token, replication shipments, gossip — runs with every
single message crossing the TCP stack and the codec.

The runtime implements the same registration/`send` surface as
:class:`~repro.runtime.local.BaseRuntime`, so ``ChariotsDeployment`` and
``FLStore`` build on it unchanged; use the async helpers
(:meth:`run_for`, :meth:`settle`) instead of the synchronous ones.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from ..core.errors import ConfigurationError, NetworkProtocolError
from ..runtime.actor import Actor
from .codec import decode_message, encode_message
from .protocol import CODEC_BINARY, CODEC_JSON, encode_frame, encode_frame_binary, read_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chaos.plan import FaultPlan


class _AioTimerHandle:
    """Cancellable handle matching the EventLoop handle surface."""

    __slots__ = ("_handle",)

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class _AioLoopShim:
    """The subset of :class:`~repro.runtime.loop.EventLoop` actors use,
    backed by the asyncio loop (real time)."""

    def __init__(self) -> None:
        self._aio: Optional[asyncio.AbstractEventLoop] = None
        self._epoch = 0.0

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        self._aio = loop
        self._epoch = loop.time()

    @property
    def now(self) -> float:
        if self._aio is None:
            return 0.0
        return self._aio.time() - self._epoch

    def schedule(self, delay: float, callback: Callable[[], None]) -> _AioTimerHandle:
        if self._aio is None:
            raise ConfigurationError("AioRuntime not started; timers unavailable")
        return _AioTimerHandle(self._aio.call_later(max(0.0, delay), callback))


class AioRuntime:
    """Actor runtime whose transport is a real localhost TCP connection.

    ``codec`` picks the route-frame format: "binary" (default) sends each
    actor message through the packed binary codec; "json" keeps the
    tagged-JSON encoding.  Both ends of the router are this process, so no
    negotiation is needed — the choice only affects serialisation cost.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        codec: str = CODEC_BINARY,
        chaos: Optional["FaultPlan"] = None,
    ) -> None:
        if codec not in (CODEC_BINARY, CODEC_JSON):
            raise ConfigurationError(f"unknown codec {codec!r}")
        self.codec = codec
        self.loop = _AioLoopShim()
        self._host = host
        self._actors: Dict[str, Actor] = {}
        self._started = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        #: Optional FaultPlan applied to every routed frame (drop / delay /
        #: duplicate / reorder); crashes and partitions also apply, keyed by
        #: actor-name prefixes, making TCP-backed chaos runs possible.
        self.chaos = chaos
        self.messages_routed = 0
        self.messages_dropped = 0
        self.bytes_routed = 0

    # -- registry (BaseRuntime-compatible surface) ------------------------ #

    def register(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise ConfigurationError(f"actor name {actor.name!r} already registered")
        actor.runtime = self  # type: ignore[assignment]
        self._actors[actor.name] = actor
        if self._started:
            actor.on_start()
        return actor

    def register_all(self, actors: Iterable[Actor]) -> List[Actor]:
        return [self.register(actor) for actor in actors]

    def actor(self, name: str) -> Actor:
        return self._actors[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    @property
    def now(self) -> float:
        return self.loop.now

    # -- lifecycle --------------------------------------------------------- #

    async def start(self) -> None:
        """Open the router socket pair and start every actor."""
        if self._started:
            return
        # Claim the flag before the first await: a second start() racing
        # through the check above would otherwise open a second socket pair
        # and orphan one of them.
        self._started = True
        self.loop.bind(asyncio.get_running_loop())
        server = await asyncio.start_server(self._serve, self._host, 0)
        self._server = server
        port = server.sockets[0].getsockname()[1]
        reader, self._writer = await asyncio.open_connection(self._host, port)
        # The client side of the router never receives frames; the server
        # side dispatches directly to the actors.
        for actor in list(self._actors.values()):
            actor.on_start()

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                envelope = await read_frame(reader)
                if envelope is None:
                    break
                self._dispatch(envelope)
        except (ConnectionError, NetworkProtocolError):
            pass
        finally:
            writer.close()

    def _dispatch(self, envelope: Dict[str, Any]) -> None:
        dst = envelope["d"]
        target = self._actors.get(dst)
        if target is None:
            return  # destination retired while the frame was in flight
        message = envelope["m"]
        if isinstance(message, dict):
            # JSON route frames carry the tagged encoding; binary frames
            # deliver the decoded message object directly.
            message = decode_message(message)
        self.messages_routed += 1
        target.on_message(envelope["s"], message)

    # -- transport ----------------------------------------------------------- #

    def send(self, src: str, dst: str, message: Any) -> None:
        """Serialise and route one message through the TCP stack."""
        if self._writer is None:
            raise ConfigurationError("AioRuntime not started; call await start()")
        if dst not in self._actors:
            raise ConfigurationError(f"message from {src!r} to unknown actor {dst!r}")
        if self.codec == CODEC_BINARY:
            frame = encode_frame_binary(
                {"type": "route", "s": src, "d": dst, "m": message}
            )
        else:
            frame = encode_frame(
                {"type": "route", "s": src, "d": dst, "m": encode_message(message)}
            )
        if self.chaos is not None:
            copies = self.chaos.intercept(src, dst, message, self.loop.now)
            if copies is None:
                self.messages_dropped += 1
                return
            for extra in copies:
                if extra <= 0.0:
                    self.bytes_routed += len(frame)
                    self._writer.write(frame)
                else:
                    self.loop.schedule(extra, lambda f=frame: self._write_later(f))
            return
        self.bytes_routed += len(frame)
        self._writer.write(frame)

    def _write_later(self, frame: bytes) -> None:
        """Deferred write for chaos-delayed frames (no-op after stop())."""
        if self._writer is not None:
            self.bytes_routed += len(frame)
            self._writer.write(frame)

    # -- async drivers ---------------------------------------------------------- #

    async def run_for(self, seconds: float) -> None:
        """Let the deployment run for ``seconds`` of real time."""
        await asyncio.sleep(seconds)

    async def settle(
        self,
        predicate: Callable[[], bool],
        max_seconds: float = 10.0,
        check_interval: float = 0.05,
    ) -> bool:
        """Run until ``predicate`` holds (checked every ``check_interval``)."""
        deadline = self.loop.now + max_seconds
        while self.loop.now < deadline:
            if predicate():
                return True
            await asyncio.sleep(check_interval)
        return predicate()

    async def stop(self) -> None:
        # Detach the transport attributes before awaiting: send() and
        # _write_later() check ``self._writer`` from other coroutines, and a
        # concurrent stop() must never double-close either endpoint.
        self._started = False
        writer, self._writer = self._writer, None
        server, self._server = self._server, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass
        if server is not None:
            server.close()
            await server.wait_closed()
