"""Binary fast-path codec: length-prefixed, struct-packed message encoding.

The tagged-JSON codec (:mod:`repro.net.codec`) is safe and fully general,
but it pays for that generality twice on every message: a recursive Python
pass that builds tagged dictionaries, then a JSON serialisation pass (with
base64 for byte bodies).  On the hot path — ``Record``/``LogEntry`` batches
flowing through appends, placements, and replication shipments — that codec
dominates the per-record cost of the TCP deployment.

This module encodes the same value domain in a single recursive pass that
appends struct-packed bytes directly:

* scalars: ``None``/bools as one tag byte; ints as 8-byte big-endian
  (arbitrary-precision fallback for the rare overflow); floats as IEEE
  doubles; strings/bytes as length-prefixed payloads (no base64) — the
  length is one byte for payloads under 255 bytes, else ``0xFF`` + u32;
* containers: lists, tuples, and dicts with 4-byte counts — dict keys are
  arbitrary encoded values, not just strings;
* hot value types: ``Record``, ``RecordId``, ``LogEntry``,
  ``AppendResult``, and ``DraftRecord`` get bespoke packed layouts;
* every registered protocol message: a generic ``(type index, fields...)``
  layout over the deterministic registry shared with the JSON codec.

Symmetry holds exactly as for the JSON codec: ``decode(encode(x)) == x``
for every registered message type and every JSON-free application body.
Framing and per-connection negotiation live in :mod:`repro.net.protocol`.
"""

from __future__ import annotations

import dataclasses
import struct
from operator import attrgetter
from typing import Any, Callable, Dict, List, Tuple, Type

from ..chariots.messages import DraftRecord
from ..core.errors import NetworkProtocolError
from ..core.record import AppendResult, LogEntry, Record, RecordId
from ..runtime.messages import RecordBatch
from .codec import registered_message_types

# Decoded objects are built without running the frozen-dataclass __init__
# (object.__new__ + object.__setattr__): the ctor's per-field immutability
# machinery is pure overhead when every field comes straight off the wire.
# The __post_init__ invariants (toid >= 1, lid >= 0) are checked explicitly.
_new = object.__new__
_set = object.__setattr__


def _make_rid(host: str, toid: int) -> RecordId:
    if toid < 1:
        raise NetworkProtocolError(f"TOIds start at 1, got {toid}")
    rid = _new(RecordId)
    _set(rid, "host", host)
    _set(rid, "toid", toid)
    return rid


def _make_entry(lid: int, record: Record) -> LogEntry:
    if lid < 0:
        raise NetworkProtocolError(f"LIds are non-negative, got {lid}")
    entry = _new(LogEntry)
    _set(entry, "lid", lid)
    _set(entry, "record", record)
    return entry

#: First byte of every binary frame body.  Tagged-JSON frames always start
#: with ``{`` (0x7B), so one byte suffices to tell the formats apart.
BINARY_MAGIC = 0xC5

# Value tags (one byte each).
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_BIGINT = 0x0A
_T_RECORD = 0x10
_T_RECORD_ID = 0x11
_T_LOG_ENTRY = 0x12
_T_APPEND_RESULT = 0x13
_T_DRAFT = 0x14
_T_BATCH = 0x15
_T_MESSAGE = 0x1F

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_I64U8 = struct.Struct(">qB")  # (toid, internal) pair in the Record layout

_pack_u32 = _U32.pack
_pack_i64 = _I64.pack
_pack_f64 = _F64.pack
_pack_i64u8 = _I64U8.pack
_unpack_u32 = _U32.unpack_from
_unpack_i64 = _I64.unpack_from
_unpack_f64 = _F64.unpack_from
_unpack_i64u8 = _I64U8.unpack_from

# --------------------------------------------------------------------- #
# Deterministic message-type table (shared derivation with the JSON codec)
# --------------------------------------------------------------------- #

#: Types with bespoke binary layouts; they never take the generic path.
_SPECIAL_CLASSES = (Record, RecordId, LogEntry, AppendResult, DraftRecord, RecordBatch)

_MSG_NAMES: List[str] = sorted(
    name
    for name, cls in registered_message_types().items()
    if cls not in _SPECIAL_CLASSES
)
_MSG_CLASSES: List[Type[Any]] = [registered_message_types()[n] for n in _MSG_NAMES]

#: class → (type index, attrgetter over the dataclass fields in order).
_MSG_ENCODERS: Dict[Type[Any], Tuple[int, Callable[[Any], Any], bool]] = {}
#: type index → (class, field count).
_MSG_DECODERS: List[Tuple[Type[Any], int]] = []

for _index, _cls in enumerate(_MSG_CLASSES):
    _names = [f.name for f in dataclasses.fields(_cls)]
    _single = len(_names) == 1
    _MSG_ENCODERS[_cls] = (_index, attrgetter(*_names), _single)
    _MSG_DECODERS.append((_cls, len(_names)))


# --------------------------------------------------------------------- #
# Zero-copy RecordBatch frame
# --------------------------------------------------------------------- #

# Slot descriptor for RecordBatch.records (dataclass slots=True), used by the
# lazy subclass to store the materialised list under its shadowing property.
_RB_RECORDS = RecordBatch.__dict__["records"]


class LazyRecordBatch(RecordBatch):
    """A ``RecordBatch`` decoded lazily from one contiguous binary frame.

    The ``0x15`` batch frame is ``u32 count`` followed by ``count`` runs of
    ``u32 span_len || packed-record-fields``.  Decoding only validates the
    span bounds and keeps a :class:`memoryview` over the frame — no Record,
    RecordId, or tuple objects exist until a consumer touches ``records``.
    The view pins the source buffer, so the batch stays valid after the
    caller drops its own reference to the frame bytes.

    Sizing queries (``len``, ``record_count``) answer from the span table;
    re-encoding an untouched batch copies the raw spans straight back out,
    so a decode → encode trip is byte-identical and parse-free.
    """

    __slots__ = ("_frame", "_spans")

    def __init__(self, frame: "memoryview", spans: List[Tuple[int, int]]) -> None:
        self._frame: Any = frame
        self._spans: Any = spans

    @property
    def records(self) -> List[Record]:  # type: ignore[override]
        spans = self._spans
        if spans is not None:
            data = bytes(self._frame)
            materialised: List[Record] = []
            for start, end in spans:
                try:
                    record, pos = _dec_record_fields(data, start)
                except (IndexError, struct.error) as exc:
                    raise NetworkProtocolError(
                        f"corrupt RecordBatch span: {exc}"
                    ) from exc
                if pos != end:
                    raise NetworkProtocolError(
                        f"RecordBatch span length mismatch at offset {start}"
                    )
                materialised.append(record)
            _RB_RECORDS.__set__(self, materialised)
            self._spans = None
            self._frame = None
        return _RB_RECORDS.__get__(self, LazyRecordBatch)  # type: ignore[no-any-return]

    @records.setter
    def records(self, value: List[Record]) -> None:
        _RB_RECORDS.__set__(self, value)
        self._spans = None
        self._frame = None

    @property
    def materialised(self) -> bool:
        """True once ``records`` has been touched (views released)."""
        return self._spans is None

    def __len__(self) -> int:
        spans = self._spans
        if spans is not None:
            return len(spans)
        return len(self.records)

    def record_count(self) -> int:
        return len(self)

    def __eq__(self, other: object) -> bool:
        # The dataclass __eq__ is exact-class; a lazy batch must compare
        # equal to the eager batch it decodes to (both directions — Python
        # tries the subclass's reflected op first).
        if isinstance(other, RecordBatch):
            return self.records == other.records
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]


def _enc_batch(batch: RecordBatch, out: bytearray) -> None:
    out.append(_T_BATCH)
    if type(batch) is LazyRecordBatch and batch._spans is not None:
        # Untouched lazy batch: copy the raw spans; nothing is re-parsed.
        spans = batch._spans
        frame = batch._frame
        out += _pack_u32(len(spans))
        for start, end in spans:
            out += _pack_u32(end - start)
            out += frame[start:end]
        return
    records = batch.records
    out += _pack_u32(len(records))
    for record in records:
        mark = len(out)
        out += b"\x00\x00\x00\x00"  # span length, backpatched below
        _enc_record_fields(record, out)
        out[mark : mark + 4] = _pack_u32(len(out) - mark - 4)


def _dec_batch(buf: Any, pos: int) -> Tuple["LazyRecordBatch", int]:
    """Validate span bounds and return a lazy view; ``buf`` is bytes or a
    memoryview (both satisfy ``unpack_from`` and slicing)."""
    limit = len(buf)
    if pos + 4 > limit:
        raise NetworkProtocolError("truncated RecordBatch frame (count)")
    (count,) = _unpack_u32(buf, pos)
    pos += 4
    view = buf if type(buf) is memoryview else memoryview(buf)
    spans: List[Tuple[int, int]] = []
    for _ in range(count):
        if pos + 4 > limit:
            raise NetworkProtocolError("truncated RecordBatch frame (span length)")
        (n,) = _unpack_u32(buf, pos)
        pos += 4
        end = pos + n
        if end > limit:
            raise NetworkProtocolError(
                f"truncated RecordBatch frame (span of {n} bytes past end)"
            )
        spans.append((pos, end))
        pos = end
    return LazyRecordBatch(view, spans), pos


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #


def _enc_len(n: int, out: bytearray) -> None:
    """Variable-length byte-run prefix: one byte under 255, else 0xFF+u32."""
    if n < 255:
        out.append(n)
    else:
        out.append(255)
        out += _pack_u32(n)


def _enc_str(value: str, out: bytearray) -> None:
    data = value.encode("utf-8")
    out.append(_T_STR)
    n = len(data)
    if n < 255:
        out.append(n)
    else:
        out.append(255)
        out += _pack_u32(n)
    out += data


def _enc_record_fields(record: Record, out: bytearray) -> None:
    """Packed Record body shared by the Record and LogEntry layouts."""
    rid = record.rid
    host = rid.host.encode("utf-8")
    _enc_len(len(host), out)
    out += host
    out += _pack_i64u8(rid.toid, 1 if record.internal else 0)
    _encode_value(record.body, out)
    tags = record.tags
    _enc_len(len(tags), out)
    for key, value in tags:
        _encode_value(key, out)
        _encode_value(value, out)
    deps = record.deps
    _enc_len(len(deps), out)
    for dc, toid in deps:
        data = dc.encode("utf-8")
        _enc_len(len(data), out)
        out += data
        out += _pack_i64(toid)


def _encode_value(value: Any, out: bytearray) -> None:
    kind = type(value)
    if kind is bytes:
        out.append(_T_BYTES)
        _enc_len(len(value), out)
        out += value
        return
    if kind is str:
        _enc_str(value, out)
        return
    if kind is bool:
        out.append(_T_TRUE if value else _T_FALSE)
        return
    if kind is int:
        try:
            packed = _pack_i64(value)
        except struct.error:
            data = str(value).encode("ascii")
            out.append(_T_BIGINT)
            _enc_len(len(data), out)
            out += data
            return
        out.append(_T_INT)
        out += packed
        return
    if value is None:
        out.append(_T_NONE)
        return
    if kind is float:
        out.append(_T_FLOAT)
        out += _pack_f64(value)
        return
    if kind is Record:
        out.append(_T_RECORD)
        _enc_record_fields(value, out)
        return
    if kind is LogEntry:
        out.append(_T_LOG_ENTRY)
        out += _pack_i64(value.lid)
        _enc_record_fields(value.record, out)
        return
    if kind is DraftRecord:
        out.append(_T_DRAFT)
        client = value.client.encode("utf-8")
        _enc_len(len(client), out)
        out += client
        out += _pack_i64(value.seq)
        _encode_value(value.body, out)
        tags = value.tags
        _enc_len(len(tags), out)
        for key, tag_value in tags:
            _encode_value(key, out)
            _encode_value(tag_value, out)
        deps = value.deps
        _enc_len(len(deps), out)
        for dc, toid in deps:
            data = dc.encode("utf-8")
            _enc_len(len(data), out)
            out += data
            out += _pack_i64(toid)
        return
    if kind is RecordId:
        out.append(_T_RECORD_ID)
        host = value.host.encode("utf-8")
        _enc_len(len(host), out)
        out += host
        out += _pack_i64(value.toid)
        return
    if kind is AppendResult:
        out.append(_T_APPEND_RESULT)
        host = value.rid.host.encode("utf-8")
        _enc_len(len(host), out)
        out += host
        out += _pack_i64(value.rid.toid)
        out += _pack_i64(value.lid)
        return
    if kind is RecordBatch or kind is LazyRecordBatch:
        _enc_batch(value, out)
        return
    if kind is list:
        out.append(_T_LIST)
        out += _pack_u32(len(value))
        for item in value:
            _encode_value(item, out)
        return
    if kind is tuple:
        out.append(_T_TUPLE)
        out += _pack_u32(len(value))
        for item in value:
            _encode_value(item, out)
        return
    if kind is dict:
        out.append(_T_DICT)
        out += _pack_u32(len(value))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
        return
    entry = _MSG_ENCODERS.get(kind)
    if entry is not None:
        index, getter, single = entry
        out.append(_T_MESSAGE)
        out += _pack_u32(index)
        if single:
            _encode_value(getter(value), out)
        else:
            for field_value in getter(value):
                _encode_value(field_value, out)
        return
    # Subclass tolerance mirrors the JSON codec's isinstance container path.
    if isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += _pack_u32(len(value))
        for item in value:
            _encode_value(item, out)
        return
    if isinstance(value, list):
        out.append(_T_LIST)
        out += _pack_u32(len(value))
        for item in value:
            _encode_value(item, out)
        return
    if isinstance(value, dict):
        out.append(_T_DICT)
        out += _pack_u32(len(value))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
        return
    raise NetworkProtocolError(
        f"cannot encode value of type {type(value).__name__}: {value!r}"
    )


def encode_value_binary(value: Any) -> bytes:
    """Encode any protocol value into the packed binary form."""
    out = bytearray()
    _encode_value(value, out)
    return bytes(out)


def encode_message_binary(message: Any) -> bytes:
    """Encode a top-level protocol message (must be a registered type)."""
    kind = type(message)
    if kind not in _MSG_ENCODERS and kind not in _SPECIAL_CLASSES:
        raise NetworkProtocolError(
            f"{kind.__name__} is not a registered protocol message"
        )
    return encode_value_binary(message)


# --------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------- #


#: Datacenter-id bytes → interned str.  Host ids repeat constantly on the
#: hot path (there are only a handful of datacenters), so one dict hit
#: replaces a UTF-8 decode per occurrence.  Bounded: grows with the number
#: of distinct datacenter names seen, not with traffic.
_DC_CACHE: Dict[bytes, str] = {}


def _dec_record_fields(buf: bytes, pos: int) -> Tuple[Record, int]:
    unpack_u32 = _unpack_u32
    unpack_i64 = _unpack_i64
    decode_value = _decode_value
    dc_cache = _DC_CACHE
    set_ = _set

    n = buf[pos]
    pos += 1
    if n == 255:
        (n,) = unpack_u32(buf, pos)
        pos += 4
    raw = buf[pos : pos + n]
    host = dc_cache.get(raw)
    if host is None:
        host = dc_cache[raw] = raw.decode("utf-8")
    pos += n
    toid, internal = _unpack_i64u8(buf, pos)
    pos += 9
    # Inline the common body shapes (bytes/str payloads) to skip a frame.
    tag = buf[pos]
    if tag == _T_BYTES:
        n = buf[pos + 1]
        pos += 2
        if n == 255:
            (n,) = unpack_u32(buf, pos)
            pos += 4
        body: Any = buf[pos : pos + n]
        pos += n
    elif tag == _T_STR:
        n = buf[pos + 1]
        pos += 2
        if n == 255:
            (n,) = unpack_u32(buf, pos)
            pos += 4
        body = buf[pos : pos + n].decode("utf-8")
        pos += n
    else:
        body, pos = decode_value(buf, pos)
    count = buf[pos]
    pos += 1
    if count == 255:
        (count,) = unpack_u32(buf, pos)
        pos += 4
    if count:
        tags = []
        for _ in range(count):
            # Tag keys are strings and values are usually small scalars;
            # inline those shapes and fall back to the generic decoder.
            tag = buf[pos]
            if tag == _T_STR:
                n = buf[pos + 1]
                pos += 2
                if n == 255:
                    (n,) = unpack_u32(buf, pos)
                    pos += 4
                key: Any = buf[pos : pos + n].decode("utf-8")
                pos += n
            else:
                key, pos = decode_value(buf, pos)
            tag = buf[pos]
            if tag == _T_INT:
                (value,) = unpack_i64(buf, pos + 1)
                pos += 9
            elif tag == _T_STR:
                n = buf[pos + 1]
                pos += 2
                if n == 255:
                    (n,) = unpack_u32(buf, pos)
                    pos += 4
                value = buf[pos : pos + n].decode("utf-8")
                pos += n
            else:
                value, pos = decode_value(buf, pos)
            tags.append((key, value))
        tags = tuple(tags)
    else:
        tags = ()
    count = buf[pos]
    pos += 1
    if count == 255:
        (count,) = unpack_u32(buf, pos)
        pos += 4
    if count:
        deps = []
        for _ in range(count):
            n = buf[pos]
            pos += 1
            if n == 255:
                (n,) = unpack_u32(buf, pos)
                pos += 4
            raw = buf[pos : pos + n]
            dc = dc_cache.get(raw)
            if dc is None:
                dc = dc_cache[raw] = raw.decode("utf-8")
            pos += n
            (dep_toid,) = unpack_i64(buf, pos)
            pos += 8
            deps.append((dc, dep_toid))
        deps = tuple(deps)
    else:
        deps = ()
    if toid < 1:
        raise NetworkProtocolError(f"TOIds start at 1, got {toid}")
    rid = _new(RecordId)
    set_(rid, "host", host)
    set_(rid, "toid", toid)
    record = _new(Record)
    set_(record, "rid", rid)
    set_(record, "body", body)
    set_(record, "tags", tags)
    set_(record, "deps", deps)
    set_(record, "internal", internal == 1)
    return record, pos


def _decode_value(buf: bytes, pos: int) -> Tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _T_INT:
        (value,) = _unpack_i64(buf, pos)
        return value, pos + 8
    if tag == _T_STR:
        n = buf[pos]
        pos += 1
        if n == 255:
            (n,) = _unpack_u32(buf, pos)
            pos += 4
        return buf[pos : pos + n].decode("utf-8"), pos + n
    if tag == _T_BYTES:
        n = buf[pos]
        pos += 1
        if n == 255:
            (n,) = _unpack_u32(buf, pos)
            pos += 4
        return buf[pos : pos + n], pos + n
    if tag == _T_RECORD:
        return _dec_record_fields(buf, pos)
    if tag == _T_LOG_ENTRY:
        (lid,) = _unpack_i64(buf, pos)
        record, pos = _dec_record_fields(buf, pos + 8)
        return _make_entry(lid, record), pos
    if tag == _T_BATCH:
        return _dec_batch(buf, pos)
    if tag == _T_DRAFT:
        n = buf[pos]
        pos += 1
        if n == 255:
            (n,) = _unpack_u32(buf, pos)
            pos += 4
        client = buf[pos : pos + n].decode("utf-8")
        pos += n
        (seq,) = _unpack_i64(buf, pos)
        pos += 8
        body, pos = _decode_value(buf, pos)
        count = buf[pos]
        pos += 1
        if count == 255:
            (count,) = _unpack_u32(buf, pos)
            pos += 4
        tags = []
        for _ in range(count):
            key, pos = _decode_value(buf, pos)
            value, pos = _decode_value(buf, pos)
            tags.append((key, value))
        count = buf[pos]
        pos += 1
        if count == 255:
            (count,) = _unpack_u32(buf, pos)
            pos += 4
        deps = []
        for _ in range(count):
            n = buf[pos]
            pos += 1
            if n == 255:
                (n,) = _unpack_u32(buf, pos)
                pos += 4
            dc = buf[pos : pos + n].decode("utf-8")
            pos += n
            (dep_toid,) = _unpack_i64(buf, pos)
            pos += 8
            deps.append((dc, dep_toid))
        draft = DraftRecord(
            client=client, seq=seq, body=body, tags=tuple(tags), deps=tuple(deps)
        )
        return draft, pos
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FLOAT:
        (value,) = _unpack_f64(buf, pos)
        return value, pos + 8
    if tag == _T_LIST or tag == _T_TUPLE:
        (count,) = _unpack_u32(buf, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        (count,) = _unpack_u32(buf, pos)
        pos += 4
        result: Dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_value(buf, pos)
            value, pos = _decode_value(buf, pos)
            result[key] = value
        return result, pos
    if tag == _T_RECORD_ID:
        n = buf[pos]
        pos += 1
        if n == 255:
            (n,) = _unpack_u32(buf, pos)
            pos += 4
        host = buf[pos : pos + n].decode("utf-8")
        pos += n
        (toid,) = _unpack_i64(buf, pos)
        return _make_rid(host, toid), pos + 8
    if tag == _T_APPEND_RESULT:
        n = buf[pos]
        pos += 1
        if n == 255:
            (n,) = _unpack_u32(buf, pos)
            pos += 4
        host = buf[pos : pos + n].decode("utf-8")
        pos += n
        (toid,) = _unpack_i64(buf, pos)
        pos += 8
        (lid,) = _unpack_i64(buf, pos)
        result = _new(AppendResult)
        _set(result, "rid", _make_rid(host, toid))
        _set(result, "lid", lid)
        return result, pos + 8
    if tag == _T_BIGINT:
        n = buf[pos]
        pos += 1
        if n == 255:
            (n,) = _unpack_u32(buf, pos)
            pos += 4
        return int(buf[pos : pos + n].decode("ascii")), pos + n
    if tag == _T_MESSAGE:
        (index,) = _unpack_u32(buf, pos)
        pos += 4
        if index >= len(_MSG_DECODERS):
            raise NetworkProtocolError(f"unknown binary message index {index}")
        cls, field_count = _MSG_DECODERS[index]
        values = []
        for _ in range(field_count):
            value, pos = _decode_value(buf, pos)
            values.append(value)
        return cls(*values), pos
    raise NetworkProtocolError(f"unknown binary value tag 0x{tag:02x}")


def decode_value_binary(data: bytes, start: int = 0) -> Any:
    """Inverse of :func:`encode_value_binary`.

    ``start`` lets frame handling skip a prefix (the magic byte) without
    copying the buffer.  The top-level Record/LogEntry shapes are dispatched
    directly — they dominate hot-path traffic.  A top-level ``RecordBatch``
    frame decodes zero-copy: ``bytes`` and read-only ``memoryview`` inputs
    are consumed as-is and the lazy batch keeps a view over them.
    """
    if not isinstance(data, (bytes, memoryview)):
        data = bytes(data)
    try:
        tag = data[start]
        if tag == _T_BATCH:
            value, pos = _dec_batch(data, start + 1)
            if pos != len(data):
                raise NetworkProtocolError(
                    f"trailing garbage after binary value ({len(data) - pos} bytes)"
                )
            return value
        if not isinstance(data, bytes):
            data = bytes(data)
        if tag == _T_RECORD:
            value, pos = _dec_record_fields(data, start + 1)
        elif tag == _T_LOG_ENTRY:
            (lid,) = _unpack_i64(data, start + 1)
            record, pos = _dec_record_fields(data, start + 9)
            value = _make_entry(lid, record)
        else:
            value, pos = _decode_value(data, start)
    except (IndexError, struct.error) as exc:
        raise NetworkProtocolError(f"truncated binary value: {exc}") from exc
    if pos != len(data):
        raise NetworkProtocolError(
            f"trailing garbage after binary value ({len(data) - pos} bytes)"
        )
    return value


#: Inverse of :func:`encode_message_binary` (same routine: messages are
#: just top-level values).
decode_message_binary = decode_value_binary
